#ifndef VIEWREWRITE_BENCH_BENCH_UTIL_H_
#define VIEWREWRITE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/census.h"
#include "datagen/tpch.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace bench {

/// Paper-to-repro mapping: TPC-H "10M" corresponds to scale 1.
inline const char* SizeLabel(int scale) {
  switch (scale) {
    case 1: return "10M";
    case 2: return "20M";
    case 4: return "40M";
    case 8: return "80M";
    default: return "?";
  }
}

/// `VR_FULL=1` unlocks the full (slow) sweeps; the default keeps every
/// bench binary to a couple of minutes.
inline bool FullMode() {
  const char* env = std::getenv("VR_FULL");
  return env != nullptr && env[0] == '1';
}

inline double Median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

/// One engine run over one workload: errors + timings + view count.
struct RunResult {
  size_t queries = 0;
  size_t views = 0;
  double median_error = 0;
  double mean_error = 0;
  double synopsis_seconds = 0;   // rewrite + view generation + publication
  double response_seconds = 0;   // answering all queries
  double total_seconds = 0;
  size_t failed = 0;
};

template <typename Engine>
RunResult RunWorkload(Engine& engine, const std::vector<std::string>& sql) {
  RunResult out;
  Status st = engine.Prepare(sql);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
    out.failed = sql.size();
    return out;
  }
  out.queries = engine.NumQueries();
  out.views = engine.NumViews();
  std::vector<double> errors;
  errors.reserve(sql.size());
  for (size_t i = 0; i < sql.size(); ++i) {
    auto err = engine.RelativeError(i);
    if (!err.ok()) {
      ++out.failed;
      continue;
    }
    errors.push_back(*err);
  }
  out.median_error = Median(errors);
  out.mean_error = Mean(errors);
  out.synopsis_seconds = engine.stats().SynopsisSeconds();
  out.response_seconds = engine.stats().answer_seconds;
  out.total_seconds = out.synopsis_seconds + out.response_seconds;
  return out;
}

inline std::vector<std::string> WorkloadSql(int w, int scale, uint64_t seed,
                                            size_t cap = 0) {
  WorkloadGenerator gen(scale, seed);
  auto queries = gen.Generate(w);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload W%d failed: %s\n", w,
                 queries.status().ToString().c_str());
    return {};
  }
  std::vector<std::string> out;
  size_t n = queries->size();
  if (cap > 0) n = std::min(n, cap);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back((*queries)[i].sql);
  return out;
}

}  // namespace bench
}  // namespace viewrewrite

#endif  // VIEWREWRITE_BENCH_BENCH_UTIL_H_
