// Reproduces Fig. 6(d) and 6(e): as the workload grows (W11-W15),
// ViewRewrite's error and view count stay flat while PrivateSQL's views
// proliferate and its error grows with the shrinking per-view budget.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  constexpr uint64_t kSeed = 61235;
  TpchConfig config;
  auto db = GenerateTpch(config);

  std::printf(
      "=== Figures 6(d)+6(e): error and view count vs workload size "
      "(W11-W15, eps=8, size=10M, policy=orders) ===\n");
  std::printf("%-6s %-8s | %-6s %-14s | %-6s %-14s\n", "W", "queries",
              "VRv", "VR_median_err", "PSv", "PSQL_median_err");

  const int last_w = FullMode() ? 15 : 13;
  for (int w = 11; w <= last_w; ++w) {
    auto sql = WorkloadSql(w, config.scale, kSeed,
                           FullMode() ? 0 : 3000);
    EngineOptions opts;
    opts.strict = true;  // benchmarks keep the fail-fast contract
    opts.epsilon = 8.0;
    opts.seed = kSeed;
    RunResult vr, ps;
    {
      ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
      vr = RunWorkload(engine, sql);
    }
    {
      PrivateSqlEngine engine(*db, PrivacyPolicy{"orders"}, opts);
      ps = RunWorkload(engine, sql);
    }
    std::printf("W%-5d %-8zu | %-6zu %-14.6f | %-6zu %-14.6f\n", w,
                vr.queries, vr.views, vr.median_error, ps.views,
                ps.median_error);
  }
  std::printf(
      "\nExpected shape (paper): ViewRewrite views stay constant (14) and "
      "its error flat;\nPrivateSQL views grow with the workload and its "
      "error rises.\n");
  return 0;
}
