// Measures the happy-path cost of resource governance: the fig5 workload
// queries parsed + rewritten under ResourceLimits::Defaults() versus
// ResourceLimits::Unbounded(). The governance layer is an add+compare per
// charge point, so the two runs should be within noise of each other;
// the acceptance bar is < 2% overhead.
//
//   limits_overhead [workload=1] [reps=20]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/limits.h"
#include "datagen/tpch.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace viewrewrite {

double RunPass(const Schema& schema, const std::vector<std::string>& sql,
               const ResourceLimits& limits, int reps, size_t* ok_out) {
  RewriteOptions options;
  options.limits = limits;
  Rewriter rewriter(schema, options);
  size_t ok = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const std::string& q : sql) {
      auto stmt = ParseSelect(q, limits);
      if (!stmt.ok()) continue;
      auto rq = rewriter.Rewrite(**stmt);
      if (rq.ok()) ++ok;
    }
  }
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  *ok_out = ok;
  return seconds;
}

int Main(int argc, char** argv) {
  int workload = (argc > 1) ? std::atoi(argv[1]) : 1;
  int reps = (argc > 2) ? std::atoi(argv[2]) : 20;

  WorkloadGenerator gen(/*tpch_scale=*/1, /*seed=*/17);
  auto queries = gen.Generate(workload);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> sql;
  for (const WorkloadQuery& q : *queries) sql.push_back(q.sql);
  Schema schema = MakeTpchSchema();

  // Warm-up pass (allocator, caches). Then measure in interleaved blocks
  // and keep the per-configuration minimum: frequency scaling and noisy
  // neighbors inflate individual blocks, but the min of several
  // alternating blocks is a stable estimate of the true cost, which is
  // what a < 2% comparison needs.
  size_t ok_default = 0, ok_unbounded = 0;
  ResourceLimits unbounded = ResourceLimits::Unbounded();
  (void)RunPass(schema, sql, ResourceLimits::Defaults(), 1, &ok_default);
  (void)RunPass(schema, sql, unbounded, 1, &ok_unbounded);

  constexpr int kBlocks = 5;
  double with_limits = 1e30;
  double without = 1e30;
  for (int b = 0; b < kBlocks; ++b) {
    double d = RunPass(schema, sql, ResourceLimits::Defaults(), reps,
                       &ok_default);
    double u = RunPass(schema, sql, unbounded, reps, &ok_unbounded);
    if (d < with_limits) with_limits = d;
    if (u < without) without = u;
  }

  if (ok_default != ok_unbounded) {
    std::fprintf(stderr,
                 "FAIL: governance changed happy-path results "
                 "(%zu vs %zu rewrites succeeded)\n",
                 ok_default, ok_unbounded);
    return 1;
  }

  double overhead = (without > 0) ? (with_limits / without - 1.0) * 100.0 : 0;
  std::printf(
      "workload W%d: %zu queries x %d reps, min of %d interleaved blocks\n"
      "  defaults:  %.3fs\n"
      "  unbounded: %.3fs\n"
      "  governance overhead: %+.2f%%\n",
      workload, sql.size(), reps, kBlocks, with_limits, without, overhead);
  return 0;
}

}  // namespace viewrewrite

int main(int argc, char** argv) { return viewrewrite::Main(argc, argv); }
