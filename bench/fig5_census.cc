// Reproduces Fig. 5(f): ViewRewrite on the U.S. Census schema (W31,
// policy = household), sweeping the privacy budget. The paper's takeaway
// is that the behaviour mirrors TPC-H.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  CensusConfig config;
  auto db = GenerateCensus(config);
  std::printf(
      "=== Figure 5(f): U.S. Census, workload W31 (policy=household, "
      "size=10M-equivalent) ===\n");
  std::printf("%-8s %-8s %-6s %-14s %-14s\n", "eps", "queries", "views",
              "median_relerr", "mean_relerr");
  const size_t cap = FullMode() ? 0 : 1000;
  for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    EngineOptions opts;
    opts.strict = true;  // benchmarks keep the fail-fast contract
    opts.epsilon = eps;
    opts.seed = 1860;
    ViewRewriteEngine engine(*db, PrivacyPolicy{"household"}, opts);
    auto sql = WorkloadSql(/*w=*/31, config.scale, 1860, cap);
    RunResult r = RunWorkload(engine, sql);
    std::printf("%-8.1f %-8zu %-6zu %-14.6f %-14.6f\n", eps, r.queries,
                r.views, r.median_error, r.mean_error);
  }
  return 0;
}
