// Chaos soak: many seeded fault schedules through the full
// publish -> save -> load -> serve run, asserting the resilience-layer
// invariants on every one (see tests/chaos/chaos_harness.h):
// no crash, no deadlock, ledger never over-spent, every response
// baseline-exact, stale, or an allowed typed error.
//
//   $ ./build/bench/chaos_soak [num_seeds] [base_seed]
//
// Defaults: 32 seeds starting at base seed 1. Exits non-zero on the
// first invariant violation, printing every violation for that seed.
// Registered under ctest label "chaos" (excluded from tier-1); CI runs
// it with a hard wall-clock bound.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>

#include "chaos/chaos_harness.h"

int main(int argc, char** argv) {
  using namespace viewrewrite;

  const uint64_t num_seeds =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 32;
  const uint64_t base_seed =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;

  std::printf("chaos soak: %llu seeds from %llu\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(base_seed));
  std::printf("%-8s %-8s %-7s %-7s %-7s %-7s %-8s %s\n", "seed", "views",
              "fresh", "stale", "errors", "reload", "publish", "verdict");

  uint64_t failed_seeds = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = base_seed + i;
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed);
    std::printf("%-8llu %-8llu %-7llu %-7llu %-7llu %-7s %-8s %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(run.published_views),
                static_cast<unsigned long long>(run.fresh),
                static_cast<unsigned long long>(run.stale),
                static_cast<unsigned long long>(run.errors),
                run.reload_attempted ? "yes" : "no",
                run.prepare_ok ? "ok" : "degraded",
                run.ok() ? "pass" : "FAIL");
    if (!run.ok()) {
      ++failed_seeds;
      for (const std::string& violation : run.violations) {
        std::fprintf(stderr, "  seed %llu violation: %s\n",
                     static_cast<unsigned long long>(seed),
                     violation.c_str());
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("soak finished in %.1fs: %llu/%llu seeds passed\n", elapsed,
              static_cast<unsigned long long>(num_seeds - failed_seeds),
              static_cast<unsigned long long>(num_seeds));
  return failed_seeds == 0 ? 0 : 1;
}
