// Chaos soak: many seeded fault schedules through the full
// publish -> save -> load -> serve run, asserting the resilience-layer
// invariants on every one (see tests/chaos/chaos_harness.h):
// no crash, no deadlock, ledger never over-spent (including across
// republish generations), every response generation-baseline-exact,
// stale, or an allowed typed error, the conservation law
// (flights + coalesced_waiters + cache_short_circuits
// + expired_in_queue + shed_hopeless + shed_displaced == submitted)
// after every shutdown, and no torn bundle under republish/reload/query
// races — now with the overload-control fault point, priority classes
// and seed-drawn limiter/brownout in the mix.
//
//   $ ./build/bench/chaos_soak [num_seeds] [base_seed]
//
// Defaults: 32 seeds starting at base seed 1. Exits non-zero on the
// first invariant violation, printing every violation for that seed.
// Registered under ctest label "chaos" (excluded from tier-1); CI runs
// it with a hard wall-clock bound.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>

#include "chaos/chaos_harness.h"

int main(int argc, char** argv) {
  using namespace viewrewrite;

  const uint64_t num_seeds =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 32;
  const uint64_t base_seed =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;

  std::printf("chaos soak: %llu seeds from %llu\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(base_seed));
  std::printf(
      "%-6s %-6s %-6s %-6s %-6s %-7s %-8s %-7s %-7s %-7s %-7s %-7s %-7s "
      "%-7s %s\n",
      "seed", "views", "fresh", "stale", "errors", "flights", "coalesc",
      "maxgrp", "reload", "publish", "single", "gens", "rebuilt", "outdtd",
      "verdict");

  uint64_t failed_seeds = 0;
  uint64_t total_submitted = 0;
  uint64_t total_flights = 0;
  uint64_t total_coalesced = 0;
  uint64_t total_short_circuits = 0;
  uint64_t total_expired = 0;
  uint64_t largest_group = 0;
  uint64_t total_generations = 0;
  uint64_t total_rebuilt = 0;
  uint64_t total_outdated = 0;
  uint64_t total_shed_admission = 0;
  uint64_t total_shed_hopeless = 0;
  uint64_t total_shed_displaced = 0;
  uint64_t total_brownout = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = base_seed + i;
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed);
    // gens column: published / attempted republish generations.
    char gens[24];
    std::snprintf(gens, sizeof(gens), "%llu/%llu",
                  static_cast<unsigned long long>(run.generations_published),
                  static_cast<unsigned long long>(run.generations_attempted));
    std::printf(
        "%-6llu %-6llu %-6llu %-6llu %-6llu %-7llu %-8llu %-7llu %-7s %-7s "
        "%-7s %-7s %-7llu %-7llu %s\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(run.published_views),
        static_cast<unsigned long long>(run.fresh),
        static_cast<unsigned long long>(run.stale),
        static_cast<unsigned long long>(run.errors),
        static_cast<unsigned long long>(run.flights),
        static_cast<unsigned long long>(run.coalesced_waiters),
        static_cast<unsigned long long>(run.max_flight_group),
        run.reload_attempted ? "yes" : "no",
        run.prepare_ok ? "ok" : "degrade",
        run.coalescing_enabled ? "on" : "off", gens,
        static_cast<unsigned long long>(run.views_rebuilt),
        static_cast<unsigned long long>(run.outdated_served),
        run.ok() ? "pass" : "FAIL");
    total_submitted += run.submitted;
    total_flights += run.flights;
    total_coalesced += run.coalesced_waiters;
    total_short_circuits += run.cache_short_circuits;
    total_expired += run.expired_in_queue;
    if (run.max_flight_group > largest_group) {
      largest_group = run.max_flight_group;
    }
    total_generations += run.generations_published;
    total_rebuilt += run.views_rebuilt;
    total_outdated += run.outdated_served;
    total_shed_admission += run.shed_admission;
    total_shed_hopeless += run.shed_hopeless;
    total_shed_displaced += run.shed_displaced;
    total_brownout += run.brownout_served;
    if (!run.ok()) {
      ++failed_seeds;
      for (const std::string& violation : run.violations) {
        std::fprintf(stderr, "  seed %llu violation: %s\n",
                     static_cast<unsigned long long>(seed),
                     violation.c_str());
      }
    }
  }
  // The per-seed harness already asserts the conservation law on each
  // server; summing the channels across every seed must balance too — a
  // cheap cross-check that no seed's accounting was silently skipped.
  if (total_flights + total_coalesced + total_short_circuits +
          total_expired + total_shed_hopeless + total_shed_displaced !=
      total_submitted) {
    std::fprintf(stderr,
                 "aggregate conservation violated: %llu + %llu + %llu + %llu "
                 "+ %llu + %llu != %llu\n",
                 static_cast<unsigned long long>(total_flights),
                 static_cast<unsigned long long>(total_coalesced),
                 static_cast<unsigned long long>(total_short_circuits),
                 static_cast<unsigned long long>(total_expired),
                 static_cast<unsigned long long>(total_shed_hopeless),
                 static_cast<unsigned long long>(total_shed_displaced),
                 static_cast<unsigned long long>(total_submitted));
    ++failed_seeds;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "soak coalescing: submitted=%llu flights=%llu coalesced=%llu "
      "short_circuits=%llu expired_in_queue=%llu largest_group=%llu\n",
      static_cast<unsigned long long>(total_submitted),
      static_cast<unsigned long long>(total_flights),
      static_cast<unsigned long long>(total_coalesced),
      static_cast<unsigned long long>(total_short_circuits),
      static_cast<unsigned long long>(total_expired),
      static_cast<unsigned long long>(largest_group));
  std::printf(
      "soak overload: shed_admission=%llu shed_hopeless=%llu "
      "shed_displaced=%llu brownout_served=%llu\n",
      static_cast<unsigned long long>(total_shed_admission),
      static_cast<unsigned long long>(total_shed_hopeless),
      static_cast<unsigned long long>(total_shed_displaced),
      static_cast<unsigned long long>(total_brownout));
  std::printf(
      "soak lifecycle: generations_published=%llu views_rebuilt=%llu "
      "outdated_served=%llu\n",
      static_cast<unsigned long long>(total_generations),
      static_cast<unsigned long long>(total_rebuilt),
      static_cast<unsigned long long>(total_outdated));
  std::printf("soak finished in %.1fs: %llu/%llu seeds passed\n", elapsed,
              static_cast<unsigned long long>(num_seeds - failed_seeds),
              static_cast<unsigned long long>(num_seeds));
  return failed_seeds == 0 ? 0 : 1;
}
