// Overload soak: many seeded open-loop overload runs through the serve
// path (tests/chaos/overload_harness.h), asserting the overload contract
// on every one: no congestion collapse at 2x-10x capacity, typed fast
// shedding, bounded drain, no priority inversion, baseline-exact answers
// under pressure, and the extended conservation law
// (flights + coalesced_waiters + cache_short_circuits + expired_in_queue
// + shed_hopeless + shed_displaced == submitted) plus admission
// accounting (submitted + rejected + shed_admission + brownout_served
// == issued) after every run.
//
//   $ ./build/bench/overload_soak [num_seeds] [base_seed]
//
// Defaults: 32 seeds starting at base seed 1. Exits non-zero on the
// first contract violation, printing every violation for that seed.
// Registered under ctest label "chaos" (excluded from tier-1); CI runs
// it with a hard wall-clock bound.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>

#include "chaos/overload_harness.h"

int main(int argc, char** argv) {
  using namespace viewrewrite;

  const uint64_t num_seeds =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 32;
  const uint64_t base_seed =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;

  std::printf("overload soak: %llu seeds from %llu\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(base_seed));
  std::printf("%-6s %-9s %-8s %-8s %-8s %-8s %-9s %-9s %-8s %s\n", "seed",
              "capacity", "good2x", "good4x", "good10x", "shed", "expired",
              "shed_p99", "drain", "verdict");

  // Shorter phases than the defaults: 32 seeds must fit the CI bound,
  // and the contract is phase-length-invariant.
  chaos::OverloadConfig config;
  config.calibration = std::chrono::milliseconds(200);
  config.phase = std::chrono::milliseconds(300);

  uint64_t failed_seeds = 0;
  uint64_t total_issued = 0;
  uint64_t total_submitted = 0;
  uint64_t total_shed_admission = 0;
  uint64_t total_shed_hopeless = 0;
  uint64_t total_shed_displaced = 0;
  double worst_goodput_fraction = 1.0;
  double worst_shed_p99_ms = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = base_seed + i;
    chaos::OverloadRunResult run = chaos::RunOverloadSeed(seed, config);
    uint64_t shed = 0, expired = 0;
    double peak = 0, shed_p99 = 0, drain = 0;
    for (const auto& p : run.phases) {
      shed += p.shed;
      expired += p.expired;
      if (p.goodput_qps > peak) peak = p.goodput_qps;
      if (p.shed_p99_ms > shed_p99) shed_p99 = p.shed_p99_ms;
      if (p.drain_seconds > drain) drain = p.drain_seconds;
    }
    for (const auto& p : run.phases) {
      if (peak > 0 && p.goodput_qps / peak < worst_goodput_fraction) {
        worst_goodput_fraction = p.goodput_qps / peak;
      }
    }
    if (shed_p99 > worst_shed_p99_ms) worst_shed_p99_ms = shed_p99;
    auto goodput_at = [&run](size_t idx) {
      return idx < run.phases.size() ? run.phases[idx].goodput_qps : 0.0;
    };
    std::printf(
        "%-6llu %-9.0f %-8.0f %-8.0f %-8.0f %-8llu %-9llu %-9.3f %-8.2f %s\n",
        static_cast<unsigned long long>(seed), run.capacity_qps,
        goodput_at(0), goodput_at(1), goodput_at(2),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(expired), shed_p99, drain,
        run.ok() ? "pass" : "FAIL");
    total_issued += run.issued;
    total_submitted += run.submitted;
    total_shed_admission += run.shed_admission;
    total_shed_hopeless += run.shed_hopeless;
    total_shed_displaced += run.shed_displaced;
    if (!run.ok()) {
      ++failed_seeds;
      for (const std::string& violation : run.violations) {
        std::fprintf(stderr, "  seed %llu violation: %s\n",
                     static_cast<unsigned long long>(seed),
                     violation.c_str());
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "soak overload: issued=%llu submitted=%llu shed_admission=%llu "
      "shed_hopeless=%llu shed_displaced=%llu\n",
      static_cast<unsigned long long>(total_issued),
      static_cast<unsigned long long>(total_submitted),
      static_cast<unsigned long long>(total_shed_admission),
      static_cast<unsigned long long>(total_shed_hopeless),
      static_cast<unsigned long long>(total_shed_displaced));
  std::printf("soak bounds: worst_goodput_fraction=%.2f worst_shed_p99=%.3fms\n",
              worst_goodput_fraction, worst_shed_p99_ms);
  std::printf("soak finished in %.1fs: %llu/%llu seeds passed\n", elapsed,
              static_cast<unsigned long long>(num_seeds - failed_seeds),
              static_cast<unsigned long long>(num_seeds));
  return failed_seeds == 0 ? 0 : 1;
}
