// Design-choice ablation (beyond the paper's Table 2): toggles individual
// rewrite stages and reports the resulting view counts, isolating how much
// each stage contributes to keeping views flat.
//
//   full       all stages (Rules 1-20)
//   -merge     Rules 4/5 disabled (same-structure subqueries not merged)
//   -hoist     Rules 1-3 disabled (derived-table filters stay in views)
//   -promote   key-filter promotion disabled (subquery key constants stay)
//   baseline   the PrivateSQL-like configuration (-hoist -merge -promote)

#include <cstdio>

#include "bench/bench_util.h"
#include "sql/parser.h"
#include "view/view_manager.h"

namespace viewrewrite {
namespace bench {
namespace {

size_t CountViews(const Database& db, const std::vector<std::string>& sql,
                  const RewriteOptions& ropts) {
  Rewriter rewriter(db.schema(), ropts);
  ViewManager manager(db.schema(), PrivacyPolicy{"orders"});
  for (const std::string& q : sql) {
    auto stmt = ParseSelect(q);
    if (!stmt.ok()) continue;
    auto rq = rewriter.Rewrite(**stmt);
    if (!rq.ok()) continue;
    (void)manager.RegisterRewritten(*rq, nullptr);
  }
  return manager.NumViews();
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  TpchConfig config;
  auto db = GenerateTpch(config);

  std::printf(
      "=== Rewrite-stage ablation: views generated per configuration ===\n");
  std::printf("%-10s %-8s | %-6s %-7s %-7s %-9s\n", "workload", "queries",
              "full", "-merge", "-hoist", "-promote");

  for (int w : {12, 17, 22, 27}) {
    auto sql = WorkloadSql(w, 1, 424242, FullMode() ? 0 : 600);

    RewriteOptions full;
    RewriteOptions no_merge = full;
    no_merge.enable_merge = false;
    RewriteOptions no_hoist = full;
    no_hoist.enable_hoist = false;
    RewriteOptions no_promote = full;
    no_promote.enable_key_filter_promotion = false;

    std::printf("W%-9d %-8zu | %-6zu %-7zu %-7zu %-9zu\n", w, sql.size(),
                CountViews(*db, sql, full), CountViews(*db, sql, no_merge),
                CountViews(*db, sql, no_hoist),
                CountViews(*db, sql, no_promote));
  }
  std::printf(
      "\nReading: each disabled stage leaves constants (or duplicate "
      "structures) in the\nview definition, multiplying views exactly as "
      "the paper's analysis predicts.\n");
  return 0;
}
