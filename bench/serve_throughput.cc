// Serving-layer throughput: queries/sec answered by a QueryServer over a
// save/load round-tripped synopsis bundle, swept across worker-thread
// counts (1/2/4/8) with the answer cache on and off. Emits BENCH_serve.json
// alongside the human-readable table.
//
// Each row's `speedup` is its qps relative to the single-thread run in the
// same cache mode, so the thread axis is read per mode: cache-off rows
// exercise the full parse -> rewrite -> match -> cell-scan pipeline and
// scale with physical cores (`hardware_threads` is recorded so a flat
// curve on a small machine is self-explanatory), while cache-on rows
// measure the sharded LRU plus submission/answer overlap. The top-level
// `cache_speedup` (single-thread cache-on vs cache-off) is the headline
// serving-layer gain and is core-count independent.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  constexpr uint64_t kSeed = 20250805;
  TpchConfig config;
  auto db = GenerateTpch(config);

  const size_t n_queries = FullMode() ? 600 : 150;
  auto sql = WorkloadSql(/*w=*/1, config.scale, kSeed, n_queries);

  EngineOptions opts;
  opts.strict = true;
  opts.epsilon = 8.0;
  opts.seed = kSeed;
  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
  {
    Status st = engine.Prepare(sql);
    if (!st.ok()) {
      std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Serve from a bundle that went through disk, as a real server would.
  const std::string path = "BENCH_serve_bundle.vrsy";
  std::shared_ptr<const SynopsisStore> store;
  {
    auto snapshot = SynopsisStore::FromManager(engine.views(), db->schema());
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (Status st = snapshot->Save(path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto loaded = SynopsisStore::Load(path, db->schema());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    store = std::make_shared<SynopsisStore>(std::move(*loaded));
  }

  const size_t submissions = FullMode() ? 20000 : 4000;
  std::printf("=== serve throughput: %zu submissions over %zu distinct "
              "queries, bundle of %zu views ===\n",
              submissions, sql.size(), store->NumViews());
  std::printf("%-8s %-8s | %-12s %-10s\n", "threads", "cache", "qps",
              "speedup");

  struct Row {
    size_t threads;
    bool cache;
    double qps;
    double speedup;
    uint64_t cache_hits;
    uint64_t cache_misses;
  };
  std::vector<Row> rows;
  double baseline_qps[2] = {0, 0};  // [cache_on] -> single-thread qps

  for (bool cache_on : {false, true}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ServeOptions options;
      options.num_threads = threads;
      options.queue_capacity = submissions;
      options.enable_cache = cache_on;
      QueryServer server(store, db->schema(), options);

      std::vector<std::future<Result<ServedAnswer>>> futures;
      futures.reserve(submissions);
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < submissions; ++i) {
        futures.push_back(server.Submit(sql[i % sql.size()]));
      }
      size_t failed = 0;
      for (auto& f : futures) {
        if (!f.get().ok()) ++failed;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      server.Shutdown();
      if (failed > 0) {
        std::fprintf(stderr, "%zu submissions failed\n", failed);
        return 1;
      }

      Row row;
      row.threads = threads;
      row.cache = cache_on;
      row.qps = static_cast<double>(submissions) / elapsed;
      if (threads == 1) baseline_qps[cache_on] = row.qps;
      row.speedup = row.qps / baseline_qps[cache_on];
      ServeStats stats = server.stats();
      row.cache_hits = stats.cache_hits;
      row.cache_misses = stats.cache_misses;
      rows.push_back(row);

      std::printf("%-8zu %-8s | %-12.0f %-10.2f\n", threads,
                  cache_on ? "on" : "off", row.qps, row.speedup);
    }
  }

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  const double cache_speedup =
      baseline_qps[0] > 0 ? baseline_qps[1] / baseline_qps[0] : 0.0;
  std::fprintf(json,
               "{\n  \"submissions\": %zu,\n  \"distinct_queries\": %zu,"
               "\n  \"views\": %zu,\n  \"hardware_threads\": %u,"
               "\n  \"cache_speedup\": %.3f,\n  \"runs\": [\n",
               submissions, sql.size(), store->NumViews(),
               std::thread::hardware_concurrency(), cache_speedup);
  std::printf("cache speedup (1-thread on vs off): %.2fx\n", cache_speedup);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"cache\": %s, \"qps\": %.1f, "
                 "\"speedup\": %.3f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu}%s\n",
                 r.threads, r.cache ? "true" : "false", r.qps, r.speedup,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}
