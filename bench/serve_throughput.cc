// Serving-layer throughput: queries/sec answered by a QueryServer over a
// save/load round-tripped synopsis bundle, swept across worker-thread
// counts (1/2/4/8) with the answer cache on and off. Emits BENCH_serve.json
// alongside the human-readable table.
//
// Each row's `speedup` is its qps relative to the single-thread run in the
// same cache mode, so the thread axis is read per mode: cache-off rows
// exercise the full parse -> rewrite -> match -> cell-scan pipeline and
// scale with physical cores (`hardware_threads` is recorded so a flat
// curve on a small machine is self-explanatory), while cache-on rows
// measure the sharded LRU plus submission/answer overlap. The top-level
// `cache_speedup` (single-thread cache-on vs cache-off) is the headline
// serving-layer gain and is core-count independent.
//
// The sweep runs with coalescing OFF so the thread axis stays a pure
// pipeline measurement. A second, duplicate-heavy section then measures
// what single-flight coalescing and batched submission buy when traffic
// repeats itself: the same flood of requests over a hot set of as many
// distinct queries as there are workers, cache off (so coalescing is the
// only dedup in play), in three modes —
// per-request submits with coalescing off, the same with coalescing on,
// and SubmitBatch chunks. `duplicate_heavy.coalesce_speedup` (on vs off)
// is the headline coalescing gain; CI asserts it stays >= 2x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  constexpr uint64_t kSeed = 20250805;
  TpchConfig config;
  auto db = GenerateTpch(config);

  const size_t n_queries = FullMode() ? 600 : 150;
  auto sql = WorkloadSql(/*w=*/1, config.scale, kSeed, n_queries);

  EngineOptions opts;
  opts.strict = true;
  opts.epsilon = 8.0;
  opts.seed = kSeed;
  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
  {
    Status st = engine.Prepare(sql);
    if (!st.ok()) {
      std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Serve from a bundle that went through disk, as a real server would.
  const std::string path = "BENCH_serve_bundle.vrsy";
  std::shared_ptr<const SynopsisStore> store;
  {
    auto snapshot = SynopsisStore::FromManager(engine.views(), db->schema());
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (Status st = snapshot->Save(path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto loaded = SynopsisStore::Load(path, db->schema());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    store = std::make_shared<SynopsisStore>(std::move(*loaded));
  }

  const size_t submissions = FullMode() ? 20000 : 4000;
  std::printf("=== serve throughput: %zu submissions over %zu distinct "
              "queries, bundle of %zu views ===\n",
              submissions, sql.size(), store->NumViews());
  std::printf("%-8s %-8s | %-12s %-10s\n", "threads", "cache", "qps",
              "speedup");

  struct Row {
    size_t threads;
    bool cache;
    double qps;
    double speedup;
    uint64_t cache_hits;
    uint64_t cache_misses;
  };
  std::vector<Row> rows;
  double baseline_qps[2] = {0, 0};  // [cache_on] -> single-thread qps

  for (bool cache_on : {false, true}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ServeOptions options;
      options.num_threads = threads;
      options.queue_capacity = submissions;
      options.enable_cache = cache_on;
      // The sweep measures the raw pipeline and the cache; coalescing has
      // its own duplicate-heavy section below.
      options.enable_coalescing = false;
      QueryServer server(store, db->schema(), options);

      std::vector<std::future<Result<ServedAnswer>>> futures;
      futures.reserve(submissions);
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < submissions; ++i) {
        futures.push_back(server.Submit(sql[i % sql.size()]));
      }
      size_t failed = 0;
      for (auto& f : futures) {
        if (!f.get().ok()) ++failed;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      server.Shutdown();
      if (failed > 0) {
        std::fprintf(stderr, "%zu submissions failed\n", failed);
        return 1;
      }

      Row row;
      row.threads = threads;
      row.cache = cache_on;
      row.qps = static_cast<double>(submissions) / elapsed;
      if (threads == 1) baseline_qps[cache_on] = row.qps;
      row.speedup = row.qps / baseline_qps[cache_on];
      ServeStats stats = server.stats();
      row.cache_hits = stats.cache_hits;
      row.cache_misses = stats.cache_misses;
      rows.push_back(row);

      std::printf("%-8zu %-8s | %-12.0f %-10.2f\n", threads,
                  cache_on ? "on" : "off", row.qps, row.speedup);
    }
  }

  // ---- Duplicate-heavy section: what coalescing and batching buy. ----------
  // Real serving traffic repeats itself; this models the hot tail with a
  // flood of submissions over just 8 distinct queries, cache disabled so
  // every saved computation is the coalescer's (not the LRU's) doing.
  // Distinct count matches the worker count: with a flight live per hot
  // query, nearly every duplicate joins instead of recomputing — the
  // regime coalescing exists for. (More distinct queries than workers
  // leaves gaps with no live flight to join, which just re-measures the
  // pipeline.)
  const size_t dup_submissions = FullMode() ? 20000 : 4000;
  const size_t dup_threads = 4;
  const size_t dup_distinct = std::min<size_t>(dup_threads, sql.size());
  // Per-request modes submit from several frontend threads so a backlog
  // actually forms (one submitter can't outrun four workers); the batch
  // mode keeps a single submitter — chunked SubmitBatch is itself the
  // amortization being measured.
  const size_t dup_submitters = 4;
  const size_t batch_chunk = 64;
  struct DupRun {
    const char* mode;
    double qps = 0;
    uint64_t flights = 0;
    uint64_t coalesced_waiters = 0;
    uint64_t max_flight_group = 0;
  };
  std::vector<DupRun> dup_runs;
  std::printf("=== duplicate-heavy: %zu submissions over %zu distinct "
              "queries, %zu threads, cache off ===\n",
              dup_submissions, dup_distinct, dup_threads);
  std::printf("%-14s | %-12s %-9s %-10s %-8s\n", "mode", "qps", "flights",
              "coalesced", "maxgrp");
  for (const char* mode : {"coalesce_off", "coalesce_on", "batch"}) {
    const bool batched = std::string(mode) == "batch";
    ServeOptions options;
    options.num_threads = dup_threads;
    options.queue_capacity = dup_submissions;
    options.enable_cache = false;
    options.enable_coalescing = std::string(mode) != "coalesce_off";
    QueryServer server(store, db->schema(), options);

    std::vector<std::future<Result<ServedAnswer>>> futures;
    futures.reserve(dup_submissions);
    const auto t0 = std::chrono::steady_clock::now();
    if (batched) {
      std::vector<std::string> chunk;
      chunk.reserve(batch_chunk);
      for (size_t i = 0; i < dup_submissions; ++i) {
        chunk.push_back(sql[i % dup_distinct]);
        if (chunk.size() == batch_chunk || i + 1 == dup_submissions) {
          auto batch = server.SubmitBatch(std::move(chunk));
          for (auto& f : batch) futures.push_back(std::move(f));
          chunk.clear();
        }
      }
    } else {
      std::vector<std::vector<std::future<Result<ServedAnswer>>>> per(
          dup_submitters);
      std::vector<std::thread> submitters;
      for (size_t t = 0; t < dup_submitters; ++t) {
        submitters.emplace_back([&, t] {
          for (size_t i = t; i < dup_submissions; i += dup_submitters) {
            per[t].push_back(server.Submit(sql[i % dup_distinct]));
          }
        });
      }
      for (std::thread& t : submitters) t.join();
      for (auto& p : per) {
        for (auto& f : p) futures.push_back(std::move(f));
      }
    }
    size_t failed = 0;
    for (auto& f : futures) {
      if (!f.get().ok()) ++failed;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.Shutdown();
    if (failed > 0) {
      std::fprintf(stderr, "%zu duplicate-heavy submissions failed (%s)\n",
                   failed, mode);
      return 1;
    }
    ServeStats stats = server.stats();
    DupRun run;
    run.mode = mode;
    run.qps = static_cast<double>(dup_submissions) / elapsed;
    run.flights = stats.flights;
    run.coalesced_waiters = stats.coalesced_waiters;
    run.max_flight_group = stats.max_flight_group;
    dup_runs.push_back(run);
    std::printf("%-14s | %-12.0f %-9llu %-10llu %-8llu\n", mode, run.qps,
                static_cast<unsigned long long>(run.flights),
                static_cast<unsigned long long>(run.coalesced_waiters),
                static_cast<unsigned long long>(run.max_flight_group));
  }
  const double coalesce_speedup =
      dup_runs[0].qps > 0 ? dup_runs[1].qps / dup_runs[0].qps : 0.0;
  const double batch_speedup =
      dup_runs[0].qps > 0 ? dup_runs[2].qps / dup_runs[0].qps : 0.0;
  std::printf("coalescing speedup (on vs off): %.2fx, batch: %.2fx\n",
              coalesce_speedup, batch_speedup);

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  const double cache_speedup =
      baseline_qps[0] > 0 ? baseline_qps[1] / baseline_qps[0] : 0.0;
  std::fprintf(json,
               "{\n  \"submissions\": %zu,\n  \"distinct_queries\": %zu,"
               "\n  \"views\": %zu,\n  \"hardware_threads\": %u,"
               "\n  \"cache_speedup\": %.3f,\n  \"runs\": [\n",
               submissions, sql.size(), store->NumViews(),
               std::thread::hardware_concurrency(), cache_speedup);
  std::printf("cache speedup (1-thread on vs off): %.2fx\n", cache_speedup);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"cache\": %s, \"qps\": %.1f, "
                 "\"speedup\": %.3f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu}%s\n",
                 r.threads, r.cache ? "true" : "false", r.qps, r.speedup,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"duplicate_heavy\": {\n"
               "    \"submissions\": %zu,\n    \"distinct_queries\": %zu,\n"
               "    \"threads\": %zu,\n    \"batch_chunk\": %zu,\n"
               "    \"coalesce_speedup\": %.3f,\n"
               "    \"batch_speedup\": %.3f,\n    \"modes\": [\n",
               dup_submissions, dup_distinct, dup_threads, batch_chunk,
               coalesce_speedup, batch_speedup);
  for (size_t i = 0; i < dup_runs.size(); ++i) {
    const DupRun& r = dup_runs[i];
    std::fprintf(json,
                 "      {\"mode\": \"%s\", \"qps\": %.1f, \"flights\": %llu, "
                 "\"coalesced_waiters\": %llu, \"max_flight_group\": %llu}%s\n",
                 r.mode, r.qps, static_cast<unsigned long long>(r.flights),
                 static_cast<unsigned long long>(r.coalesced_waiters),
                 static_cast<unsigned long long>(r.max_flight_group),
                 i + 1 < dup_runs.size() ? "," : "");
  }
  std::fprintf(json, "    ]\n  }\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}
