// Serving-layer throughput: queries/sec answered by a QueryServer over a
// save/load round-tripped synopsis bundle, swept across worker-thread
// counts (1/2/4/8) with the answer cache on and off. Emits BENCH_serve.json
// alongside the human-readable table.
//
// Each row's `speedup` is its qps relative to the single-thread run in the
// same cache mode, so the thread axis is read per mode: cache-off rows
// exercise the full parse -> rewrite -> match -> cell-scan pipeline and
// scale with physical cores (`hardware_threads` is recorded so a flat
// curve on a small machine is self-explanatory), while cache-on rows
// measure the sharded LRU plus submission/answer overlap. The top-level
// `cache_speedup` (single-thread cache-on vs cache-off) is the headline
// serving-layer gain and is core-count independent.
//
// The sweep runs with coalescing OFF so the thread axis stays a pure
// pipeline measurement. A second, duplicate-heavy section then measures
// what single-flight coalescing and batched submission buy when traffic
// repeats itself: the same flood of requests over a hot set of as many
// distinct queries as there are workers, cache off (so coalescing is the
// only dedup in play), in three modes —
// per-request submits with coalescing off, the same with coalescing on,
// and SubmitBatch chunks. `duplicate_heavy.coalesce_speedup` (on vs off)
// is the headline coalescing gain; CI asserts it stays >= 2x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  constexpr uint64_t kSeed = 20250805;
  TpchConfig config;
  auto db = GenerateTpch(config);

  const size_t n_queries = FullMode() ? 600 : 150;
  auto sql = WorkloadSql(/*w=*/1, config.scale, kSeed, n_queries);

  EngineOptions opts;
  opts.strict = true;
  opts.epsilon = 8.0;
  opts.seed = kSeed;
  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
  {
    Status st = engine.Prepare(sql);
    if (!st.ok()) {
      std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Serve from a bundle that went through disk, as a real server would.
  const std::string path = "BENCH_serve_bundle.vrsy";
  std::shared_ptr<const SynopsisStore> store;
  {
    auto snapshot = SynopsisStore::FromManager(engine.views(), db->schema());
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    if (Status st = snapshot->Save(path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto loaded = SynopsisStore::Load(path, db->schema());
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    store = std::make_shared<SynopsisStore>(std::move(*loaded));
  }

  const size_t submissions = FullMode() ? 20000 : 4000;
  std::printf("=== serve throughput: %zu submissions over %zu distinct "
              "queries, bundle of %zu views ===\n",
              submissions, sql.size(), store->NumViews());
  std::printf("%-8s %-8s | %-12s %-10s\n", "threads", "cache", "qps",
              "speedup");

  struct Row {
    size_t threads;
    bool cache;
    double qps;
    double speedup;
    uint64_t cache_hits;
    uint64_t cache_misses;
  };
  std::vector<Row> rows;
  double baseline_qps[2] = {0, 0};  // [cache_on] -> single-thread qps

  for (bool cache_on : {false, true}) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ServeOptions options;
      options.num_threads = threads;
      options.queue_capacity = submissions;
      options.enable_cache = cache_on;
      // The sweep measures the raw pipeline and the cache; coalescing has
      // its own duplicate-heavy section below.
      options.enable_coalescing = false;
      QueryServer server(store, db->schema(), options);

      std::vector<std::future<Result<ServedAnswer>>> futures;
      futures.reserve(submissions);
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < submissions; ++i) {
        futures.push_back(server.Submit(sql[i % sql.size()]));
      }
      size_t failed = 0;
      for (auto& f : futures) {
        if (!f.get().ok()) ++failed;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      server.Shutdown();
      if (failed > 0) {
        std::fprintf(stderr, "%zu submissions failed\n", failed);
        return 1;
      }

      Row row;
      row.threads = threads;
      row.cache = cache_on;
      row.qps = static_cast<double>(submissions) / elapsed;
      if (threads == 1) baseline_qps[cache_on] = row.qps;
      row.speedup = row.qps / baseline_qps[cache_on];
      ServeStats stats = server.stats();
      row.cache_hits = stats.cache_hits;
      row.cache_misses = stats.cache_misses;
      rows.push_back(row);

      std::printf("%-8zu %-8s | %-12.0f %-10.2f\n", threads,
                  cache_on ? "on" : "off", row.qps, row.speedup);
    }
  }

  // ---- Duplicate-heavy section: what coalescing and batching buy. ----------
  // Real serving traffic repeats itself; this models the hot tail with a
  // flood of submissions over just 8 distinct queries, cache disabled so
  // every saved computation is the coalescer's (not the LRU's) doing.
  // Distinct count matches the worker count: with a flight live per hot
  // query, nearly every duplicate joins instead of recomputing — the
  // regime coalescing exists for. (More distinct queries than workers
  // leaves gaps with no live flight to join, which just re-measures the
  // pipeline.)
  const size_t dup_submissions = FullMode() ? 20000 : 4000;
  const size_t dup_threads = 4;
  const size_t dup_distinct = std::min<size_t>(dup_threads, sql.size());
  // Per-request modes submit from several frontend threads so a backlog
  // actually forms (one submitter can't outrun four workers); the batch
  // mode keeps a single submitter — chunked SubmitBatch is itself the
  // amortization being measured.
  const size_t dup_submitters = 4;
  const size_t batch_chunk = 64;
  struct DupRun {
    const char* mode;
    double qps = 0;
    uint64_t flights = 0;
    uint64_t coalesced_waiters = 0;
    uint64_t max_flight_group = 0;
  };
  std::vector<DupRun> dup_runs;
  std::printf("=== duplicate-heavy: %zu submissions over %zu distinct "
              "queries, %zu threads, cache off ===\n",
              dup_submissions, dup_distinct, dup_threads);
  std::printf("%-14s | %-12s %-9s %-10s %-8s\n", "mode", "qps", "flights",
              "coalesced", "maxgrp");
  for (const char* mode : {"coalesce_off", "coalesce_on", "batch"}) {
    const bool batched = std::string(mode) == "batch";
    ServeOptions options;
    options.num_threads = dup_threads;
    options.queue_capacity = dup_submissions;
    options.enable_cache = false;
    options.enable_coalescing = std::string(mode) != "coalesce_off";
    QueryServer server(store, db->schema(), options);

    std::vector<std::future<Result<ServedAnswer>>> futures;
    futures.reserve(dup_submissions);
    const auto t0 = std::chrono::steady_clock::now();
    if (batched) {
      std::vector<std::string> chunk;
      chunk.reserve(batch_chunk);
      for (size_t i = 0; i < dup_submissions; ++i) {
        chunk.push_back(sql[i % dup_distinct]);
        if (chunk.size() == batch_chunk || i + 1 == dup_submissions) {
          auto batch = server.SubmitBatch(std::move(chunk));
          for (auto& f : batch) futures.push_back(std::move(f));
          chunk.clear();
        }
      }
    } else {
      std::vector<std::vector<std::future<Result<ServedAnswer>>>> per(
          dup_submitters);
      std::vector<std::thread> submitters;
      for (size_t t = 0; t < dup_submitters; ++t) {
        submitters.emplace_back([&, t] {
          for (size_t i = t; i < dup_submissions; i += dup_submitters) {
            per[t].push_back(server.Submit(sql[i % dup_distinct]));
          }
        });
      }
      for (std::thread& t : submitters) t.join();
      for (auto& p : per) {
        for (auto& f : p) futures.push_back(std::move(f));
      }
    }
    size_t failed = 0;
    for (auto& f : futures) {
      if (!f.get().ok()) ++failed;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    server.Shutdown();
    if (failed > 0) {
      std::fprintf(stderr, "%zu duplicate-heavy submissions failed (%s)\n",
                   failed, mode);
      return 1;
    }
    ServeStats stats = server.stats();
    DupRun run;
    run.mode = mode;
    run.qps = static_cast<double>(dup_submissions) / elapsed;
    run.flights = stats.flights;
    run.coalesced_waiters = stats.coalesced_waiters;
    run.max_flight_group = stats.max_flight_group;
    dup_runs.push_back(run);
    std::printf("%-14s | %-12.0f %-9llu %-10llu %-8llu\n", mode, run.qps,
                static_cast<unsigned long long>(run.flights),
                static_cast<unsigned long long>(run.coalesced_waiters),
                static_cast<unsigned long long>(run.max_flight_group));
  }
  const double coalesce_speedup =
      dup_runs[0].qps > 0 ? dup_runs[1].qps / dup_runs[0].qps : 0.0;
  const double batch_speedup =
      dup_runs[0].qps > 0 ? dup_runs[2].qps / dup_runs[0].qps : 0.0;
  std::printf("coalescing speedup (on vs off): %.2fx, batch: %.2fx\n",
              coalesce_speedup, batch_speedup);

  // ---- Overload section: goodput under open-loop load beyond capacity. -----
  // Closed-loop capacity first (one request at a time through the full
  // pipeline), then open-loop phases at 1x/2x/4x/10x of it, paced by a
  // 1ms submission tick so arrivals keep coming whether or not the server
  // keeps up. Cache and coalescing off (they would absorb the repeats),
  // adaptive limiter on. The no-collapse headline: goodput at 4x and 10x
  // holds near the peak instead of diving as queues fill — shed requests
  // resolve synchronously in microseconds instead of timing out after
  // occupying a slot. CI gates goodput_4x_ratio / goodput_10x_ratio and
  // shed_p99_ms from the JSON below.
  struct OverloadPhase {
    double factor;
    double offered_qps = 0;
    double goodput_qps = 0;
    uint64_t issued = 0;
    uint64_t fresh = 0;
    uint64_t shed = 0;
    uint64_t expired = 0;
    double shed_p99_ms = 0;
  };
  std::vector<OverloadPhase> overload_phases;
  double overload_capacity = 0;
  {
    ServeOptions options;
    options.num_threads = 4;
    options.queue_capacity = 256;
    options.enable_cache = false;
    options.enable_coalescing = false;
    options.overload.limiter.enabled = true;
    options.overload.limiter.initial_limit = 32;
    options.overload.limiter.min_limit = 2;
    options.overload.limiter.max_limit = 256;
    QueryServer server(store, db->schema(), options);

    using Clock = std::chrono::steady_clock;
    const auto calibration =
        FullMode() ? std::chrono::milliseconds(2000)
                   : std::chrono::milliseconds(500);
    const auto phase_len = FullMode() ? std::chrono::milliseconds(2000)
                                      : std::chrono::milliseconds(1000);
    const auto deadline = std::chrono::milliseconds(500);

    uint64_t calib_done = 0;
    {
      const Clock::time_point until = Clock::now() + calibration;
      const Clock::time_point t0 = Clock::now();
      while (Clock::now() < until) {
        if (!server.Submit(sql[calib_done % sql.size()]).get().ok()) {
          std::fprintf(stderr, "overload calibration request failed\n");
          return 1;
        }
        ++calib_done;
      }
      overload_capacity =
          static_cast<double>(calib_done) /
          std::chrono::duration<double>(Clock::now() - t0).count();
    }
    std::printf("=== overload: capacity %.0f qps, open-loop phases of %lld ms,"
                " deadline %lld ms ===\n",
                overload_capacity,
                static_cast<long long>(phase_len.count()),
                static_cast<long long>(deadline.count()));
    std::printf("%-8s | %-12s %-12s %-8s %-8s %-9s %s\n", "factor", "offered",
                "goodput", "fresh", "shed", "expired", "shed_p99_ms");

    for (const double factor : {1.0, 2.0, 4.0, 10.0}) {
      OverloadPhase phase;
      phase.factor = factor;
      const std::chrono::nanoseconds tick = std::chrono::milliseconds(1);
      const double per_tick = overload_capacity * factor *
                              std::chrono::duration<double>(tick).count();
      std::vector<std::future<Result<ServedAnswer>>> futures;
      std::vector<std::chrono::nanoseconds> submit_wall;
      std::vector<bool> ready_at_submit;
      const Clock::time_point phase_start = Clock::now();
      const Clock::time_point phase_end = phase_start + phase_len;
      Clock::time_point next_tick = phase_start;
      double carry = 0;
      size_t qi = 0;
      while (Clock::now() < phase_end) {
        next_tick += tick;
        std::this_thread::sleep_until(next_tick);
        carry += per_tick;
        auto n = static_cast<size_t>(carry);
        carry -= static_cast<double>(n);
        for (size_t i = 0; i < n; ++i) {
          const Clock::time_point t0 = Clock::now();
          auto f = server.Submit(sql[qi++ % sql.size()], {}, deadline);
          submit_wall.push_back(Clock::now() - t0);
          ready_at_submit.push_back(f.wait_for(std::chrono::seconds(0)) ==
                                    std::future_status::ready);
          futures.push_back(std::move(f));
        }
      }
      const Clock::time_point submit_stop = Clock::now();
      phase.issued = futures.size();
      phase.offered_qps =
          static_cast<double>(phase.issued) /
          std::chrono::duration<double>(submit_stop - phase_start).count();
      std::vector<std::chrono::nanoseconds> shed_latencies;
      for (size_t i = 0; i < futures.size(); ++i) {
        Result<ServedAnswer> got = futures[i].get();
        if (got.ok()) {
          ++phase.fresh;
        } else if (got.status().code() == StatusCode::kDeadlineExceeded) {
          ++phase.expired;
        } else if (got.status().code() == StatusCode::kResourceExhausted ||
                   got.status().code() == StatusCode::kUnavailable) {
          ++phase.shed;
          if (ready_at_submit[i]) shed_latencies.push_back(submit_wall[i]);
        } else {
          std::fprintf(stderr, "unexpected overload-phase error: %s\n",
                       got.status().ToString().c_str());
          return 1;
        }
      }
      phase.goodput_qps =
          static_cast<double>(phase.fresh) /
          std::chrono::duration<double>(submit_stop - phase_start).count();
      if (!shed_latencies.empty()) {
        std::sort(shed_latencies.begin(), shed_latencies.end());
        const size_t idx = (shed_latencies.size() * 99) / 100;
        phase.shed_p99_ms =
            std::chrono::duration<double, std::milli>(
                shed_latencies[std::min(idx, shed_latencies.size() - 1)])
                .count();
      }
      overload_phases.push_back(phase);
      std::printf("%-8.0f | %-12.0f %-12.0f %-8llu %-8llu %-9llu %.4f\n",
                  factor, phase.offered_qps, phase.goodput_qps,
                  static_cast<unsigned long long>(phase.fresh),
                  static_cast<unsigned long long>(phase.shed),
                  static_cast<unsigned long long>(phase.expired),
                  phase.shed_p99_ms);
    }
    server.Shutdown();
  }
  double peak_goodput = 0, goodput_4x = 0, goodput_10x = 0;
  double overload_shed_p99 = 0;
  for (const OverloadPhase& p : overload_phases) {
    peak_goodput = std::max(peak_goodput, p.goodput_qps);
    if (p.factor == 4.0) goodput_4x = p.goodput_qps;
    if (p.factor == 10.0) goodput_10x = p.goodput_qps;
    overload_shed_p99 = std::max(overload_shed_p99, p.shed_p99_ms);
  }
  const double goodput_4x_ratio =
      peak_goodput > 0 ? goodput_4x / peak_goodput : 0;
  const double goodput_10x_ratio =
      peak_goodput > 0 ? goodput_10x / peak_goodput : 0;
  std::printf("overload goodput ratios vs peak: 4x %.2f, 10x %.2f; "
              "shed p99 %.4f ms\n",
              goodput_4x_ratio, goodput_10x_ratio, overload_shed_p99);

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  const double cache_speedup =
      baseline_qps[0] > 0 ? baseline_qps[1] / baseline_qps[0] : 0.0;
  std::fprintf(json,
               "{\n  \"submissions\": %zu,\n  \"distinct_queries\": %zu,"
               "\n  \"views\": %zu,\n  \"hardware_threads\": %u,"
               "\n  \"cache_speedup\": %.3f,\n  \"runs\": [\n",
               submissions, sql.size(), store->NumViews(),
               std::thread::hardware_concurrency(), cache_speedup);
  std::printf("cache speedup (1-thread on vs off): %.2fx\n", cache_speedup);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"cache\": %s, \"qps\": %.1f, "
                 "\"speedup\": %.3f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu}%s\n",
                 r.threads, r.cache ? "true" : "false", r.qps, r.speedup,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"duplicate_heavy\": {\n"
               "    \"submissions\": %zu,\n    \"distinct_queries\": %zu,\n"
               "    \"threads\": %zu,\n    \"batch_chunk\": %zu,\n"
               "    \"coalesce_speedup\": %.3f,\n"
               "    \"batch_speedup\": %.3f,\n    \"modes\": [\n",
               dup_submissions, dup_distinct, dup_threads, batch_chunk,
               coalesce_speedup, batch_speedup);
  for (size_t i = 0; i < dup_runs.size(); ++i) {
    const DupRun& r = dup_runs[i];
    std::fprintf(json,
                 "      {\"mode\": \"%s\", \"qps\": %.1f, \"flights\": %llu, "
                 "\"coalesced_waiters\": %llu, \"max_flight_group\": %llu}%s\n",
                 r.mode, r.qps, static_cast<unsigned long long>(r.flights),
                 static_cast<unsigned long long>(r.coalesced_waiters),
                 static_cast<unsigned long long>(r.max_flight_group),
                 i + 1 < dup_runs.size() ? "," : "");
  }
  std::fprintf(json, "    ]\n  },\n");
  std::fprintf(json,
               "  \"overload\": {\n"
               "    \"capacity_qps\": %.1f,\n"
               "    \"peak_goodput_qps\": %.1f,\n"
               "    \"goodput_4x_ratio\": %.3f,\n"
               "    \"goodput_10x_ratio\": %.3f,\n"
               "    \"shed_p99_ms\": %.4f,\n    \"phases\": [\n",
               overload_capacity, peak_goodput, goodput_4x_ratio,
               goodput_10x_ratio, overload_shed_p99);
  for (size_t i = 0; i < overload_phases.size(); ++i) {
    const OverloadPhase& p = overload_phases[i];
    std::fprintf(json,
                 "      {\"factor\": %.0f, \"offered_qps\": %.1f, "
                 "\"goodput_qps\": %.1f, \"fresh\": %llu, \"shed\": %llu, "
                 "\"expired\": %llu, \"shed_p99_ms\": %.4f}%s\n",
                 p.factor, p.offered_qps, p.goodput_qps,
                 static_cast<unsigned long long>(p.fresh),
                 static_cast<unsigned long long>(p.shed),
                 static_cast<unsigned long long>(p.expired), p.shed_p99_ms,
                 i + 1 < overload_phases.size() ? "," : "");
  }
  std::fprintf(json, "    ]\n  }\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}
