// Reproduces Fig. 5(a)-(c): ViewRewrite's overall median relative error on
// TPC-H under varying database size, privacy policy, and privacy budget.
// Paper defaults: workload W7 (1500 sum-type queries), eps = 8, policy =
// orders, size 10M (scale 1).

#include <cstdio>

#include "bench/bench_util.h"

namespace viewrewrite {
namespace bench {
namespace {

constexpr uint64_t kSeed = 7041992;

RunResult RunAt(int scale, const std::string& policy, double epsilon,
                size_t query_cap) {
  TpchConfig config;
  config.scale = scale;
  auto db = GenerateTpch(config);
  EngineOptions opts;
  opts.strict = true;  // benchmarks keep the fail-fast contract
  opts.epsilon = epsilon;
  opts.seed = kSeed;
  ViewRewriteEngine engine(*db, PrivacyPolicy{policy}, opts);
  auto sql = WorkloadSql(/*w=*/7, scale, kSeed, query_cap);
  return RunWorkload(engine, sql);
}

void FigureA(size_t cap) {
  std::printf(
      "=== Figure 5(a): error vs database size (W7, eps=8, "
      "policy=orders) ===\n");
  std::printf("%-8s %-8s %-8s %-6s %-14s %-14s\n", "size", "scale", "queries",
              "views", "median_relerr", "mean_relerr");
  for (int scale : {1, 2, 4, 8}) {
    if (!FullMode() && scale > 4) break;
    RunResult r = RunAt(scale, "orders", 8.0, cap);
    std::printf("%-8s %-8d %-8zu %-6zu %-14.6f %-14.6f\n", SizeLabel(scale),
                scale, r.queries, r.views, r.median_error, r.mean_error);
  }
}

void FigureB(size_t cap) {
  std::printf(
      "\n=== Figure 5(b): error vs privacy policy (W7, eps=8, size=10M) "
      "===\n");
  std::printf("%-10s %-8s %-6s %-14s %-14s\n", "policy", "queries", "views",
              "median_relerr", "mean_relerr");
  for (const char* policy : {"customer", "orders", "lineitem"}) {
    RunResult r = RunAt(1, policy, 8.0, cap);
    std::printf("%-10s %-8zu %-6zu %-14.6f %-14.6f\n", policy, r.queries,
                r.views, r.median_error, r.mean_error);
  }
}

void FigureC(size_t cap) {
  std::printf(
      "\n=== Figure 5(c): error vs privacy budget (W7, size=10M, "
      "policy=orders) ===\n");
  std::printf("%-8s %-8s %-6s %-14s %-14s\n", "eps", "queries", "views",
              "median_relerr", "mean_relerr");
  for (double eps : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    RunResult r = RunAt(1, "orders", eps, cap);
    std::printf("%-8.1f %-8zu %-6zu %-14.6f %-14.6f\n", eps, r.queries,
                r.views, r.median_error, r.mean_error);
  }
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite::bench;
  const size_t cap = FullMode() ? 0 : 500;
  FigureA(cap);
  FigureB(cap);
  FigureC(cap);
  return 0;
}
