// Google-benchmark microbenchmarks for the per-component costs behind the
// end-to-end numbers: parsing, rewriting, execution, synopsis publication,
// cell answering, and the DP primitives.

#include <benchmark/benchmark.h>

#include "datagen/tpch.h"
#include "dp/matrix_mechanism.h"
#include "dp/truncation.h"
#include "engine/viewrewrite_engine.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "view/view_manager.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

const char* kNestedQuery =
    "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
    "o.o_custkey AND o.o_orderyear = 1995 AND o.o_totalprice > (SELECT "
    "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_custkey = c.c_custkey)";

const Database& SharedDb() {
  static const Database* db = [] {
    TpchConfig config;
    config.customers = 300;
    config.parts = 200;
    return GenerateTpch(config).release();
  }();
  return *db;
}

void BM_ParseNestedQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseSelect(kNestedQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseNestedQuery);

void BM_RewriteNestedQuery(benchmark::State& state) {
  Schema schema = MakeTpchSchema();
  Rewriter rewriter(schema);
  auto stmt = ParseSelect(kNestedQuery);
  for (auto _ : state) {
    auto rq = rewriter.Rewrite(**stmt);
    benchmark::DoNotOptimize(rq);
  }
}
BENCHMARK(BM_RewriteNestedQuery);

void BM_ExecuteJoinQuery(benchmark::State& state) {
  const Database& db = SharedDb();
  Executor executor(db);
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_totalprice > 32768");
  for (auto _ : state) {
    auto r = executor.ExecuteScalar(**stmt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteJoinQuery);

void BM_ExecuteRewrittenNested(benchmark::State& state) {
  const Database& db = SharedDb();
  Executor executor(db);
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  for (auto _ : state) {
    auto r = executor.ExecuteRewritten(*rq);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteRewrittenNested);

void BM_SynopsisPublish(benchmark::State& state) {
  const Database& db = SharedDb();
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  for (auto _ : state) {
    ViewManager manager(db.schema(), PrivacyPolicy{"orders"});
    auto bound = manager.RegisterRewritten(*rq, nullptr);
    Random rng(static_cast<uint64_t>(state.iterations()));
    Status st = manager.Publish(db, 8.0, &rng);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_SynopsisPublish)->Unit(benchmark::kMillisecond);

void BM_CellAnswer(benchmark::State& state) {
  const Database& db = SharedDb();
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  ViewManager manager(db.schema(), PrivacyPolicy{"orders"});
  auto bound = manager.RegisterRewritten(*rq, nullptr);
  Random rng(9);
  (void)manager.Publish(db, 8.0, &rng);
  for (auto _ : state) {
    auto r = manager.Answer(*bound);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CellAnswer);

void BM_LaplaceSample(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Laplace(2.0));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_TruncationSelect(benchmark::State& state) {
  Random data(2);
  std::vector<double> contribs;
  for (int i = 0; i < 10000; ++i) {
    contribs.push_back(static_cast<double>(data.Zipf(64, 1.2)));
  }
  Random rng(3);
  for (auto _ : state) {
    auto tau = SelectTruncationThreshold(contribs, 0.4, 0.4, &rng);
    benchmark::DoNotOptimize(tau);
  }
}
BENCHMARK(BM_TruncationSelect);

void BM_IdentityPublish(benchmark::State& state) {
  std::vector<double> cells(static_cast<size_t>(state.range(0)), 5.0);
  Random rng(4);
  for (auto _ : state) {
    auto noisy = PublishIdentity(cells, 4.0, 1.0, &rng);
    benchmark::DoNotOptimize(noisy);
  }
}
BENCHMARK(BM_IdentityPublish)->Arg(1024)->Arg(16384);

void BM_HierarchicalPublish(benchmark::State& state) {
  std::vector<double> cells(static_cast<size_t>(state.range(0)), 5.0);
  Random rng(5);
  for (auto _ : state) {
    auto h = HierarchicalHistogram::Publish(cells, 4.0, 1.0, &rng);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HierarchicalPublish)->Arg(1024)->Arg(16384);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadGenerator gen(1, 77);
  for (auto _ : state) {
    auto q = gen.Generate(16);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace viewrewrite

BENCHMARK_MAIN();
