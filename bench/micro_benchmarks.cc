// Google-benchmark microbenchmarks for the per-component costs behind the
// end-to-end numbers: parsing, rewriting, execution, synopsis publication,
// cell answering, the answer path (scalar, grouped, derived measures,
// suppression), and the DP primitives.
//
// The custom main() below also emits BENCH_answer.json — the committed
// answer-path baseline checked by ci/check.sh. Regenerate with:
//   ./build/bench/micro_benchmarks --benchmark_filter=NoSuchBench

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "aggregate/grouped_result.h"
#include "aggregate/suppression.h"
#include "datagen/tpch.h"
#include "dp/matrix_mechanism.h"
#include "dp/truncation.h"
#include "engine/viewrewrite_engine.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "view/view_manager.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

const char* kNestedQuery =
    "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
    "o.o_custkey AND o.o_orderyear = 1995 AND o.o_totalprice > (SELECT "
    "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_custkey = c.c_custkey)";

const Database& SharedDb() {
  static const Database* db = [] {
    TpchConfig config;
    config.customers = 300;
    config.parts = 200;
    return GenerateTpch(config).release();
  }();
  return *db;
}

void BM_ParseNestedQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseSelect(kNestedQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseNestedQuery);

void BM_RewriteNestedQuery(benchmark::State& state) {
  Schema schema = MakeTpchSchema();
  Rewriter rewriter(schema);
  auto stmt = ParseSelect(kNestedQuery);
  for (auto _ : state) {
    auto rq = rewriter.Rewrite(**stmt);
    benchmark::DoNotOptimize(rq);
  }
}
BENCHMARK(BM_RewriteNestedQuery);

void BM_ExecuteJoinQuery(benchmark::State& state) {
  const Database& db = SharedDb();
  Executor executor(db);
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_totalprice > 32768");
  for (auto _ : state) {
    auto r = executor.ExecuteScalar(**stmt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteJoinQuery);

void BM_ExecuteRewrittenNested(benchmark::State& state) {
  const Database& db = SharedDb();
  Executor executor(db);
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  for (auto _ : state) {
    auto r = executor.ExecuteRewritten(*rq);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteRewrittenNested);

void BM_SynopsisPublish(benchmark::State& state) {
  const Database& db = SharedDb();
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  for (auto _ : state) {
    ViewManager manager(db.schema(), PrivacyPolicy{"orders"});
    auto bound = manager.RegisterRewritten(*rq, nullptr);
    Random rng(static_cast<uint64_t>(state.iterations()));
    Status st = manager.Publish(db, 8.0, &rng);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_SynopsisPublish)->Unit(benchmark::kMillisecond);

void BM_CellAnswer(benchmark::State& state) {
  const Database& db = SharedDb();
  Rewriter rewriter(db.schema());
  auto stmt = ParseSelect(kNestedQuery);
  auto rq = rewriter.Rewrite(**stmt);
  ViewManager manager(db.schema(), PrivacyPolicy{"orders"});
  auto bound = manager.RegisterRewritten(*rq, nullptr);
  Random rng(9);
  (void)manager.Publish(db, 8.0, &rng);
  for (auto _ : state) {
    auto r = manager.Answer(*bound);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CellAnswer);

void BM_LaplaceSample(benchmark::State& state) {
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Laplace(2.0));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_TruncationSelect(benchmark::State& state) {
  Random data(2);
  std::vector<double> contribs;
  for (int i = 0; i < 10000; ++i) {
    contribs.push_back(static_cast<double>(data.Zipf(64, 1.2)));
  }
  Random rng(3);
  for (auto _ : state) {
    auto tau = SelectTruncationThreshold(contribs, 0.4, 0.4, &rng);
    benchmark::DoNotOptimize(tau);
  }
}
BENCHMARK(BM_TruncationSelect);

void BM_IdentityPublish(benchmark::State& state) {
  std::vector<double> cells(static_cast<size_t>(state.range(0)), 5.0);
  Random rng(4);
  for (auto _ : state) {
    auto noisy = PublishIdentity(cells, 4.0, 1.0, &rng);
    benchmark::DoNotOptimize(noisy);
  }
}
BENCHMARK(BM_IdentityPublish)->Arg(1024)->Arg(16384);

void BM_HierarchicalPublish(benchmark::State& state) {
  std::vector<double> cells(static_cast<size_t>(state.range(0)), 5.0);
  Random rng(5);
  for (auto _ : state) {
    auto h = HierarchicalHistogram::Publish(cells, 4.0, 1.0, &rng);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HierarchicalPublish)->Arg(1024)->Arg(16384);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadGenerator gen(1, 77);
  for (auto _ : state) {
    auto q = gen.Generate(16);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

// ---- Answer path: serving from the published synopsis is pure
// post-processing, so these measure the per-request cost of scalar cell
// answers, grouped materialization, derived-measure evaluation (AVG and
// VARIANCE resolve from (sum, sum^2, count) companions), and the
// minimum-frequency suppression pass.

const char* kAnswerScalar =
    "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 32768";
const char* kAnswerGroupedCount =
    "SELECT o_orderstatus, COUNT(*) FROM orders o GROUP BY o_orderstatus";
const char* kAnswerDerivedAvgHaving =
    "SELECT o_orderstatus, AVG(o_totalprice) FROM orders o GROUP BY "
    "o_orderstatus HAVING COUNT(*) >= 2";
const char* kAnswerDerivedVariance =
    "SELECT o_orderstatus, VARIANCE(o_totalprice) FROM orders o GROUP BY "
    "o_orderstatus";

struct AnswerEnv {
  std::vector<std::string> workload;
  std::unique_ptr<ViewRewriteEngine> engine;
};

AnswerEnv& SharedAnswerEnv() {
  static AnswerEnv* env = [] {
    auto* e = new AnswerEnv;
    e->workload = {kAnswerScalar, kAnswerGroupedCount,
                   kAnswerDerivedAvgHaving, kAnswerDerivedVariance};
    EngineOptions options;
    options.seed = 42;
    e->engine = std::make_unique<ViewRewriteEngine>(
        SharedDb(), PrivacyPolicy{"orders"}, options);
    Status st = e->engine->Prepare(e->workload);
    if (!st.ok()) {
      std::fprintf(stderr, "answer bench Prepare failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    return e;
  }();
  return *env;
}

void BM_ScalarNoisyAnswer(benchmark::State& state) {
  AnswerEnv& env = SharedAnswerEnv();
  for (auto _ : state) {
    auto r = env.engine->NoisyAnswer(0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ScalarNoisyAnswer);

void BM_GroupedCountAnswer(benchmark::State& state) {
  AnswerEnv& env = SharedAnswerEnv();
  for (auto _ : state) {
    auto r = env.engine->GroupedAnswer(1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroupedCountAnswer);

void BM_DerivedAvgHavingAnswer(benchmark::State& state) {
  AnswerEnv& env = SharedAnswerEnv();
  for (auto _ : state) {
    auto r = env.engine->GroupedAnswer(2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DerivedAvgHavingAnswer);

void BM_DerivedVarianceAnswer(benchmark::State& state) {
  AnswerEnv& env = SharedAnswerEnv();
  for (auto _ : state) {
    auto r = env.engine->GroupedAnswer(3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DerivedVarianceAnswer);

void BM_SuppressionPass(benchmark::State& state) {
  AnswerEnv& env = SharedAnswerEnv();
  auto baseline = env.engine->GroupedAnswer(1);
  if (!baseline.ok()) std::abort();
  aggregate::SuppressionPolicy policy{12.0};
  for (auto _ : state) {
    aggregate::GroupedData copy = *baseline;
    size_t n = aggregate::ApplySuppression(policy, &copy);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_SuppressionPass);

// ---- Budget-WAL overhead on the publish path: the same Prepare (parse,
// rewrite, noisy publish) with and without a write-ahead budget ledger
// attached. Every epsilon spend then pays an fsync'd append before its
// noisy value is computed; the acceptance bar for the committed baseline
// is < 5% (checked by ci/check.sh).

void BM_PublishWithBudgetWal(benchmark::State& state) {
  const bool with_wal = state.range(0) != 0;
  const std::vector<std::string> workload = {kAnswerScalar,
                                             kAnswerGroupedCount};
  // Steady state: the ledger is created once per process lifetime; each
  // publish pays only the fsync'd spend appends. A huge lifetime total
  // keeps repeated iterations from exhausting the shared ledger. The
  // ledger gets its own directory, as a deployment's data dir would —
  // opening a WAL sweeps its directory for orphaned temps, and scanning a
  // crowded shared /tmp would bill unrelated files to the WAL.
  std::error_code ec;
  std::filesystem::create_directories("/tmp/vr_bench_wal_dir", ec);
  const std::string wal_path = "/tmp/vr_bench_wal_dir/publish.wal";
  if (with_wal) std::remove(wal_path.c_str());
  for (auto _ : state) {
    EngineOptions options;
    options.seed = 42;
    if (with_wal) {
      options.budget_wal_path = wal_path;
      options.lifetime_epsilon = 1e6;
    }
    ViewRewriteEngine engine(SharedDb(), PrivacyPolicy{"orders"}, options);
    Status st = engine.Prepare(workload);
    benchmark::DoNotOptimize(st);
  }
  if (with_wal) std::remove(wal_path.c_str());
}
BENCHMARK(BM_PublishWithBudgetWal)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- BENCH_answer.json: a small always-on emitter (independent of the
// google-benchmark CLI flags) so ci/check.sh can regenerate the committed
// answer-path baseline with --benchmark_filter=NoSuchBench.

template <typename Fn>
double MeanNs(int iters, Fn&& fn) {
  fn();  // warm caches and lazy state outside the timed region
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(iters);
}

/// Mean wall-clock of the full publish path (Prepare) in milliseconds,
/// with or without the budget WAL attached. Fresh engine and fresh WAL
/// file per run — reusing one ledger would accumulate spent epsilon until
/// Prepare hard-fails with PrivacyError.
/// Database for the WAL-overhead measurement: large enough that one
/// publish does representative work (the ledger append is a fixed
/// ~0.1 ms journal commit, so its percentage is only meaningful against
/// a publish that is not toy-sized).
const Database& WalBenchDb() {
  static const Database* db = [] {
    TpchConfig config;
    config.customers = 1500;
    config.parts = 400;
    return GenerateTpch(config).release();
  }();
  return *db;
}

double OnePublishMs(bool with_wal, const std::string& wal_path) {
  const std::vector<std::string> workload = {
      kAnswerScalar, kAnswerGroupedCount, kAnswerDerivedAvgHaving,
      kAnswerDerivedVariance};
  EngineOptions options;
  options.seed = 42;
  if (with_wal) {
    // Steady state: the ledger already exists (creation is paid once per
    // process lifetime, not per publish), so the publish pays replay +
    // reopen + the fsync'd spend appends. The huge lifetime total keeps
    // repeated iterations from exhausting the shared ledger.
    options.budget_wal_path = wal_path;
    options.lifetime_epsilon = 1e6;
  }
  ViewRewriteEngine engine(WalBenchDb(), PrivacyPolicy{"orders"}, options);
  auto start = std::chrono::steady_clock::now();
  Status st = engine.Prepare(workload);
  auto end = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "WAL-overhead Prepare failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return std::chrono::duration<double, std::milli>(end - start).count();
}

int WriteAnswerBaseline() {
  AnswerEnv& env = SharedAnswerEnv();
  struct Entry {
    const char* name;
    const char* kind;
    size_t rows;
    double mean_ns;
  };
  std::vector<Entry> entries;

  entries.push_back({"scalar_count", "scalar", 0,
                     MeanNs(1000, [&] {
                       auto r = env.engine->NoisyAnswer(0);
                       benchmark::DoNotOptimize(r);
                     })});
  const struct {
    size_t index;
    const char* name;
    const char* kind;
  } grouped[] = {
      {1, "grouped_count", "grouped"},
      {2, "derived_avg_having", "derived"},
      {3, "derived_variance", "derived"},
  };
  for (const auto& g : grouped) {
    auto rows = env.engine->GroupedAnswer(g.index);
    if (!rows.ok()) {
      std::fprintf(stderr, "answer baseline %s failed: %s\n", g.name,
                   rows.status().ToString().c_str());
      return 1;
    }
    entries.push_back({g.name, g.kind, rows->rows.size(),
                       MeanNs(300, [&] {
                         auto r = env.engine->GroupedAnswer(g.index);
                         benchmark::DoNotOptimize(r);
                       })});
  }
  auto baseline = env.engine->GroupedAnswer(1);
  if (!baseline.ok()) return 1;
  aggregate::SuppressionPolicy policy{12.0};
  entries.push_back({"suppression_pass", "suppression", baseline->rows.size(),
                     MeanNs(1000, [&] {
                       aggregate::GroupedData copy = *baseline;
                       size_t n = aggregate::ApplySuppression(policy, &copy);
                       benchmark::DoNotOptimize(n);
                     })});

  // Interleave off/on publish batches so drift hits both sides equally.
  // Private directory for the ledger: see BM_PublishWithBudgetWal.
  std::error_code ec;
  std::filesystem::create_directories("/tmp/vr_bench_wal_dir", ec);
  const std::string wal_path = "/tmp/vr_bench_wal_dir/answer_publish.wal";
  std::remove(wal_path.c_str());
  // Min-of-N over strictly alternating single publishes: scheduler
  // jitter on a ~12 ms publish is an order of magnitude larger than the
  // ledger delta being measured, and it is strictly additive — the
  // minimum is the undisturbed publish, and alternating at publish
  // granularity keeps slow drift from billing to one side.
  (void)OnePublishMs(/*with_wal=*/false, wal_path);  // warm caches
  (void)OnePublishMs(/*with_wal=*/true, wal_path);   // create the ledger
  double wal_off_ms = 0;
  double wal_on_ms = 0;
  for (int i = 0; i < 40; ++i) {
    const double off = OnePublishMs(/*with_wal=*/false, wal_path);
    const double on = OnePublishMs(/*with_wal=*/true, wal_path);
    if (wal_off_ms == 0 || off < wal_off_ms) wal_off_ms = off;
    if (wal_on_ms == 0 || on < wal_on_ms) wal_on_ms = on;
  }
  std::remove(wal_path.c_str());
  const double wal_overhead_pct =
      wal_off_ms > 0 ? (wal_on_ms - wal_off_ms) / wal_off_ms * 100.0 : 0.0;

  FILE* json = std::fopen("BENCH_answer.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_answer.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"workload\": %zu,\n  \"views\": %zu,\n"
               "  \"wal_overhead\": {\"publish_wal_off_ms\": %.3f, "
               "\"publish_wal_on_ms\": %.3f, \"wal_overhead_pct\": %.2f},\n"
               "  \"answers\": [\n",
               env.workload.size(), env.engine->views().views().size(),
               wal_off_ms, wal_on_ms, wal_overhead_pct);
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", \"rows\": %zu, "
                 "\"mean_ns\": %.1f}%s\n",
                 e.name, e.kind, e.rows, e.mean_ns,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_answer.json\n");
  return 0;
}

}  // namespace
}  // namespace viewrewrite

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return viewrewrite::WriteAnswerBaseline();
}
