// Reproduces Table 2: the impact of query rewriting per nested-query
// class. For correlated (W16-W20), non-correlated (W21-W25), and derived
// table (W26-W30) workloads, compares ViewRewrite vs PrivateSQL on median
// relative error, number of views, synopsis time, response time, and
// total time, across the paper's four sweeps (database size, privacy
// policy, privacy budget, workload size).
//
// Paper defaults: size 10M (scale 1), policy orders, eps 8, workload 400
// queries (W17 / W22 / W27).

#include <cstdio>

#include "bench/bench_util.h"

namespace viewrewrite {
namespace bench {
namespace {

constexpr uint64_t kSeed = 22017;

struct ClassSpec {
  const char* name;
  int base_w;  // W16 / W21 / W26 (200-query rung)
};

const ClassSpec kClasses[] = {
    {"correlated", 16}, {"non-correlated", 21}, {"derived", 26}};

struct Pair {
  RunResult vr;
  RunResult ps;
};

Pair RunBoth(const Database& db, const std::vector<std::string>& sql,
             const std::string& policy, double epsilon) {
  EngineOptions opts;
  opts.strict = true;  // benchmarks keep the fail-fast contract
  opts.epsilon = epsilon;
  opts.seed = kSeed;
  Pair out;
  {
    ViewRewriteEngine engine(db, PrivacyPolicy{policy}, opts);
    out.vr = RunWorkload(engine, sql);
  }
  {
    PrivateSqlEngine engine(db, PrivacyPolicy{policy}, opts);
    out.ps = RunWorkload(engine, sql);
  }
  return out;
}

void ErrorRow(const char* setting, const char* value, const Pair pairs[3]) {
  std::printf("%-10s %-10s |", setting, value);
  for (int c = 0; c < 3; ++c) {
    std::printf(" %11.6f %11.6f |", pairs[c].vr.median_error,
                pairs[c].ps.median_error);
  }
  std::printf("\n");
}

void Banner() {
  std::printf("%-10s %-10s |", "", "");
  for (const ClassSpec& cls : kClasses) {
    std::printf(" %23s |", cls.name);
  }
  std::printf("\n%-10s %-10s |", "metric", "setting");
  for (int c = 0; c < 3; ++c) {
    (void)c;
    std::printf(" %11s %11s |", "ViewRewrite", "PrivateSQL");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  std::printf(
      "=== Table 2: impact of query rewriting on nested and derived table "
      "queries ===\n(defaults: size=10M, policy=orders, eps=8, 400-query "
      "workloads W17/W22/W27)\n\n");
  Banner();

  // ---- Median relative error vs database size. ----------------------------
  for (int scale : {1, 2}) {
    if (!FullMode() && scale > 1) break;
    TpchConfig config;
    config.scale = scale;
    auto db = GenerateTpch(config);
    Pair pairs[3];
    for (int c = 0; c < 3; ++c) {
      auto sql = WorkloadSql(kClasses[c].base_w + 1, scale, kSeed, 0);
      pairs[c] = RunBoth(*db, sql, "orders", 8.0);
    }
    ErrorRow("size", SizeLabel(scale), pairs);
  }

  TpchConfig config;
  auto db = GenerateTpch(config);

  // ---- Median relative error vs privacy policy. ----------------------------
  for (const char* policy : {"customer", "orders", "lineitem"}) {
    Pair pairs[3];
    for (int c = 0; c < 3; ++c) {
      auto sql = WorkloadSql(kClasses[c].base_w + 1, 1, kSeed, 0);
      pairs[c] = RunBoth(*db, sql, policy, 8.0);
    }
    ErrorRow("policy", policy, pairs);
  }

  // ---- Median relative error vs privacy budget. -----------------------------
  for (double eps : {1.0, 4.0, 8.0, 16.0}) {
    Pair pairs[3];
    for (int c = 0; c < 3; ++c) {
      auto sql = WorkloadSql(kClasses[c].base_w + 1, 1, kSeed, 0);
      pairs[c] = RunBoth(*db, sql, "orders", eps);
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%g", eps);
    ErrorRow("eps", label, pairs);
  }

  // ---- Per-workload-size block: error, views, timings. ----------------------
  std::printf(
      "\n-- workload-size sweep (rows: error / views / synopsis s / "
      "response s / total s) --\n");
  const int max_rung = FullMode() ? 4 : 2;  // up to W20/W25/W30
  for (int rung = 1; rung <= max_rung; ++rung) {
    Pair pairs[3];
    int n_queries = 0;
    for (int c = 0; c < 3; ++c) {
      int w = kClasses[c].base_w + rung;
      n_queries = WorkloadGenerator::QueryCount(w);
      auto sql = WorkloadSql(w, 1, kSeed, 0);
      pairs[c] = RunBoth(*db, sql, "orders", 8.0);
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%d", n_queries);
    ErrorRow("wsize", label, pairs);
    std::printf("%-10s %-10s |", "views", label);
    for (int c = 0; c < 3; ++c) {
      std::printf(" %11zu %11zu |", pairs[c].vr.views, pairs[c].ps.views);
    }
    std::printf("\n%-10s %-10s |", "syn_s", label);
    for (int c = 0; c < 3; ++c) {
      std::printf(" %11.3f %11.3f |", pairs[c].vr.synopsis_seconds,
                  pairs[c].ps.synopsis_seconds);
    }
    std::printf("\n%-10s %-10s |", "resp_s", label);
    for (int c = 0; c < 3; ++c) {
      std::printf(" %11.3f %11.3f |", pairs[c].vr.response_seconds,
                  pairs[c].ps.response_seconds);
    }
    std::printf("\n%-10s %-10s |", "total_s", label);
    for (int c = 0; c < 3; ++c) {
      std::printf(" %11.3f %11.3f |", pairs[c].vr.total_seconds,
                  pairs[c].ps.total_seconds);
    }
    std::printf("\n");
  }
  return 0;
}
