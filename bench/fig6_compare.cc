// Reproduces Fig. 6(a)-(c): ViewRewrite vs PrivateSQL median relative
// error under varying database size, privacy policy, and privacy budget.
// Paper defaults: workload W12 (1500 count-type queries from the
// PrivateSQL-supported classes), eps = 8, policy = orders, size 10M.

#include <cstdio>

#include "bench/bench_util.h"

namespace viewrewrite {
namespace bench {
namespace {

constexpr uint64_t kSeed = 61234;

struct Pair {
  RunResult vr;
  RunResult ps;
};

Pair RunBoth(int scale, const std::string& policy, double epsilon,
             size_t cap) {
  TpchConfig config;
  config.scale = scale;
  auto db = GenerateTpch(config);
  auto sql = WorkloadSql(/*w=*/12, scale, kSeed, cap);
  EngineOptions opts;
  opts.strict = true;  // benchmarks keep the fail-fast contract
  opts.epsilon = epsilon;
  opts.seed = kSeed;
  Pair out;
  {
    ViewRewriteEngine engine(*db, PrivacyPolicy{policy}, opts);
    out.vr = RunWorkload(engine, sql);
  }
  {
    PrivateSqlEngine engine(*db, PrivacyPolicy{policy}, opts);
    out.ps = RunWorkload(engine, sql);
  }
  return out;
}

void Row(const char* label, const Pair& p) {
  std::printf("%-10s %-8zu | %-6zu %-14.6f | %-6zu %-14.6f | %-7.2fx\n",
              label, p.vr.queries, p.vr.views, p.vr.median_error, p.ps.views,
              p.ps.median_error,
              p.vr.median_error > 0 ? p.ps.median_error / p.vr.median_error
                                    : 0.0);
}

void Header() {
  std::printf("%-10s %-8s | %-6s %-14s | %-6s %-14s | %-8s\n", "setting",
              "queries", "views", "VR_median_err", "views", "PSQL_median_err",
              "ratio");
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite::bench;
  const size_t cap = FullMode() ? 0 : 400;

  std::printf(
      "=== Figure 6(a): ViewRewrite vs PrivateSQL, error vs database size "
      "(W12, eps=8, policy=orders) ===\n");
  Header();
  for (int scale : {1, 2, 4, 8}) {
    if (!FullMode() && scale > 4) break;
    Row(SizeLabel(scale), RunBoth(scale, "orders", 8.0, cap));
  }

  std::printf(
      "\n=== Figure 6(b): error vs privacy policy (W12, eps=8, size=10M) "
      "===\n");
  Header();
  for (const char* policy : {"customer", "orders", "lineitem"}) {
    Row(policy, RunBoth(1, policy, 8.0, cap));
  }

  std::printf(
      "\n=== Figure 6(c): error vs privacy budget (W12, size=10M, "
      "policy=orders) ===\n");
  Header();
  for (double eps : {1.0, 4.0, 8.0, 16.0}) {
    char label[16];
    std::snprintf(label, sizeof(label), "eps=%g", eps);
    Row(label, RunBoth(1, "orders", eps, cap));
  }
  return 0;
}
