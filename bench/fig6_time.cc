// Reproduces Fig. 6(f): synopsis-generation time and query-response time
// for ViewRewrite vs PrivateSQL as the workload grows. The paper's shape:
// ViewRewrite's synopsis time is far lower (few views) while its response
// time is slightly higher (bigger views); totals favour ViewRewrite and
// the gap widens with workload size.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  constexpr uint64_t kSeed = 61236;
  TpchConfig config;
  auto db = GenerateTpch(config);

  std::printf(
      "=== Figure 6(f): synopsis + response time vs workload size (W11-W15 "
      "ladder, eps=8, size=10M, policy=orders) ===\n");
  std::printf("%-8s | %-10s %-10s %-10s | %-10s %-10s %-10s\n", "queries",
              "VR_syn_s", "VR_resp_s", "VR_total", "PS_syn_s", "PS_resp_s",
              "PS_total");

  std::vector<size_t> sizes = {200, 400, 800, 1600};
  if (FullMode()) sizes.push_back(3200);
  for (size_t n : sizes) {
    // Use W12's generator with a cap to emulate the workload-size ladder.
    auto sql = WorkloadSql(/*w=*/15, config.scale, kSeed, n);
    EngineOptions opts;
    opts.strict = true;  // benchmarks keep the fail-fast contract
    opts.epsilon = 8.0;
    opts.seed = kSeed;
    RunResult vr, ps;
    {
      ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
      vr = RunWorkload(engine, sql);
    }
    {
      PrivateSqlEngine engine(*db, PrivacyPolicy{"orders"}, opts);
      ps = RunWorkload(engine, sql);
    }
    std::printf("%-8zu | %-10.3f %-10.3f %-10.3f | %-10.3f %-10.3f %-10.3f\n",
                n, vr.synopsis_seconds, vr.response_seconds, vr.total_seconds,
                ps.synopsis_seconds, ps.response_seconds, ps.total_seconds);
  }
  return 0;
}
