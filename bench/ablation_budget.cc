// Design-choice ablations beyond the paper's evaluation:
//
//  (1) Budget allocation across views — the paper's uniform split vs the
//      usage-weighted split it sketches as future work (views answering
//      more queries get more budget).
//  (2) Matrix-mechanism strategy for one-dimensional views — identity vs
//      hierarchical (range queries decompose over O(log n) tree nodes).

#include <cstdio>

#include "bench/bench_util.h"

namespace viewrewrite {
namespace bench {
namespace {

constexpr uint64_t kSeed = 90210;

RunResult RunWith(const Database& db, const std::vector<std::string>& sql,
                  BudgetAllocation allocation, MatrixStrategy strategy) {
  EngineOptions opts;
  opts.strict = true;  // benchmarks keep the fail-fast contract
  opts.epsilon = 8.0;
  opts.seed = kSeed;
  opts.budget_allocation = allocation;
  opts.synopsis.strategy = strategy;
  ViewRewriteEngine engine(db, PrivacyPolicy{"orders"}, opts);
  return RunWorkload(engine, sql);
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite;
  using namespace viewrewrite::bench;

  TpchConfig config;
  auto db = GenerateTpch(config);

  std::printf(
      "=== Ablation (1): budget allocation across views (eps=8, "
      "policy=orders) ===\n");
  std::printf("%-6s %-8s | %-14s %-14s\n", "W", "queries", "uniform_med",
              "by_usage_med");
  for (int w : {1, 12, 17, 27}) {
    auto sql = WorkloadSql(w, 1, kSeed, FullMode() ? 0 : 500);
    RunResult uniform = RunWith(*db, sql, BudgetAllocation::kUniform,
                                MatrixStrategy::kIdentity);
    RunResult usage = RunWith(*db, sql, BudgetAllocation::kByUsage,
                              MatrixStrategy::kIdentity);
    std::printf("W%-5d %-8zu | %-14.6f %-14.6f\n", w, sql.size(),
                uniform.median_error, usage.median_error);
  }
  std::printf(
      "Usage weighting helps when view popularity is skewed; with the "
      "paper's\nbalanced workloads the two are close, as expected.\n");

  std::printf(
      "\n=== Ablation (2): identity vs hierarchical strategy on 1-D range "
      "workloads ===\n");
  // Range-heavy single-relation count queries over one ordered attribute.
  // With this repo's deliberately coarse 16-bucket domains the identity
  // strategy should win (the hierarchical advantage needs range lengths
  // beyond ~log^3 of the domain size — see dp/matrix_test, which
  // demonstrates the crossover at 8192 cells); this ablation documents
  // why identity is the default.
  std::vector<std::string> sql;
  Random rng(kSeed);
  for (int i = 0; i < 300; ++i) {
    int64_t lo = rng.UniformInt(0, 10) * 4096;
    int64_t hi = lo + (1 + rng.UniformInt(0, 4)) * 4096;
    sql.push_back("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= " +
                  std::to_string(lo) + " AND o.o_totalprice < " +
                  std::to_string(hi));
  }
  std::printf("%-12s %-14s %-14s\n", "strategy", "median_relerr",
              "mean_relerr");
  for (MatrixStrategy strategy :
       {MatrixStrategy::kIdentity, MatrixStrategy::kHierarchical}) {
    double med_sum = 0;
    double mean_sum = 0;
    const int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      EngineOptions opts;
      opts.strict = true;  // benchmarks keep the fail-fast contract
      opts.epsilon = 2.0;
      opts.seed = kSeed + static_cast<uint64_t>(t);
      opts.synopsis.strategy = strategy;
      ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
      RunResult r = RunWorkload(engine, sql);
      med_sum += r.median_error;
      mean_sum += r.mean_error;
    }
    std::printf("%-12s %-14.6f %-14.6f\n",
                strategy == MatrixStrategy::kIdentity ? "identity"
                                                      : "hierarchical",
                med_sum / kTrials, mean_sum / kTrials);
  }
  return 0;
}
