// Kill-nine soak: many seeded SIGKILL schedules against the write-ahead
// budget ledger (tests/chaos/kill9_harness.h). Each seed forks a child
// driving publish -> save -> republish -> checkpoint, kills it at a
// seed-drawn fault point (WAL append/fsync/checkpoint, bundle save, or
// delta rebuild), then recovers in the parent and asserts:
// the WAL replays to a valid prefix or a typed corruption (never a
// garbage epsilon), replayed spent covers every bundle generation on
// disk, the bundle is loadable or absent, recovery republishes without
// double-spending the lifetime budget, and no orphan temps survive.
//
//   $ ./build/bench/kill9_soak [num_seeds] [base_seed]
//
// Defaults: 32 seeds starting at base seed 1. Exits non-zero on the
// first invariant violation, printing every violation for that seed.
// Registered under ctest label "chaos" (excluded from tier-1); CI runs
// it with a hard wall-clock bound, including reduced-seed passes under
// ASan+UBSan and TSan.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/kill9_harness.h"

int main(int argc, char** argv) {
  using namespace viewrewrite;

  const uint64_t num_seeds =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 32;
  const uint64_t base_seed =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;

  std::printf("kill-nine soak: %llu seeds from %llu\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(base_seed));
  std::printf("%-6s %-22s %-4s %-7s %-6s %-5s %-18s %-7s %-8s %-5s %s\n",
              "seed", "point", "nth", "compact", "killed", "torn",
              "spent/total", "bundle", "recover", "gens", "verdict");

  uint64_t failed_seeds = 0;
  uint64_t killed = 0;
  uint64_t clean = 0;
  uint64_t torn = 0;
  uint64_t bundles = 0;
  uint64_t recovered_generations = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = base_seed + i;
    chaos::KillNineRunResult run = chaos::RunKillNineSeed(seed);
    char spent[24];
    std::snprintf(spent, sizeof(spent), "%.3f/%.3f", run.replayed_spent,
                  run.replayed_total);
    std::printf(
        "%-6llu %-22s %-4llu %-7llu %-6s %-5s %-18s %-7s %-8s %-5llu %s\n",
        static_cast<unsigned long long>(seed), run.fault_point.c_str(),
        static_cast<unsigned long long>(run.fault_nth),
        static_cast<unsigned long long>(run.compact_threshold),
        run.child_killed ? "kill" : "clean", run.torn_tail ? "yes" : "no",
        run.wal_found ? spent : "-", run.bundle_found ? "yes" : "no",
        run.recovery_prepare_ok ? "ok" : "degrade",
        static_cast<unsigned long long>(run.recovered_generations),
        run.ok() ? "pass" : "FAIL");
    if (run.child_killed) ++killed;
    if (run.child_clean_exit) ++clean;
    if (run.torn_tail) ++torn;
    if (run.bundle_found) ++bundles;
    recovered_generations += run.recovered_generations;
    if (!run.ok()) {
      ++failed_seeds;
      for (const std::string& violation : run.violations) {
        std::fprintf(stderr, "  seed %llu violation: %s\n",
                     static_cast<unsigned long long>(seed),
                     violation.c_str());
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "soak kills: killed=%llu clean=%llu torn_tails=%llu bundles=%llu "
      "recovered_generations=%llu\n",
      static_cast<unsigned long long>(killed),
      static_cast<unsigned long long>(clean),
      static_cast<unsigned long long>(torn),
      static_cast<unsigned long long>(bundles),
      static_cast<unsigned long long>(recovered_generations));
  std::printf("soak finished in %.1fs: %llu/%llu seeds passed\n", elapsed,
              static_cast<unsigned long long>(num_seeds - failed_seeds),
              static_cast<unsigned long long>(num_seeds));
  return failed_seeds == 0 ? 0 : 1;
}
