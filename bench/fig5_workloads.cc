// Reproduces Fig. 5(d) and 5(e): error stability across workload sizes for
// count-type (W1-W5) and sum-type (W6-W10) workloads, plus the flat view
// counts the paper reports (15 for count, 14 for sum).

#include <cstdio>

#include "bench/bench_util.h"

namespace viewrewrite {
namespace bench {
namespace {

constexpr uint64_t kSeed = 51423;

void Sweep(const char* title, int first_w) {
  std::printf("%s\n", title);
  std::printf("%-6s %-8s %-6s %-14s %-14s\n", "W", "queries", "views",
              "median_relerr", "mean_relerr");
  TpchConfig config;
  auto db = GenerateTpch(config);
  const int last_w = FullMode() ? first_w + 4 : first_w + 2;
  const size_t cap = FullMode() ? 0 : 1500;
  for (int w = first_w; w <= last_w; ++w) {
    EngineOptions opts;
    opts.strict = true;  // benchmarks keep the fail-fast contract
    opts.epsilon = 8.0;
    opts.seed = kSeed;
    ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, opts);
    auto sql = WorkloadSql(w, config.scale, kSeed, cap);
    RunResult r = RunWorkload(engine, sql);
    std::printf("W%-5d %-8zu %-6zu %-14.6f %-14.6f\n", w, r.queries, r.views,
                r.median_error, r.mean_error);
  }
}

}  // namespace
}  // namespace bench
}  // namespace viewrewrite

int main() {
  using namespace viewrewrite::bench;
  Sweep(
      "=== Figure 5(d): count-type workloads W1-W5 (eps=8, size=10M, "
      "policy=orders) ===",
      1);
  Sweep(
      "\n=== Figure 5(e): sum-type workloads W6-W10 (eps=8, size=10M, "
      "policy=orders) ===",
      6);
  return 0;
}
