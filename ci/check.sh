#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass over the robustness test suite.
#
#   ci/check.sh            # tier-1 build + tests, then ASan/UBSan + TSan passes
#   SKIP_SANITIZE=1 ci/check.sh   # tier-1 only (e.g. toolchains without ASan)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "== sanitizer pass skipped (SKIP_SANITIZE=1) =="
  exit 0
fi

echo "== asan+ubsan: configure + build robustness suite =="
cmake -B build-asan -S . -DVIEWREWRITE_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$(nproc)" --target \
  fault_injection_test quarantine_test publish_recovery_test \
  budget_test mechanism_test

echo "== asan+ubsan: ctest (robustness suite) =="
(cd build-asan && ctest --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|Quarantine|PublishRecovery|Budget|LaplaceMechanism')

echo "== tsan: configure + build concurrent-serve smoke =="
cmake -B build-tsan -S . -DVIEWREWRITE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  query_server_test answer_cache_test

echo "== tsan: ctest (concurrent serving layer) =="
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
  -R 'QueryServer|AnswerCache')

echo "== all checks passed =="
