#!/usr/bin/env bash
# Tier-1 gate plus sanitizer and chaos passes over the resilience suite.
#
#   ci/check.sh                   # tier-1 build + tests, sanitizers, chaos smoke
#   SKIP_SANITIZE=1 ci/check.sh   # tier-1 + chaos smoke only
#   SKIP_CHAOS=1 ci/check.sh      # skip the chaos soak binaries
set -euo pipefail
cd "$(dirname "$0")/.."

# Hard wall-clock bound for each chaos soak invocation; a hang is a
# deadlock, which is exactly what the harness exists to catch.
CHAOS_TIMEOUT="${CHAOS_TIMEOUT:-600}"
CHAOS_SEEDS="${CHAOS_SEEDS:-32}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== chaos soak: ${CHAOS_SEEDS} fixed seeds (default build) =="
  timeout "${CHAOS_TIMEOUT}" ./build/bench/chaos_soak "${CHAOS_SEEDS}" 1
fi

if [[ "${SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "== sanitizer pass skipped (SKIP_SANITIZE=1) =="
  exit 0
fi

echo "== asan+ubsan: configure + build robustness suite =="
cmake -B build-asan -S . -DVIEWREWRITE_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$(nproc)" --target \
  fault_injection_test quarantine_test publish_recovery_test \
  budget_test mechanism_test retry_test circuit_breaker_test \
  durability_test chaos_soak

echo "== asan+ubsan: ctest (robustness suite) =="
(cd build-asan && ctest --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|Quarantine|PublishRecovery|Budget|LaplaceMechanism|Retry|Backoff|CircuitBreaker|Durability')

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== asan+ubsan: chaos soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/bench/chaos_soak 8 1
fi

echo "== tsan: configure + build concurrent-serve suite =="
cmake -B build-tsan -S . -DVIEWREWRITE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  query_server_test answer_cache_test shutdown_race_test reload_test \
  resilience_test deadline_test chaos_soak

echo "== tsan: ctest (concurrent serving layer) =="
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
  -R 'QueryServer|AnswerCache|ShutdownRace|Reload|Resilience|Deadline')

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== tsan: chaos soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-tsan/bench/chaos_soak 8 1
fi

echo "== all checks passed =="
