#!/usr/bin/env bash
# Tier-1 gate plus sanitizer and chaos passes over the resilience suite.
#
#   ci/check.sh                   # tier-1 build + tests, sanitizers, chaos smoke
#   SKIP_SANITIZE=1 ci/check.sh   # tier-1 + chaos smoke only
#   SKIP_CHAOS=1 ci/check.sh      # skip the chaos soak binaries
#   SKIP_FUZZ=1 ci/check.sh       # skip the time-boxed fuzz smoke
#   SKIP_BENCH=1 ci/check.sh      # skip the serve/answer bench regeneration checks
set -euo pipefail
cd "$(dirname "$0")/.."

# Hard wall-clock bound for each chaos soak invocation; a hang is a
# deadlock, which is exactly what the harness exists to catch.
CHAOS_TIMEOUT="${CHAOS_TIMEOUT:-600}"
CHAOS_SEEDS="${CHAOS_SEEDS:-32}"
# Per-fuzzer time box for the mutation smoke (seconds).
FUZZ_SECONDS="${FUZZ_SECONDS:-30}"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== chaos soak: ${CHAOS_SEEDS} fixed seeds (default build) =="
  timeout "${CHAOS_TIMEOUT}" ./build/bench/chaos_soak "${CHAOS_SEEDS}" 1

  echo "== kill-nine soak: ${CHAOS_SEEDS} fixed seeds (default build) =="
  # Fork + SIGKILL + recover against the write-ahead budget ledger; a hang
  # here is a recovery deadlock, hence the same hard wall-clock bound.
  timeout "${CHAOS_TIMEOUT}" ./build/bench/kill9_soak "${CHAOS_SEEDS}" 1

  echo "== overload soak: ${CHAOS_SEEDS} fixed seeds (default build) =="
  # Open-loop 2x-10x overload against the serve path: no congestion
  # collapse, typed fast sheds, bounded drain, no priority inversion.
  timeout "${CHAOS_TIMEOUT}" ./build/bench/overload_soak "${CHAOS_SEEDS}" 1
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  echo "== serve bench: regenerate and check against committed BENCH_serve.json =="
  # Regenerates BENCH_serve.json in build/bench and checks (a) the schema
  # matches the committed file and (b) the coalescing claim holds on this
  # machine: the committed duplicate-heavy speedup must be >= 2x and the
  # fresh run must still show a gain (> 1x; absolute qps is hardware-bound
  # but "coalescing wins on duplicate-heavy traffic" must reproduce).
  (cd build/bench && ./serve_throughput > /dev/null)
  for key in '"duplicate_heavy"' '"coalesce_speedup"' '"batch_speedup"' \
             '"cache_speedup"' '"max_flight_group"' '"modes"' '"runs"' \
             '"overload"' '"capacity_qps"' '"goodput_4x_ratio"' \
             '"goodput_10x_ratio"' '"shed_p99_ms"' '"phases"'; do
    grep -q "${key}" BENCH_serve.json ||
      { echo "committed BENCH_serve.json missing ${key}"; exit 1; }
    grep -q "${key}" build/bench/BENCH_serve.json ||
      { echo "regenerated BENCH_serve.json missing ${key}"; exit 1; }
  done
  committed_speedup="$(grep -o '"coalesce_speedup": [0-9.]*' BENCH_serve.json | grep -o '[0-9.]*$')"
  fresh_speedup="$(grep -o '"coalesce_speedup": [0-9.]*' build/bench/BENCH_serve.json | grep -o '[0-9.]*$')"
  awk -v c="${committed_speedup}" 'BEGIN { exit !(c >= 2.0) }' ||
    { echo "committed coalesce_speedup ${committed_speedup} < 2.0"; exit 1; }
  awk -v f="${fresh_speedup}" 'BEGIN { exit !(f > 1.0) }' ||
    { echo "regenerated coalesce_speedup ${fresh_speedup} <= 1.0"; exit 1; }
  echo "coalesce_speedup: committed ${committed_speedup}, regenerated ${fresh_speedup}"

  # No-congestion-collapse gate on the committed baseline: goodput at 4x
  # and 10x offered load must hold >= 0.7x of the peak phase, and typed
  # sheds must resolve in under a millisecond (the regenerated file is
  # hardware-bound and only schema-checked above).
  committed_4x="$(grep -o '"goodput_4x_ratio": [0-9.]*' BENCH_serve.json | grep -o '[0-9.]*$')"
  committed_10x="$(grep -o '"goodput_10x_ratio": [0-9.]*' BENCH_serve.json | grep -o '[0-9.]*$')"
  committed_shed_p99="$(grep -o '"shed_p99_ms": [0-9.]*' BENCH_serve.json | head -1 | grep -o '[0-9.]*$')"
  awk -v r="${committed_4x}" 'BEGIN { exit !(r >= 0.7) }' ||
    { echo "committed goodput_4x_ratio ${committed_4x} < 0.7 (congestion collapse)"; exit 1; }
  awk -v r="${committed_10x}" 'BEGIN { exit !(r >= 0.7) }' ||
    { echo "committed goodput_10x_ratio ${committed_10x} < 0.7 (congestion collapse)"; exit 1; }
  awk -v p="${committed_shed_p99}" 'BEGIN { exit !(p < 1.0) }' ||
    { echo "committed overload shed_p99_ms ${committed_shed_p99} >= 1.0"; exit 1; }
  echo "overload gates: 4x ${committed_4x}, 10x ${committed_10x}, shed_p99 ${committed_shed_p99}ms"

  echo "== answer bench: regenerate and check against committed BENCH_answer.json =="
  # The micro_benchmarks main always emits BENCH_answer.json after the
  # google-benchmark run; an impossible filter skips the BM loop so only
  # the answer-path baseline is regenerated. Schema check only — answer
  # timings are hardware-bound, but the grouped/derived/suppression
  # entries must exist in both the committed and the regenerated file.
  (cd build/bench && ./micro_benchmarks --benchmark_filter=NoSuchBench \
    > /dev/null)
  for key in '"answers"' '"mean_ns"' '"grouped_count"' \
             '"derived_avg_having"' '"derived_variance"' \
             '"suppression_pass"' '"scalar_count"' \
             '"wal_overhead"' '"publish_wal_off_ms"' '"publish_wal_on_ms"' \
             '"wal_overhead_pct"'; do
    grep -q "${key}" BENCH_answer.json ||
      { echo "committed BENCH_answer.json missing ${key}"; exit 1; }
    grep -q "${key}" build/bench/BENCH_answer.json ||
      { echo "regenerated BENCH_answer.json missing ${key}"; exit 1; }
  done
  # The committed baseline must keep the write-ahead budget ledger's
  # publish-path overhead under the 5% acceptance bar (the regenerated
  # number is hardware/jitter-bound and only schema-checked above).
  committed_wal_pct="$(grep -o '"wal_overhead_pct": -\?[0-9.]*' BENCH_answer.json | grep -o '\-\?[0-9.]*$')"
  awk -v p="${committed_wal_pct}" 'BEGIN { exit !(p < 5.0) }' ||
    { echo "committed wal_overhead_pct ${committed_wal_pct} >= 5.0"; exit 1; }
  echo "BENCH_answer.json schema ok (wal_overhead_pct ${committed_wal_pct})"
fi

if [[ "${SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "== sanitizer pass skipped (SKIP_SANITIZE=1) =="
  exit 0
fi

echo "== asan+ubsan: configure + build robustness suite =="
cmake -B build-asan -S . -DVIEWREWRITE_SANITIZE=ON -DVIEWREWRITE_FUZZ=ON \
  >/dev/null
cmake --build build-asan -j "$(nproc)" --target \
  fault_injection_test quarantine_test publish_recovery_test \
  budget_test budget_wal_test mechanism_test retry_test \
  circuit_breaker_test \
  durability_test republisher_test chaos_test chaos_soak \
  kill9_test kill9_soak overload_test overload_soak \
  coalescing_test batch_submit_test stats_shard_test \
  overload_limiter_test priority_queue_test \
  limits_test adversarial_test synopsis_overflow_test hostile_bundle_test \
  admission_test corpus_replay_test \
  aggregate_planner_test suppression_test grouped_serve_test \
  fuzz_sql_parser fuzz_rewriter fuzz_vrsy_loader fuzz_budget_wal \
  make_seed_corpus

echo "== asan+ubsan: ctest (robustness suite) =="
(cd build-asan && ctest --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|Quarantine|PublishRecovery|Budget|BudgetWal|KillNine|LaplaceMechanism|Retry|Backoff|CircuitBreaker|Durability|Republisher|Limits|Tracker|CheckedMul|Adversarial|SynopsisOverflow|HostileBundle|Admission|CorpusReplay|Coalescing|BatchSubmit|StatsShard|PlanAggregate|EvaluateDerived|EvalExpr|Suppression|GroupedServe|AdaptiveLimiter|Overload|Priority')

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== asan+ubsan: republish chaos smoke (single seed, lifecycle races) =="
  # One full seed through the republish/reload/query race under ASan+UBSan:
  # the --seed CLI replays exactly what a failing soak seed would.
  timeout "${CHAOS_TIMEOUT}" ./build-asan/tests/chaos_test --seed=5
  echo "== asan+ubsan: kill-nine smoke (single seed, crash recovery) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/tests/kill9_test --seed=3
  echo "== asan+ubsan: overload smoke (single seed, open-loop shedding) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/tests/overload_test --seed=2
fi

if [[ "${SKIP_FUZZ:-0}" != "1" ]]; then
  echo "== asan+ubsan: fuzz smoke (${FUZZ_SECONDS}s per boundary) =="
  ./build-asan/fuzz/make_seed_corpus build-asan/fuzz-corpus
  # The two fuzzer flavors speak different CLIs (fuzz/CMakeLists.txt
  # records which one was built): libFuzzer wants -max_total_time= and a
  # corpus dir; the standalone driver wants --mutate DIR SECONDS SEED.
  FUZZ_FLAVOR="$(cat build-asan/fuzz/fuzzer_flavor 2>/dev/null || echo standalone)"
  if [[ "${FUZZ_FLAVOR}" == "libfuzzer" ]]; then
    ./build-asan/fuzz/fuzz_sql_parser  -max_total_time="${FUZZ_SECONDS}" -seed=1 build-asan/fuzz-corpus/sql
    ./build-asan/fuzz/fuzz_rewriter    -max_total_time="${FUZZ_SECONDS}" -seed=2 build-asan/fuzz-corpus/sql
    ./build-asan/fuzz/fuzz_vrsy_loader -max_total_time="${FUZZ_SECONDS}" -seed=3 build-asan/fuzz-corpus/vrsy
    ./build-asan/fuzz/fuzz_budget_wal  -max_total_time="${FUZZ_SECONDS}" -seed=4 build-asan/fuzz-corpus/wal
  else
    ./build-asan/fuzz/fuzz_sql_parser  --mutate build-asan/fuzz-corpus/sql  "${FUZZ_SECONDS}" 1
    ./build-asan/fuzz/fuzz_rewriter    --mutate build-asan/fuzz-corpus/sql  "${FUZZ_SECONDS}" 2
    ./build-asan/fuzz/fuzz_vrsy_loader --mutate build-asan/fuzz-corpus/vrsy "${FUZZ_SECONDS}" 3
    ./build-asan/fuzz/fuzz_budget_wal  --mutate build-asan/fuzz-corpus/wal  "${FUZZ_SECONDS}" 4
  fi
  # The checked-in regressions replay through the instrumented fuzzers too
  # (the corpus_replay_test above covers them via gtest; this exercises the
  # driver's file-replay mode on the same inputs).
  find fuzz/regressions/sql fuzz/regressions/rewrite -type f \
    -exec ./build-asan/fuzz/fuzz_sql_parser {} +
  find fuzz/regressions/vrsy -type f \
    -exec ./build-asan/fuzz/fuzz_vrsy_loader {} +
  find fuzz/regressions/wal -type f \
    -exec ./build-asan/fuzz/fuzz_budget_wal {} +
fi

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== asan+ubsan: chaos soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/bench/chaos_soak 8 1
  echo "== asan+ubsan: kill-nine soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/bench/kill9_soak 8 1
  echo "== asan+ubsan: overload soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-asan/bench/overload_soak 8 1
fi

echo "== tsan: configure + build concurrent-serve suite =="
cmake -B build-tsan -S . -DVIEWREWRITE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  query_server_test answer_cache_test shutdown_race_test reload_test \
  resilience_test deadline_test budget_test budget_wal_test \
  durability_test \
  republisher_test chaos_test chaos_soak kill9_test kill9_soak \
  overload_test overload_soak \
  coalescing_test batch_submit_test stats_shard_test \
  overload_limiter_test priority_queue_test \
  adversarial_test admission_test corpus_replay_test \
  grouped_serve_test

echo "== tsan: ctest (concurrent serving layer) =="
(cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
  -R 'QueryServer|AnswerCache|ShutdownRace|Reload|Resilience|Deadline|Budget|BudgetWal|KillNine|Durability|Republisher|Coalescing|BatchSubmit|StatsShard|Adversarial|Admission|CorpusReplay|GroupedServe|AdaptiveLimiter|Overload|Priority')

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  echo "== tsan: chaos soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-tsan/bench/chaos_soak 8 1
  echo "== tsan: kill-nine soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-tsan/bench/kill9_soak 8 1
  echo "== tsan: overload soak (reduced seeds) =="
  timeout "${CHAOS_TIMEOUT}" ./build-tsan/bench/overload_soak 8 1
  echo "== tsan: republish chaos smoke (single seed, lifecycle races) =="
  timeout "${CHAOS_TIMEOUT}" ./build-tsan/tests/chaos_test --seed=5
fi

echo "== all checks passed =="
