#include "rewrite/classifier.h"

#include "rewrite/analysis.h"
#include "rewrite/rewriter.h"

namespace viewrewrite {

namespace {

struct Features {
  bool cmp_corr = false, in_corr = false, set_corr = false, ex_corr = false;
  bool cmp_non = false, in_non = false, set_non = false, ex_non = false;
  bool from_derived = false;
};

bool SubqueryIsCorrelated(const SelectStmt& sub, const Schema& schema,
                          const ColumnResolver& outer) {
  auto local_cols = VisibleColumns(sub, schema);
  if (!local_cols.ok()) return false;
  ColumnResolver local(std::move(local_cols).value());
  for (const Expr* c : CollectConjuncts(sub.where.get())) {
    if (HasOuterRefs(*c, local)) return true;
  }
  (void)outer;
  return false;
}

void ScanExpr(const Expr* e, const Schema& schema,
              const ColumnResolver& outer, Features* f) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kScalarSubquery: {
      const auto& sq = static_cast<const ScalarSubqueryExpr&>(*e);
      if (SubqueryIsCorrelated(*sq.subquery, schema, outer)) {
        f->cmp_corr = true;
      } else {
        f->cmp_non = true;
      }
      return;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(*e);
      ScanExpr(in.lhs.get(), schema, outer, f);
      if (in.subquery) {
        if (SubqueryIsCorrelated(*in.subquery, schema, outer)) {
          f->in_corr = true;
        } else {
          f->in_non = true;
        }
      }
      return;
    }
    case ExprKind::kExists: {
      const auto& ex = static_cast<const ExistsExpr&>(*e);
      if (SubqueryIsCorrelated(*ex.subquery, schema, outer)) {
        f->ex_corr = true;
      } else {
        f->ex_non = true;
      }
      return;
    }
    case ExprKind::kQuantifiedCmp: {
      const auto& q = static_cast<const QuantifiedCmpExpr&>(*e);
      ScanExpr(q.lhs.get(), schema, outer, f);
      if (SubqueryIsCorrelated(*q.subquery, schema, outer)) {
        f->set_corr = true;
      } else {
        f->set_non = true;
      }
      return;
    }
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      ScanExpr(b->left.get(), schema, outer, f);
      ScanExpr(b->right.get(), schema, outer, f);
      return;
    }
    case ExprKind::kUnary:
      ScanExpr(static_cast<const UnaryExpr*>(e)->operand.get(), schema, outer,
               f);
      return;
    case ExprKind::kFuncCall: {
      const auto* fc = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : fc->args) ScanExpr(a.get(), schema, outer, f);
      return;
    }
    default:
      return;
  }
}

bool HasDerivedLeaf(const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      return false;
    case TableRefKind::kDerived:
      return true;
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      return HasDerivedLeaf(*j.left) || HasDerivedLeaf(*j.right);
    }
  }
  return false;
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kSimple: return "simple";
    case QueryClass::kFromDerivedTable: return "from-derived";
    case QueryClass::kWithDerivedTable: return "with-derived";
    case QueryClass::kComparisonCorrelated: return "comparison-correlated";
    case QueryClass::kInCorrelated: return "in-correlated";
    case QueryClass::kSetCorrelated: return "set-correlated";
    case QueryClass::kExistsCorrelated: return "exists-correlated";
    case QueryClass::kComparisonNonCorrelated:
      return "comparison-non-correlated";
    case QueryClass::kInNonCorrelated: return "in-non-correlated";
    case QueryClass::kSetNonCorrelated: return "set-non-correlated";
    case QueryClass::kExistsNonCorrelated: return "exists-non-correlated";
  }
  return "unknown";
}

bool IsNestedClass(QueryClass c) {
  switch (c) {
    case QueryClass::kComparisonCorrelated:
    case QueryClass::kInCorrelated:
    case QueryClass::kSetCorrelated:
    case QueryClass::kExistsCorrelated:
    case QueryClass::kComparisonNonCorrelated:
    case QueryClass::kInNonCorrelated:
    case QueryClass::kSetNonCorrelated:
    case QueryClass::kExistsNonCorrelated:
      return true;
    default:
      return false;
  }
}

bool IsCorrelatedClass(QueryClass c) {
  switch (c) {
    case QueryClass::kComparisonCorrelated:
    case QueryClass::kInCorrelated:
    case QueryClass::kSetCorrelated:
    case QueryClass::kExistsCorrelated:
      return true;
    default:
      return false;
  }
}

Result<QueryClass> Classify(const SelectStmt& stmt, const Schema& schema) {
  // WITH names are not in the catalog; resolve them first (Rule 8) and
  // classify the inlined form. A query that is plain after inlining is
  // the WITH-derived-table class.
  if (!stmt.with.empty()) {
    SelectStmtPtr inlined = stmt.Clone();
    InlineWithClausesStandalone(inlined.get());
    VR_ASSIGN_OR_RETURN(QueryClass inner, Classify(*inlined, schema));
    if (inner == QueryClass::kSimple ||
        inner == QueryClass::kFromDerivedTable) {
      return QueryClass::kWithDerivedTable;
    }
    return inner;
  }
  VR_ASSIGN_OR_RETURN(auto cols, VisibleColumns(stmt, schema));
  ColumnResolver outer(std::move(cols));
  Features f;
  ScanExpr(stmt.where.get(), schema, outer, &f);
  ScanExpr(stmt.having.get(), schema, outer, &f);

  // Nested predicate classes first (the pipeline handles them first).
  if (f.ex_corr) return QueryClass::kExistsCorrelated;
  if (f.set_corr) return QueryClass::kSetCorrelated;
  if (f.in_corr) return QueryClass::kInCorrelated;
  if (f.cmp_corr) return QueryClass::kComparisonCorrelated;
  if (f.ex_non) return QueryClass::kExistsNonCorrelated;
  if (f.set_non) return QueryClass::kSetNonCorrelated;
  if (f.in_non) return QueryClass::kInNonCorrelated;
  if (f.cmp_non) return QueryClass::kComparisonNonCorrelated;

  if (!stmt.with.empty()) return QueryClass::kWithDerivedTable;
  for (const auto& t : stmt.from) {
    if (HasDerivedLeaf(*t)) return QueryClass::kFromDerivedTable;
  }
  return QueryClass::kSimple;
}

}  // namespace viewrewrite
