#ifndef VIEWREWRITE_REWRITE_ANALYSIS_H_
#define VIEWREWRITE_REWRITE_ANALYSIS_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// The (binding, column) pairs visible from a statement's FROM clause.
/// Derived tables expose their select-item output names under their alias.
Result<std::vector<std::pair<std::string, std::string>>> VisibleColumns(
    const SelectStmt& stmt, const Schema& schema);

/// The (binding, column) pairs exposed by a single table reference.
Result<std::vector<std::pair<std::string, std::string>>> TableRefColumns(
    const TableRef& ref, const Schema& schema);

/// Lightweight resolver over a visible-column list.
class ColumnResolver {
 public:
  explicit ColumnResolver(
      std::vector<std::pair<std::string, std::string>> cols)
      : cols_(std::move(cols)) {}

  /// True if `ref` resolves against these columns (qualified: binding and
  /// column match; unqualified: any column of that name).
  bool Resolves(const ColumnRefExpr& ref) const;

  const std::vector<std::pair<std::string, std::string>>& columns() const {
    return cols_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> cols_;
};

/// Collects every ColumnRefExpr in `e`, without descending into nested
/// subqueries (their columns belong to inner scopes).
void CollectColumnRefsShallow(const Expr* e,
                              std::vector<const ColumnRefExpr*>* out);

/// True if `e` (shallow) references any column not resolvable by
/// `resolver` — i.e. the expression is correlated with an outer query.
bool HasOuterRefs(const Expr& e, const ColumnResolver& resolver);

/// True if any subquery anywhere under `e` is correlated w.r.t. the scope
/// whose visible columns are extended by each subquery's own FROM.
/// Used by the classifier.
bool ContainsSubquery(const Expr* e);

/// One correlated equi-conjunct `local = outer` extracted from a
/// subquery's WHERE clause.
struct CorrelationPair {
  std::string local_table;   // binding inside the subquery
  std::string local_column;
  std::string outer_table;   // binding in the enclosing query ("" if unqualified)
  std::string outer_column;
};

/// Splits `sub`'s WHERE into correlated equality pairs and the remaining
/// local-only conjunction. Mutates `sub->where` to keep only local
/// conjuncts. Fails if a correlated conjunct is not a simple equality
/// between one local and one outer column (the form the paper's rules
/// (9)–(14) cover).
Result<std::vector<CorrelationPair>> ExtractCorrelation(
    SelectStmt* sub, const Schema& schema, const ColumnResolver& outer);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_REWRITE_ANALYSIS_H_
