#ifndef VIEWREWRITE_REWRITE_DNF_H_
#define VIEWREWRITE_REWRITE_DNF_H_

#include <vector>

#include "common/limits.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// Rewrites `e` so that NOT applies only to atomic predicates: De Morgan
/// over AND/OR, comparison negation (Rule 6 groundwork), and
/// isnull/isnotnull flipping. Double negations cancel.
ExprPtr PushNotInward(const Expr& e, bool negate = false);

/// A disjunct of a DNF: the conjunction of its atoms.
using Disjunct = std::vector<ExprPtr>;

/// Converts a (NOT-normalized) predicate into disjunctive normal form via
/// the distributive law (Rule 6). Fails if the expansion exceeds
/// `max_disjuncts` (inclusion–exclusion would need 2^k - 1 terms); when
/// that specific limit caused the failure, `*cap_tripped` (if non-null)
/// is set so callers can tell a size refusal apart from other rewrite
/// errors without inspecting the message.
Result<std::vector<Disjunct>> ToDnf(const Expr& e, size_t max_disjuncts,
                                    bool* cap_tripped = nullptr);

/// Rule 7: expands `base` (an aggregate query whose WHERE is the
/// disjunction of `disjuncts`) into a signed combination of AND-only
/// queries by inclusion–exclusion:
///   |D1 ∪ ... ∪ Dk| = Σ_S (-1)^{|S|+1} |∩ S|.
/// Duplicate atoms within an intersection are deduplicated.
///
/// The expansion has 2^k - 1 terms, each a full clone of `base`;
/// `max_terms` (governance: ResourceLimits::max_ie_terms) is checked
/// BEFORE any clone is made, returning kResourceExhausted so a
/// high-disjunct query degrades to a typed refusal, never 2^k memory.
Result<QueryCombination> InclusionExclusion(
    const SelectStmt& base, const std::vector<Disjunct>& disjuncts,
    size_t max_terms = ResourceLimits::Defaults().max_ie_terms);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_REWRITE_DNF_H_
