#include "rewrite/rewriter.h"

#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/fault_injection.h"
#include "rewrite/analysis.h"
#include "rewrite/dnf.h"
#include "sql/printer.h"

namespace viewrewrite {

namespace {

constexpr double kPlusInfinity = 1e18;
constexpr double kMinusInfinity = -1e18;

// ---------------------------------------------------------------------------
// Small AST utilities
// ---------------------------------------------------------------------------

bool HasOr(const Expr* e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      if (b->op == BinaryOp::kOr) return true;
      return HasOr(b->left.get()) || HasOr(b->right.get());
    }
    case ExprKind::kUnary:
      return HasOr(static_cast<const UnaryExpr*>(e)->operand.get());
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) {
        if (HasOr(a.get())) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool ExprContainsAggregate(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kFuncCall) {
    const auto* f = static_cast<const FuncCallExpr*>(e);
    if (f->IsAggregate()) return true;
    for (const auto& a : f->args) {
      if (ExprContainsAggregate(a.get())) return true;
    }
    return false;
  }
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    return ExprContainsAggregate(b->left.get()) ||
           ExprContainsAggregate(b->right.get());
  }
  if (e->kind == ExprKind::kUnary) {
    return ExprContainsAggregate(
        static_cast<const UnaryExpr*>(e)->operand.get());
  }
  return false;
}

bool IsBareCount(const Expr& e) {
  return e.kind == ExprKind::kFuncCall &&
         static_cast<const FuncCallExpr&>(e).name == "count";
}

/// Collects aggregate calls in `e` without entering subqueries.
void CollectAggCalls(const Expr* e, std::vector<const FuncCallExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall) {
    const auto* f = static_cast<const FuncCallExpr*>(e);
    if (f->IsAggregate()) {
      out->push_back(f);
      return;
    }
    for (const auto& a : f->args) CollectAggCalls(a.get(), out);
    return;
  }
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    CollectAggCalls(b->left.get(), out);
    CollectAggCalls(b->right.get(), out);
    return;
  }
  if (e->kind == ExprKind::kUnary) {
    CollectAggCalls(static_cast<const UnaryExpr*>(e)->operand.get(), out);
  }
}

/// Clones `e`, substituting any node whose canonical SQL matches a key of
/// `subst` with a fresh column reference.
ExprPtr CloneWithSubstitution(
    const Expr& e,
    const std::map<std::string, std::pair<std::string, std::string>>& subst) {
  auto it = subst.find(ToSql(e));
  if (it != subst.end()) {
    return MakeColumnRef(it->second.first, it->second.second);
  }
  switch (e.kind) {
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return MakeBinary(b.op, CloneWithSubstitution(*b.left, subst),
                        CloneWithSubstitution(*b.right, subst));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(
          u.op, CloneWithSubstitution(*u.operand, subst));
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(e);
      std::vector<ExprPtr> args;
      args.reserve(f.args.size());
      for (const auto& a : f.args) {
        args.push_back(CloneWithSubstitution(*a, subst));
      }
      return std::make_unique<FuncCallExpr>(f.name, std::move(args),
                                            f.distinct);
    }
    default:
      return e.Clone();
  }
}

/// In-place remap of column references `old_alias.old_col` ->
/// `new_alias.new_col` across an expression tree (shallow; post-unnesting
/// trees contain no subqueries).
struct AliasRemap {
  std::string new_alias;
  std::map<std::string, std::string> column_map;  // old name -> new name
};

void RemapRefs(Expr* e, const std::map<std::string, AliasRemap>& remaps) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kColumnRef: {
      auto* c = static_cast<ColumnRefExpr*>(e);
      auto it = remaps.find(c->table);
      if (it != remaps.end()) {
        auto col_it = it->second.column_map.find(c->column);
        if (col_it != it->second.column_map.end()) {
          c->table = it->second.new_alias;
          c->column = col_it->second;
        }
      }
      return;
    }
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      RemapRefs(b->left.get(), remaps);
      RemapRefs(b->right.get(), remaps);
      return;
    }
    case ExprKind::kUnary:
      RemapRefs(static_cast<UnaryExpr*>(e)->operand.get(), remaps);
      return;
    case ExprKind::kFuncCall: {
      auto* f = static_cast<FuncCallExpr*>(e);
      for (auto& a : f->args) RemapRefs(a.get(), remaps);
      return;
    }
    case ExprKind::kIn: {
      auto* in = static_cast<InExpr*>(e);
      RemapRefs(in->lhs.get(), remaps);
      for (auto& v : in->value_list) RemapRefs(v.get(), remaps);
      return;
    }
    case ExprKind::kQuantifiedCmp:
      RemapRefs(static_cast<QuantifiedCmpExpr*>(e)->lhs.get(), remaps);
      return;
    default:
      return;
  }
}

void RemapRefsInStmt(SelectStmt* stmt,
                     const std::map<std::string, AliasRemap>& remaps);

void RemapRefsInTableRef(TableRef* ref,
                         const std::map<std::string, AliasRemap>& remaps) {
  if (ref->kind == TableRefKind::kJoin) {
    auto* j = static_cast<JoinTableRef*>(ref);
    RemapRefsInTableRef(j->left.get(), remaps);
    RemapRefsInTableRef(j->right.get(), remaps);
    RemapRefs(j->condition.get(), remaps);
  }
  // Derived-table bodies reference their own scope; no remap inside.
}

void RemapRefsInStmt(SelectStmt* stmt,
                     const std::map<std::string, AliasRemap>& remaps) {
  for (auto& item : stmt->items) RemapRefs(item.expr.get(), remaps);
  for (auto& f : stmt->from) RemapRefsInTableRef(f.get(), remaps);
  RemapRefs(stmt->where.get(), remaps);
  for (auto& g : stmt->group_by) RemapRefs(g.get(), remaps);
  RemapRefs(stmt->having.get(), remaps);
}

// ---------------------------------------------------------------------------
// Rule 8: WITH inlining
// ---------------------------------------------------------------------------

using WithDefs = std::map<std::string, const SelectStmt*>;

void InlineWithInStmt(SelectStmt* stmt, const WithDefs& defs);

void InlineWithInTableRef(TableRefPtr* ref, const WithDefs& defs) {
  switch ((*ref)->kind) {
    case TableRefKind::kBase: {
      auto* base = static_cast<BaseTableRef*>(ref->get());
      auto it = defs.find(base->name);
      if (it != defs.end()) {
        std::string alias = base->BindingName();
        SelectStmtPtr body = it->second->Clone();
        InlineWithInStmt(body.get(), defs);  // WITH bodies may use earlier CTEs
        *ref = std::make_unique<DerivedTableRef>(std::move(body),
                                                 std::move(alias));
      }
      return;
    }
    case TableRefKind::kDerived: {
      auto* d = static_cast<DerivedTableRef*>(ref->get());
      InlineWithInStmt(d->subquery.get(), defs);
      return;
    }
    case TableRefKind::kJoin: {
      auto* j = static_cast<JoinTableRef*>(ref->get());
      InlineWithInTableRef(&j->left, defs);
      InlineWithInTableRef(&j->right, defs);
      return;
    }
  }
}

void InlineWithInExpr(Expr* e, const WithDefs& defs) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kScalarSubquery:
      InlineWithInStmt(static_cast<ScalarSubqueryExpr*>(e)->subquery.get(),
                       defs);
      return;
    case ExprKind::kExists:
      InlineWithInStmt(static_cast<ExistsExpr*>(e)->subquery.get(), defs);
      return;
    case ExprKind::kIn: {
      auto* in = static_cast<InExpr*>(e);
      InlineWithInExpr(in->lhs.get(), defs);
      if (in->subquery) InlineWithInStmt(in->subquery.get(), defs);
      for (auto& v : in->value_list) InlineWithInExpr(v.get(), defs);
      return;
    }
    case ExprKind::kQuantifiedCmp: {
      auto* q = static_cast<QuantifiedCmpExpr*>(e);
      InlineWithInExpr(q->lhs.get(), defs);
      InlineWithInStmt(q->subquery.get(), defs);
      return;
    }
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(e);
      InlineWithInExpr(b->left.get(), defs);
      InlineWithInExpr(b->right.get(), defs);
      return;
    }
    case ExprKind::kUnary:
      InlineWithInExpr(static_cast<UnaryExpr*>(e)->operand.get(), defs);
      return;
    case ExprKind::kFuncCall: {
      auto* f = static_cast<FuncCallExpr*>(e);
      for (auto& a : f->args) InlineWithInExpr(a.get(), defs);
      return;
    }
    default:
      return;
  }
}

void InlineWithInStmt(SelectStmt* stmt, const WithDefs& outer_defs) {
  WithDefs defs = outer_defs;
  // Later WITH items may reference earlier ones; collect incrementally.
  std::vector<WithItem> own = std::move(stmt->with);
  stmt->with.clear();
  for (WithItem& w : own) {
    InlineWithInStmt(w.query.get(), defs);
  }
  // Register after resolving bodies; keep storage alive until substitution
  // below clones the bodies.
  for (const WithItem& w : own) defs[w.name] = w.query.get();
  for (auto& f : stmt->from) InlineWithInTableRef(&f, defs);
  for (auto& item : stmt->items) InlineWithInExpr(item.expr.get(), defs);
  InlineWithInExpr(stmt->where.get(), defs);
  InlineWithInExpr(stmt->having.get(), defs);
}

// ---------------------------------------------------------------------------
// Rules 9-20: unnesting machinery
// ---------------------------------------------------------------------------

/// Folds a FROM list into a single table reference (cross joins carry a
/// null condition; the canonicalizer later rebuilds a proper tree).
TableRefPtr FoldFromList(std::vector<TableRefPtr> items) {
  TableRefPtr acc = std::move(items[0]);
  for (size_t i = 1; i < items.size(); ++i) {
    acc = std::make_unique<JoinTableRef>(JoinType::kInner, std::move(acc),
                                         std::move(items[i]), nullptr);
  }
  return acc;
}

void AttachLeftJoin(SelectStmt* stmt, TableRefPtr derived, ExprPtr cond) {
  TableRefPtr left = FoldFromList(std::move(stmt->from));
  stmt->from.clear();
  stmt->from.push_back(std::make_unique<JoinTableRef>(
      JoinType::kLeft, std::move(left), std::move(derived), std::move(cond)));
}

bool SubqueryIsCorrelatedTo(const SelectStmt& sub, const Schema& schema) {
  auto local_cols = VisibleColumns(sub, schema);
  if (!local_cols.ok()) return false;
  ColumnResolver local(std::move(local_cols).value());
  for (const Expr* c : CollectConjuncts(sub.where.get())) {
    if (HasOuterRefs(*c, local)) return true;
  }
  return false;
}

/// Builds the key part (select items, group-by, join condition) shared by
/// all correlated rewrites. Returns the join condition over `alias`.
struct KeySpec {
  std::vector<SelectItem> items;
  std::vector<ExprPtr> group_by;
  ExprPtr join_cond;
};

KeySpec BuildKeySpec(const std::vector<CorrelationPair>& pairs,
                     const std::string& alias) {
  KeySpec spec;
  std::set<std::pair<std::string, std::string>> seen;
  std::set<std::string> used_names;
  for (const CorrelationPair& p : pairs) {
    if (!seen.insert({p.local_table, p.local_column}).second) continue;
    std::string out_name = p.local_column;
    int n = 0;
    while (used_names.count(out_name) > 0) {
      out_name = p.local_column + "_" + std::to_string(++n);
    }
    used_names.insert(out_name);
    SelectItem item;
    item.expr = MakeColumnRef(p.local_table, p.local_column);
    item.alias = out_name;
    spec.items.push_back(std::move(item));
    spec.group_by.push_back(MakeColumnRef(p.local_table, p.local_column));
    spec.join_cond = MakeAnd(
        std::move(spec.join_cond),
        MakeBinary(BinaryOp::kEq, MakeColumnRef(alias, out_name),
                   MakeColumnRef(p.outer_table, p.outer_column)));
  }
  return spec;
}


/// Removes conjuncts of `sub`'s WHERE that constrain only correlation-key
/// columns and rewrites them onto the outer columns. Such filters are
/// constant within each correlation group, so they commute with the
/// grouping — this is what moves subquery filter constants out of the view
/// definition (the paper's central transformation).
ExprPtr PromoteKeyFilters(SelectStmt* sub,
                          const std::vector<CorrelationPair>& pairs,
                          bool enabled) {
  if (!enabled || sub->where == nullptr) return nullptr;
  auto match_pair = [&](const ColumnRefExpr& r) -> const CorrelationPair* {
    for (const CorrelationPair& p : pairs) {
      if (p.local_column == r.column &&
          (r.table.empty() || r.table == p.local_table)) {
        return &p;
      }
    }
    return nullptr;
  };
  std::vector<const Expr*> keep;
  ExprPtr promoted;
  for (const Expr* c : CollectConjuncts(sub->where.get())) {
    std::vector<const ColumnRefExpr*> refs;
    CollectColumnRefsShallow(c, &refs);
    bool all_keys = !refs.empty() && !ContainsSubquery(c);
    std::map<std::string, std::pair<std::string, std::string>> subst;
    if (all_keys) {
      for (const ColumnRefExpr* r : refs) {
        const CorrelationPair* p = match_pair(*r);
        if (p == nullptr) {
          all_keys = false;
          break;
        }
        subst[ToSql(*r)] = {p->outer_table, p->outer_column};
      }
    }
    if (all_keys) {
      promoted = MakeAnd(std::move(promoted), CloneWithSubstitution(*c, subst));
    } else {
      keep.push_back(c);
    }
  }
  if (promoted) sub->where = ConjunctionOf(keep);
  return promoted;
}

/// The unnesting pass. Owns the per-query alias counter and the shared
/// chain-link list.
class Unnester {
 public:
  Unnester(const Schema& schema, std::vector<ChainLink>* chain,
           bool promote_key_filters)
      : schema_(schema), chain_(chain),
        promote_key_filters_(promote_key_filters) {}

  Status Run(SelectStmt* stmt) {
    if (ContainsSubquery(stmt->having.get())) {
      return Status::RewriteError("subqueries in HAVING are not supported");
    }
    // Repeatedly eliminate the first subquery predicate until none remain.
    while (true) {
      VR_ASSIGN_OR_RETURN(auto cols, VisibleColumns(*stmt, schema_));
      ColumnResolver outer(std::move(cols));
      VR_ASSIGN_OR_RETURN(bool changed,
                          TransformFirst(&stmt->where, stmt, outer));
      if (!changed) break;
    }
    // Recurse into derived tables (their own WHERE may nest subqueries).
    for (auto& f : stmt->from) {
      VR_RETURN_NOT_OK(RunOnTableRef(f.get()));
    }
    return Status::OK();
  }

 private:
  Status RunOnTableRef(TableRef* ref) {
    switch (ref->kind) {
      case TableRefKind::kBase:
        return Status::OK();
      case TableRefKind::kDerived:
        return Run(static_cast<DerivedTableRef*>(ref)->subquery.get());
      case TableRefKind::kJoin: {
        auto* j = static_cast<JoinTableRef*>(ref);
        VR_RETURN_NOT_OK(RunOnTableRef(j->left.get()));
        return RunOnTableRef(j->right.get());
      }
    }
    return Status::OK();
  }

  std::string NextAlias() { return "vrsq" + std::to_string(counter_++); }
  std::string NextVar() { return "v" + std::to_string(chain_->size()); }

  /// Finds and transforms the first subquery-bearing node under `slot`.
  /// Returns true if a transformation happened.
  Result<bool> TransformFirst(ExprPtr* slot, SelectStmt* stmt,
                              const ColumnResolver& outer) {
    Expr* e = slot->get();
    if (e == nullptr) return false;
    switch (e->kind) {
      case ExprKind::kQuantifiedCmp: {
        VR_ASSIGN_OR_RETURN(ExprPtr repl, ConvertQuantified(slot));
        *slot = std::move(repl);
        return true;
      }
      case ExprKind::kExists: {
        VR_ASSIGN_OR_RETURN(ExprPtr repl, HandleExists(slot, stmt, outer));
        *slot = std::move(repl);
        return true;
      }
      case ExprKind::kIn: {
        auto* in = static_cast<InExpr*>(e);
        if (in->subquery != nullptr) {
          VR_ASSIGN_OR_RETURN(ExprPtr repl, HandleIn(slot, stmt, outer));
          *slot = std::move(repl);
          return true;
        }
        VR_ASSIGN_OR_RETURN(bool c, TransformFirst(&in->lhs, stmt, outer));
        if (c) return true;
        for (auto& v : in->value_list) {
          VR_ASSIGN_OR_RETURN(bool cv, TransformFirst(&v, stmt, outer));
          if (cv) return true;
        }
        return false;
      }
      case ExprKind::kScalarSubquery: {
        VR_ASSIGN_OR_RETURN(ExprPtr repl, HandleScalar(slot, stmt, outer));
        *slot = std::move(repl);
        return true;
      }
      case ExprKind::kBinary: {
        auto* b = static_cast<BinaryExpr*>(e);
        VR_ASSIGN_OR_RETURN(bool cl, TransformFirst(&b->left, stmt, outer));
        if (cl) return true;
        return TransformFirst(&b->right, stmt, outer);
      }
      case ExprKind::kUnary:
        return TransformFirst(&static_cast<UnaryExpr*>(e)->operand, stmt,
                              outer);
      case ExprKind::kFuncCall: {
        auto* f = static_cast<FuncCallExpr*>(e);
        for (auto& a : f->args) {
          VR_ASSIGN_OR_RETURN(bool c, TransformFirst(&a, stmt, outer));
          if (c) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  /// Rules 12 / 18 + Table 1: ANY/SOME/ALL -> IN or MIN/MAX comparison.
  Result<ExprPtr> ConvertQuantified(ExprPtr* slot) {
    auto* q = static_cast<QuantifiedCmpExpr*>(slot->get());
    if (q->quantifier == Quantifier::kAny) {
      if (q->op == BinaryOp::kEq) {
        return ExprPtr(std::make_unique<InExpr>(
            std::move(q->lhs), std::move(q->subquery), /*neg=*/false));
      }
      if (q->op == BinaryOp::kNe) {
        return Status::RewriteError("<> ANY has no conversion (Table 1)");
      }
    } else {
      if (q->op == BinaryOp::kNe) {
        return ExprPtr(std::make_unique<InExpr>(
            std::move(q->lhs), std::move(q->subquery), /*neg=*/true));
      }
      if (q->op == BinaryOp::kEq) {
        return Status::RewriteError("= ALL has no conversion (Table 1)");
      }
    }
    // Comparison conversions: ANY{<,<=}->MAX, ANY{>,>=}->MIN,
    // ALL{<,<=}->MIN, ALL{>,>=}->MAX (Table 1).
    bool less_side = (q->op == BinaryOp::kLt || q->op == BinaryOp::kLe);
    bool use_max = (q->quantifier == Quantifier::kAny) ? less_side : !less_side;
    SelectStmtPtr sub = std::move(q->subquery);
    if (sub->items.size() != 1 || sub->items[0].is_star) {
      return Status::RewriteError(
          "quantified subquery must project exactly one column");
    }
    std::vector<ExprPtr> agg_args;
    agg_args.push_back(std::move(sub->items[0].expr));
    sub->items.clear();
    SelectItem agg_item;
    agg_item.expr = MakeFuncCall(use_max ? "max" : "min", std::move(agg_args));
    sub->items.push_back(std::move(agg_item));
    sub->distinct = false;

    ExprPtr rhs = std::make_unique<ScalarSubqueryExpr>(std::move(sub));
    if (q->quantifier == Quantifier::kAll) {
      // Empty-set semantics: x op ALL(∅) is TRUE. COALESCE the missing
      // aggregate to a sentinel that makes the comparison true.
      double sentinel = less_side ? kPlusInfinity : kMinusInfinity;
      std::vector<ExprPtr> co_args;
      co_args.push_back(std::move(rhs));
      co_args.push_back(MakeLiteral(Value::Double(sentinel)));
      rhs = MakeFuncCall("coalesce", std::move(co_args));
    }
    return MakeBinary(q->op, std::move(q->lhs), std::move(rhs));
  }

  /// Rules 13, 14, 19, 20: EXISTS / NOT EXISTS.
  Result<ExprPtr> HandleExists(ExprPtr* slot, SelectStmt* stmt,
                               const ColumnResolver& outer) {
    auto* node = static_cast<ExistsExpr*>(slot->get());
    SelectStmtPtr sub = std::move(node->subquery);
    const bool negated = node->negated;

    auto count_item = [] {
      std::vector<ExprPtr> args;
      args.push_back(std::make_unique<StarExpr>());
      SelectItem item;
      item.expr = MakeFuncCall("count", std::move(args));
      item.alias = "cnt";
      return item;
    };

    if (SubqueryIsCorrelatedTo(*sub, schema_)) {
      // Rules 13/14 + 10: grouped count, LEFT JOIN, COALESCE filter.
      VR_ASSIGN_OR_RETURN(auto pairs,
                          ExtractCorrelation(sub.get(), schema_, outer));
      ExprPtr phi = PromoteKeyFilters(sub.get(), pairs, promote_key_filters_);
      std::string alias = NextAlias();
      KeySpec spec = BuildKeySpec(pairs, alias);
      auto derived = std::make_unique<SelectStmt>();
      derived->items = std::move(spec.items);
      derived->items.push_back(count_item());
      derived->from = std::move(sub->from);
      derived->where = std::move(sub->where);
      derived->group_by = std::move(spec.group_by);
      VR_RETURN_NOT_OK(Run(derived.get()));  // nested subqueries inside
      AttachLeftJoin(stmt,
                     std::make_unique<DerivedTableRef>(std::move(derived),
                                                       alias),
                     std::move(spec.join_cond));
      std::vector<ExprPtr> co_args;
      co_args.push_back(MakeColumnRef(alias, "cnt"));
      co_args.push_back(MakeIntLiteral(0));
      ExprPtr cnt = MakeFuncCall("coalesce", std::move(co_args));
      // EXISTS(sub AND phi(key)) == phi(outer) AND count >= 1; the negated
      // form wraps the conjunction so OR-splitting (Rules 6/7) can expand
      // it later.
      ExprPtr pos = MakeBinary(BinaryOp::kGe, std::move(cnt),
                               MakeIntLiteral(1));
      if (phi != nullptr) {
        ExprPtr combined = MakeAnd(std::move(phi), std::move(pos));
        if (negated) return MakeNot(std::move(combined));
        return combined;
      }
      if (negated) {
        auto* cmp = static_cast<BinaryExpr*>(pos.get());
        cmp->op = BinaryOp::kLt;
      }
      return pos;
    }
    // Rules 19/20: chain link `v := count subquery`, filter on $v.
    auto link_query = std::make_unique<SelectStmt>();
    link_query->items.push_back(count_item());
    link_query->from = std::move(sub->from);
    link_query->where = std::move(sub->where);
    VR_RETURN_NOT_OK(Run(link_query.get()));
    std::string var = NextVar();
    chain_->push_back(ChainLink{var, std::move(link_query)});
    return MakeBinary(negated ? BinaryOp::kLt : BinaryOp::kGe,
                      std::make_unique<ParamExpr>(var), MakeIntLiteral(1));
  }

  /// True if `e` is a column reference to the primary key of the single
  /// base table in `sub`'s FROM (the statically checkable version of
  /// Rule 16's uniqueness premise).
  bool ProjectsUniqueKey(const SelectStmt& sub, const Expr& e) const {
    if (sub.from.size() != 1 || sub.from[0]->kind != TableRefKind::kBase) {
      return false;
    }
    if (e.kind != ExprKind::kColumnRef) return false;
    const auto& c = static_cast<const ColumnRefExpr&>(e);
    const auto& base = static_cast<const BaseTableRef&>(*sub.from[0]);
    const TableSchema* t = schema_.FindTable(base.name);
    if (t == nullptr) return false;
    if (!c.table.empty() && c.table != base.BindingName()) return false;
    return c.column == t->primary_key();
  }

  /// Rules 11, 16, 17: IN / NOT IN with a subquery. The derived table
  /// carries a constant `1 AS matched` indicator; the padding LEFT JOIN
  /// turns it into NULL for unmatched rows, so the membership test becomes
  /// the bounded predicate COALESCE(matched, 0) >= 1.
  Result<ExprPtr> HandleIn(ExprPtr* slot, SelectStmt* stmt,
                           const ColumnResolver& outer) {
    auto* node = static_cast<InExpr*>(slot->get());
    SelectStmtPtr sub = std::move(node->subquery);
    ExprPtr lhs = std::move(node->lhs);
    const bool negated = node->negated;
    if (sub->items.size() != 1 || sub->items[0].is_star) {
      return Status::RewriteError(
          "IN subquery must project exactly one column");
    }
    ExprPtr val_expr = std::move(sub->items[0].expr);
    sub->items.clear();

    std::string alias = NextAlias();
    auto derived = std::make_unique<SelectStmt>();
    ExprPtr join_cond;
    ExprPtr phi;
    const bool correlated = SubqueryIsCorrelatedTo(*sub, schema_);
    bool unique_key = false;
    if (correlated) {
      // Rule 11: group by (correlation keys, projected column).
      VR_ASSIGN_OR_RETURN(auto pairs,
                          ExtractCorrelation(sub.get(), schema_, outer));
      phi = PromoteKeyFilters(sub.get(), pairs, promote_key_filters_);
      KeySpec spec = BuildKeySpec(pairs, alias);
      derived->items = std::move(spec.items);
      derived->group_by = std::move(spec.group_by);
      join_cond = std::move(spec.join_cond);
    } else {
      unique_key = promote_key_filters_ && ProjectsUniqueKey(*sub, *val_expr);
    }
    SelectItem val_item;
    val_item.expr = val_expr->Clone();
    val_item.alias = "val";
    derived->items.push_back(std::move(val_item));
    {
      SelectItem ind;
      ind.expr = MakeIntLiteral(1);
      ind.alias = "matched";
      derived->items.push_back(std::move(ind));
    }
    if (unique_key) {
      // Rule 16: the projected column is unique, so no dedup grouping is
      // needed and any subquery filter can ride along as projected
      // columns, hoisted into the membership predicate (keeping the view
      // independent of the filter constants).
      std::vector<const Expr*> inner = CollectConjuncts(sub->where.get());
      std::map<std::string, std::pair<std::string, std::string>> subst;
      bool hoistable = true;
      for (const Expr* c : inner) {
        if (ContainsSubquery(c)) {
          hoistable = false;
          break;
        }
        std::vector<const ColumnRefExpr*> refs;
        CollectColumnRefsShallow(c, &refs);
        for (const ColumnRefExpr* r : refs) {
          subst[ToSql(*r)] = {alias, r->column};
        }
      }
      if (hoistable && !inner.empty()) {
        std::set<std::string> projected;
        for (const Expr* c : inner) {
          std::vector<const ColumnRefExpr*> refs;
          CollectColumnRefsShallow(c, &refs);
          for (const ColumnRefExpr* r : refs) {
            if (!projected.insert(r->column).second) continue;
            SelectItem item;
            item.expr = MakeColumnRef(r->table, r->column);
            item.alias = r->column;
            derived->items.push_back(std::move(item));
          }
          phi = MakeAnd(std::move(phi), CloneWithSubstitution(*c, subst));
        }
        sub->where = nullptr;
      }
    } else if (!correlated) {
      // Rule 17: dedup by grouping on the projected column.
      derived->group_by.push_back(val_expr->Clone());
    } else {
      derived->group_by.push_back(val_expr->Clone());
    }
    derived->from = std::move(sub->from);
    derived->where = std::move(sub->where);
    VR_RETURN_NOT_OK(Run(derived.get()));
    join_cond = MakeAnd(
        std::move(join_cond),
        MakeBinary(BinaryOp::kEq, MakeColumnRef(alias, "val"),
                   std::move(lhs)));
    AttachLeftJoin(
        stmt, std::make_unique<DerivedTableRef>(std::move(derived), alias),
        std::move(join_cond));
    std::vector<ExprPtr> co_args;
    co_args.push_back(MakeColumnRef(alias, "matched"));
    co_args.push_back(MakeIntLiteral(0));
    ExprPtr pos = MakeBinary(BinaryOp::kGe,
                             MakeFuncCall("coalesce", std::move(co_args)),
                             MakeIntLiteral(1));
    if (phi != nullptr) {
      ExprPtr combined = MakeAnd(std::move(phi), std::move(pos));
      if (negated) return MakeNot(std::move(combined));
      return combined;
    }
    if (negated) {
      auto* cmp = static_cast<BinaryExpr*>(pos.get());
      cmp->op = BinaryOp::kLt;
    }
    return pos;
  }

  /// Rules 9, 10, 15: scalar subqueries (any position in the predicate).
  Result<ExprPtr> HandleScalar(ExprPtr* slot, SelectStmt* stmt,
                               const ColumnResolver& outer) {
    auto* node = static_cast<ScalarSubqueryExpr*>(slot->get());
    SelectStmtPtr sub = std::move(node->subquery);
    if (sub->items.size() != 1 || sub->items[0].is_star) {
      return Status::RewriteError(
          "scalar subquery must project exactly one expression");
    }
    if (SubqueryIsCorrelatedTo(*sub, schema_)) {
      if (!sub->group_by.empty()) {
        return Status::RewriteError(
            "correlated scalar subquery with GROUP BY is not supported");
      }
      if (!ExprContainsAggregate(sub->items[0].expr.get())) {
        return Status::RewriteError(
            "correlated scalar subquery must be an aggregate");
      }
      VR_ASSIGN_OR_RETURN(auto pairs,
                          ExtractCorrelation(sub.get(), schema_, outer));
      ExprPtr phi = PromoteKeyFilters(sub.get(), pairs, promote_key_filters_);
      std::string alias = NextAlias();
      KeySpec spec = BuildKeySpec(pairs, alias);
      const bool bare_count = IsBareCount(*sub->items[0].expr);
      auto derived = std::make_unique<SelectStmt>();
      derived->items = std::move(spec.items);
      SelectItem agg_item;
      agg_item.expr = std::move(sub->items[0].expr);
      agg_item.alias = "agg";
      derived->items.push_back(std::move(agg_item));
      derived->from = std::move(sub->from);
      derived->where = std::move(sub->where);
      derived->group_by = std::move(spec.group_by);
      VR_RETURN_NOT_OK(Run(derived.get()));
      AttachLeftJoin(stmt,
                     std::make_unique<DerivedTableRef>(std::move(derived),
                                                       alias),
                     std::move(spec.join_cond));
      ExprPtr ref = MakeColumnRef(alias, "agg");
      if (bare_count) {
        // Rule 10 rewrite-trap handling: COUNT over an empty group is 0,
        // not NULL; COALESCE restores that after the padding join.
        std::vector<ExprPtr> args;
        args.push_back(std::move(ref));
        args.push_back(MakeIntLiteral(0));
        ref = MakeFuncCall("coalesce", std::move(args));
      }
      if (phi != nullptr) {
        // The promoted key filter gates the scalar: when it fails, the
        // original subquery aggregated an empty set (NULL, or 0 for a
        // bare COUNT). ifpos() is the engine's CASE-WHEN.
        std::vector<ExprPtr> args;
        args.push_back(std::move(phi));
        args.push_back(std::move(ref));
        ref = MakeFuncCall("ifpos", std::move(args));
        if (bare_count) {
          std::vector<ExprPtr> co;
          co.push_back(std::move(ref));
          co.push_back(MakeIntLiteral(0));
          ref = MakeFuncCall("coalesce", std::move(co));
        }
      }
      return ref;
    }
    // Rule 15: chained query.
    VR_RETURN_NOT_OK(Run(sub.get()));
    std::string var = NextVar();
    chain_->push_back(ChainLink{var, std::move(sub)});
    return ExprPtr(std::make_unique<ParamExpr>(var));
  }

  const Schema& schema_;
  std::vector<ChainLink>* chain_;
  bool promote_key_filters_;
  int counter_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public stages
// ---------------------------------------------------------------------------

Status Rewriter::InlineWithClauses(SelectStmt* stmt) const {
  InlineWithInStmt(stmt, WithDefs{});
  return Status::OK();
}

void InlineWithClausesStandalone(SelectStmt* stmt) {
  InlineWithInStmt(stmt, WithDefs{});
}

Status Rewriter::UnnestPredicates(SelectStmt* stmt,
                                  std::vector<ChainLink>* chain) const {
  Unnester unnester(schema_, chain, options_.enable_key_filter_promotion);
  return unnester.Run(stmt);
}

namespace {

/// Collects pointers to derived tables that are safe targets for Rules 1-3
/// (i.e. not the padded side of a LEFT JOIN).
void CollectHoistTargets(TableRef* ref, bool padded,
                         std::vector<DerivedTableRef*>* out) {
  switch (ref->kind) {
    case TableRefKind::kBase:
      return;
    case TableRefKind::kDerived:
      if (!padded) out->push_back(static_cast<DerivedTableRef*>(ref));
      return;
    case TableRefKind::kJoin: {
      auto* j = static_cast<JoinTableRef*>(ref);
      CollectHoistTargets(j->left.get(), padded, out);
      CollectHoistTargets(j->right.get(),
                          padded || j->join_type == JoinType::kLeft, out);
      return;
    }
  }
}

/// Finds the output name of an existing select item matching `sql`
/// (canonical text of its expression), or empty.
std::string FindProjection(const SelectStmt& sub, const std::string& sql) {
  for (size_t i = 0; i < sub.items.size(); ++i) {
    const SelectItem& item = sub.items[i];
    if (item.is_star || !item.expr) continue;
    if (ToSql(*item.expr) == sql) {
      if (!item.alias.empty()) return item.alias;
      if (item.expr->kind == ExprKind::kColumnRef) {
        return static_cast<const ColumnRefExpr&>(*item.expr).column;
      }
    }
  }
  return "";
}

/// Ensures `sub` projects `expr`; returns its output column name.
std::string EnsureProjection(SelectStmt* sub, const Expr& expr,
                             const std::string& base_name) {
  std::string existing = FindProjection(*sub, ToSql(expr));
  if (!existing.empty()) return existing;
  // Also match a bare column item by column name.
  if (expr.kind == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(expr);
    for (const SelectItem& item : sub->items) {
      if (item.is_star || !item.expr) continue;
      if (item.expr->kind == ExprKind::kColumnRef) {
        const auto& c = static_cast<const ColumnRefExpr&>(*item.expr);
        if (c.column == ref.column &&
            (ref.table.empty() || c.table.empty() || c.table == ref.table)) {
          return item.alias.empty() ? c.column : item.alias;
        }
      }
    }
  }
  // Add a new projection with a unique alias.
  std::set<std::string> used;
  for (const SelectItem& item : sub->items) {
    if (!item.alias.empty()) {
      used.insert(item.alias);
    } else if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
      used.insert(static_cast<const ColumnRefExpr&>(*item.expr).column);
    }
  }
  std::string name = base_name;
  int n = 0;
  while (used.count(name) > 0) name = base_name + "_" + std::to_string(++n);
  SelectItem item;
  item.expr = expr.Clone();
  item.alias = name;
  sub->items.push_back(std::move(item));
  return name;
}

}  // namespace

Status Rewriter::HoistDerivedFilters(SelectStmt* stmt) const {
  std::vector<DerivedTableRef*> targets;
  for (auto& f : stmt->from) {
    CollectHoistTargets(f.get(), /*padded=*/false, &targets);
  }
  for (DerivedTableRef* d : targets) {
    SelectStmt* sub = d->subquery.get();
    VR_RETURN_NOT_OK(HoistDerivedFilters(sub));  // nested derived tables

    const bool has_group = !sub->group_by.empty();
    bool has_agg = false;
    for (const auto& item : sub->items) {
      if (!item.is_star && ExprContainsAggregate(item.expr.get())) {
        has_agg = true;
      }
    }
    std::set<std::string> group_cols;  // bare column names of GROUP BY refs
    for (const auto& g : sub->group_by) {
      if (g->kind == ExprKind::kColumnRef) {
        group_cols.insert(static_cast<const ColumnRefExpr&>(*g).column);
      }
    }

    std::vector<ExprPtr> hoisted;

    // Rules 1 and 2: WHERE conjuncts.
    {
      std::vector<const Expr*> keep;
      for (const Expr* c : CollectConjuncts(sub->where.get())) {
        bool eligible = false;
        if (!ContainsSubquery(c)) {
          std::vector<const ColumnRefExpr*> refs;
          CollectColumnRefsShallow(c, &refs);
          if (!has_group && !has_agg) {
            eligible = true;  // Rule 1: no grouping, everything moves.
          } else if (has_group) {
            // Rule 2: filter attribute(s) must be grouping columns.
            eligible = !refs.empty();
            for (const ColumnRefExpr* r : refs) {
              if (group_cols.count(r->column) == 0) eligible = false;
            }
          }
          if (eligible && sub->distinct) eligible = false;
          if (eligible) {
            // Project every referenced column and rewrite the predicate
            // onto the derived table's output.
            std::map<std::string, std::pair<std::string, std::string>> subst;
            for (const ColumnRefExpr* r : refs) {
              std::string out = EnsureProjection(sub, *r, r->column);
              subst[ToSql(*r)] = {d->alias, out};
            }
            hoisted.push_back(CloneWithSubstitution(*c, subst));
          }
        }
        if (!eligible) keep.push_back(c);
      }
      sub->where = ConjunctionOf(keep);
    }

    // Rule 3: HAVING conjuncts move to the main WHERE.
    if (sub->having) {
      std::vector<const Expr*> keep;
      for (const Expr* c : CollectConjuncts(sub->having.get())) {
        if (ContainsSubquery(c)) {
          keep.push_back(c);
          continue;
        }
        std::vector<const FuncCallExpr*> aggs;
        CollectAggCalls(c, &aggs);
        std::vector<const ColumnRefExpr*> refs;
        CollectColumnRefsShallow(c, &refs);
        bool eligible = true;
        for (const ColumnRefExpr* r : refs) {
          // Non-aggregate references must be grouping columns. Refs inside
          // aggregate arguments are fine; approximate by allowing either.
          bool inside_agg = false;
          for (const FuncCallExpr* a : aggs) {
            std::vector<const ColumnRefExpr*> inner;
            for (const auto& arg : a->args) {
              CollectColumnRefsShallow(arg.get(), &inner);
            }
            for (const ColumnRefExpr* ir : inner) {
              if (ir == r) inside_agg = true;
            }
          }
          if (!inside_agg && group_cols.count(r->column) == 0) {
            eligible = false;
          }
        }
        if (!eligible) {
          keep.push_back(c);
          continue;
        }
        std::map<std::string, std::pair<std::string, std::string>> subst;
        for (const FuncCallExpr* a : aggs) {
          std::string out = EnsureProjection(sub, *a, "agg");
          subst[ToSql(*a)] = {d->alias, out};
        }
        for (const ColumnRefExpr* r : refs) {
          if (subst.count(ToSql(*r)) > 0) continue;
          bool inside_agg = false;
          for (const FuncCallExpr* a : aggs) {
            std::vector<const ColumnRefExpr*> inner;
            for (const auto& arg : a->args) {
              CollectColumnRefsShallow(arg.get(), &inner);
            }
            for (const ColumnRefExpr* ir : inner) {
              if (ir == r) inside_agg = true;
            }
          }
          if (inside_agg) continue;
          std::string out = EnsureProjection(sub, *r, r->column);
          subst[ToSql(*r)] = {d->alias, out};
        }
        hoisted.push_back(CloneWithSubstitution(*c, subst));
      }
      sub->having = ConjunctionOf(keep);
    }

    for (ExprPtr& h : hoisted) {
      stmt->where = MakeAnd(std::move(stmt->where), std::move(h));
    }
  }
  return Status::OK();
}

namespace {

/// Canonical signature of a derived table body (Rules 4/5 merge key).
std::string DerivedBodySignature(const SelectStmt& sub) {
  std::string sig = "F:";
  for (const auto& f : sub.from) sig += ToSql(*f) + ",";
  sig += "|W:";
  if (sub.where) sig += ToSql(*sub.where);
  sig += "|G:";
  for (const auto& g : sub.group_by) sig += ToSql(*g) + ",";
  sig += "|H:";
  if (sub.having) sig += ToSql(*sub.having);
  sig += sub.distinct ? "|D" : "";
  return sig;
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).column;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return static_cast<const FuncCallExpr&>(*item.expr).name;
  }
  return "expr";
}

/// Merges `dup`'s select list into `kept`, producing the column remap for
/// references to `dup`'s alias.
AliasRemap MergeSelectLists(SelectStmt* kept, const std::string& kept_alias,
                            const SelectStmt& dup) {
  AliasRemap remap;
  remap.new_alias = kept_alias;
  std::set<std::string> used;
  for (const auto& item : kept->items) used.insert(OutputName(item));
  for (const auto& item : dup.items) {
    std::string dup_name = OutputName(item);
    std::string existing =
        item.expr ? FindProjection(*kept, ToSql(*item.expr)) : "";
    if (!existing.empty()) {
      remap.column_map[dup_name] = existing;
      continue;
    }
    std::string name = dup_name;
    int n = 0;
    while (used.count(name) > 0) name = dup_name + "_" + std::to_string(++n);
    used.insert(name);
    SelectItem clone = item.Clone();
    clone.alias = name;
    kept->items.push_back(std::move(clone));
    remap.column_map[dup_name] = name;
  }
  return remap;
}

}  // namespace

Status Rewriter::MergeDerivedTables(SelectStmt* stmt) const {
  // Case A: derived tables that are direct FROM items (comma list).
  {
    std::map<std::string, size_t> first_by_sig;  // signature -> from index
    std::map<std::string, AliasRemap> remaps;
    std::vector<TableRefPtr> new_from;
    for (auto& f : stmt->from) {
      if (f->kind != TableRefKind::kDerived) {
        new_from.push_back(std::move(f));
        continue;
      }
      auto* d = static_cast<DerivedTableRef*>(f.get());
      std::string sig = DerivedBodySignature(*d->subquery);
      auto it = first_by_sig.find(sig);
      if (it == first_by_sig.end()) {
        first_by_sig[sig] = new_from.size();
        new_from.push_back(std::move(f));
        continue;
      }
      auto* kept =
          static_cast<DerivedTableRef*>(new_from[it->second].get());
      remaps[d->alias] = MergeSelectLists(kept->subquery.get(), kept->alias,
                                          *d->subquery);
      // f dropped.
    }
    stmt->from = std::move(new_from);
    if (!remaps.empty()) RemapRefsInStmt(stmt, remaps);
  }

  // Case B: LEFT JOIN attachments on the spine built by the unnester.
  if (stmt->from.size() == 1 && stmt->from[0]->kind == TableRefKind::kJoin) {
    // Peel the spine of left-joined derived tables.
    std::vector<std::pair<TableRefPtr, ExprPtr>> attachments;
    TableRefPtr cur = std::move(stmt->from[0]);
    while (cur->kind == TableRefKind::kJoin) {
      auto* j = static_cast<JoinTableRef*>(cur.get());
      if (j->join_type != JoinType::kLeft ||
          j->right->kind != TableRefKind::kDerived) {
        break;
      }
      attachments.emplace_back(std::move(j->right), std::move(j->condition));
      cur = std::move(j->left);
    }
    std::reverse(attachments.begin(), attachments.end());

    std::map<std::string, size_t> first_by_sig;
    std::map<std::string, AliasRemap> remaps;
    std::vector<std::pair<TableRefPtr, ExprPtr>> kept;
    for (auto& [ref, cond] : attachments) {
      auto* d = static_cast<DerivedTableRef*>(ref.get());
      // The join condition references the attachment alias; normalize it
      // out of the signature so same-shaped attachments match.
      ExprPtr cond_norm = cond ? cond->Clone() : nullptr;
      if (cond_norm) {
        std::map<std::string, AliasRemap> self;
        AliasRemap r;
        r.new_alias = "_self_";
        for (const auto& item : d->subquery->items) {
          r.column_map[OutputName(item)] = OutputName(item);
        }
        self[d->alias] = std::move(r);
        RemapRefs(cond_norm.get(), self);
      }
      std::string sig = DerivedBodySignature(*d->subquery) + "|C:" +
                        (cond_norm ? ToSql(*cond_norm) : "");
      auto it = first_by_sig.find(sig);
      if (it == first_by_sig.end()) {
        first_by_sig[sig] = kept.size();
        kept.emplace_back(std::move(ref), std::move(cond));
        continue;
      }
      auto* kd = static_cast<DerivedTableRef*>(kept[it->second].first.get());
      remaps[d->alias] =
          MergeSelectLists(kd->subquery.get(), kd->alias, *d->subquery);
    }

    // Rebuild the spine.
    for (auto& [ref, cond] : kept) {
      cur = std::make_unique<JoinTableRef>(JoinType::kLeft, std::move(cur),
                                           std::move(ref), std::move(cond));
    }
    stmt->from[0] = std::move(cur);
    if (!remaps.empty()) RemapRefsInStmt(stmt, remaps);
  }
  return Status::OK();
}

namespace {

struct FlattenResult {
  std::vector<TableRefPtr> leaves;
  std::vector<std::pair<TableRefPtr, ExprPtr>> left_attachments;
  std::vector<ExprPtr> cond_pool;
};

void FlattenJoins(TableRefPtr ref, FlattenResult* out) {
  if (ref->kind == TableRefKind::kJoin) {
    auto* j = static_cast<JoinTableRef*>(ref.get());
    if (j->join_type == JoinType::kInner) {
      for (ExprPtr& c :
           [&] {
             std::vector<ExprPtr> cs;
             for (const Expr* c : CollectConjuncts(j->condition.get())) {
               cs.push_back(c->Clone());
             }
             return cs;
           }()) {
        out->cond_pool.push_back(std::move(c));
      }
      FlattenJoins(std::move(j->left), out);
      FlattenJoins(std::move(j->right), out);
      return;
    }
    if (j->join_type == JoinType::kLeft) {
      FlattenJoins(std::move(j->left), out);
      out->left_attachments.emplace_back(std::move(j->right),
                                         std::move(j->condition));
      return;
    }
    // NATURAL joins stay opaque.
  }
  out->leaves.push_back(std::move(ref));
}

std::string LeafKey(const TableRef& ref) {
  if (ref.kind == TableRefKind::kBase) {
    const auto& b = static_cast<const BaseTableRef&>(ref);
    return "0:" + b.name + ":" + b.alias;
  }
  return "1:" + ToSql(ref);
}

}  // namespace

Status Rewriter::CanonicalizeJoins(SelectStmt* stmt) const {
  if (stmt->from.empty()) return Status::OK();

  FlattenResult flat;
  for (auto& f : stmt->from) FlattenJoins(std::move(f), &flat);
  stmt->from.clear();

  // Canonicalize inside derived leaves and attachments first.
  for (auto& leaf : flat.leaves) {
    if (leaf->kind == TableRefKind::kDerived) {
      VR_RETURN_NOT_OK(CanonicalizeJoins(
          static_cast<DerivedTableRef*>(leaf.get())->subquery.get()));
    }
  }
  for (auto& [ref, cond] : flat.left_attachments) {
    (void)cond;
    if (ref->kind == TableRefKind::kDerived) {
      VR_RETURN_NOT_OK(CanonicalizeJoins(
          static_cast<DerivedTableRef*>(ref.get())->subquery.get()));
    }
  }

  // Resolver per leaf.
  std::vector<ColumnResolver> resolvers;
  for (const auto& leaf : flat.leaves) {
    VR_ASSIGN_OR_RETURN(auto cols, TableRefColumns(*leaf, schema_));
    resolvers.emplace_back(std::move(cols));
  }
  auto leaf_of = [&](const ColumnRefExpr& ref) -> int {
    int found = -1;
    for (size_t i = 0; i < resolvers.size(); ++i) {
      if (resolvers[i].Resolves(ref)) {
        if (found >= 0) return -2;
        found = static_cast<int>(i);
      }
    }
    return found;
  };

  // Pull equi conjuncts from WHERE into the condition pool.
  {
    std::vector<const Expr*> keep;
    for (const Expr* c : CollectConjuncts(stmt->where.get())) {
      bool pooled = false;
      if (c->kind == ExprKind::kBinary) {
        const auto* b = static_cast<const BinaryExpr*>(c);
        if (b->op == BinaryOp::kEq &&
            b->left->kind == ExprKind::kColumnRef &&
            b->right->kind == ExprKind::kColumnRef) {
          int li = leaf_of(static_cast<const ColumnRefExpr&>(*b->left));
          int ri = leaf_of(static_cast<const ColumnRefExpr&>(*b->right));
          if (li >= 0 && ri >= 0 && li != ri) {
            flat.cond_pool.push_back(c->Clone());
            pooled = true;
          }
        }
      }
      if (!pooled) keep.push_back(c);
    }
    stmt->where = ConjunctionOf(keep);
  }

  // Classify pool conditions by the pair of leaves they bridge. Equality
  // operands are ordered canonically so `a.x = b.y` and `b.y = a.x` yield
  // the same signature.
  struct PoolCond {
    ExprPtr cond;
    int a = -1, b = -1;
    bool used = false;
  };
  std::vector<PoolCond> pool;
  for (ExprPtr& c : flat.cond_pool) {
    if (c->kind == ExprKind::kBinary) {
      auto* b = static_cast<BinaryExpr*>(c.get());
      if (b->op == BinaryOp::kEq && ToSql(*b->left) > ToSql(*b->right)) {
        std::swap(b->left, b->right);
      }
    }
    PoolCond pc;
    std::vector<const ColumnRefExpr*> refs;
    CollectColumnRefsShallow(c.get(), &refs);
    std::set<int> touched;
    bool ok = true;
    for (const ColumnRefExpr* r : refs) {
      int li = leaf_of(*r);
      if (li < 0) {
        ok = false;
        break;
      }
      touched.insert(li);
    }
    if (ok && touched.size() == 2) {
      auto it = touched.begin();
      pc.a = *it++;
      pc.b = *it;
      pc.cond = std::move(c);
      pool.push_back(std::move(pc));
    } else {
      // Falls back to a plain WHERE filter.
      stmt->where = MakeAnd(std::move(stmt->where), std::move(c));
    }
  }

  // Deterministic leaf order.
  std::vector<size_t> order(flat.leaves.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return LeafKey(*flat.leaves[x]) < LeafKey(*flat.leaves[y]);
  });

  // Greedy left-deep construction: start from the first leaf in canonical
  // order; repeatedly attach the smallest-keyed leaf connected by a pool
  // condition, falling back to the next unused leaf (cross join).
  std::set<size_t> in_tree;
  std::vector<bool> used_leaf(flat.leaves.size(), false);
  TableRefPtr tree = std::move(flat.leaves[order[0]]);
  used_leaf[order[0]] = true;
  in_tree.insert(order[0]);
  for (size_t step = 1; step < order.size(); ++step) {
    int next = -1;
    for (size_t cand : order) {
      if (used_leaf[cand]) continue;
      for (const PoolCond& pc : pool) {
        if (pc.used) continue;
        bool bridges = (in_tree.count(pc.a) > 0 &&
                        static_cast<size_t>(pc.b) == cand) ||
                       (in_tree.count(pc.b) > 0 &&
                        static_cast<size_t>(pc.a) == cand);
        if (bridges) {
          next = static_cast<int>(cand);
          break;
        }
      }
      if (next >= 0) break;
    }
    if (next < 0) {
      for (size_t cand : order) {
        if (!used_leaf[cand]) {
          next = static_cast<int>(cand);
          break;
        }
      }
    }
    size_t ni = static_cast<size_t>(next);
    ExprPtr on;
    for (PoolCond& pc : pool) {
      if (pc.used) continue;
      bool bridges =
          (in_tree.count(pc.a) > 0 && static_cast<size_t>(pc.b) == ni) ||
          (in_tree.count(pc.b) > 0 && static_cast<size_t>(pc.a) == ni);
      if (bridges) {
        pc.used = true;
        on = MakeAnd(std::move(on), std::move(pc.cond));
      }
    }
    tree = std::make_unique<JoinTableRef>(JoinType::kInner, std::move(tree),
                                          std::move(flat.leaves[ni]),
                                          std::move(on));
    used_leaf[ni] = true;
    in_tree.insert(ni);
  }
  // Any unused pool condition connects leaves already merged; keep as WHERE.
  for (PoolCond& pc : pool) {
    if (!pc.used && pc.cond) {
      stmt->where = MakeAnd(std::move(stmt->where), std::move(pc.cond));
    }
  }

  // Attach LEFT JOINs in deterministic order.
  std::sort(flat.left_attachments.begin(), flat.left_attachments.end(),
            [](const auto& x, const auto& y) {
              std::string kx = ToSql(*x.first) +
                               (x.second ? ToSql(*x.second) : "");
              std::string ky = ToSql(*y.first) +
                               (y.second ? ToSql(*y.second) : "");
              return kx < ky;
            });
  for (auto& [ref, cond] : flat.left_attachments) {
    tree = std::make_unique<JoinTableRef>(JoinType::kLeft, std::move(tree),
                                          std::move(ref), std::move(cond));
  }
  stmt->from.push_back(std::move(tree));
  return Status::OK();
}

Result<QueryCombination> Rewriter::SplitDisjunction(SelectStmtPtr stmt) const {
  auto single = [&](SelectStmtPtr s) {
    QueryCombination combo;
    QueryCombination::Term term;
    term.coeff = 1.0;
    term.query = std::move(s);
    combo.terms.push_back(std::move(term));
    return combo;
  };
  if (!options_.enable_or_split || stmt->where == nullptr ||
      !HasOr(stmt->where.get())) {
    return single(std::move(stmt));
  }
  // Rule 7 applies to scalar aggregate queries (a count/sum over the
  // filtered join); grouped queries pass through unsplit.
  const bool scalar_agg = stmt->group_by.empty() && stmt->items.size() == 1 &&
                          !stmt->items[0].is_star &&
                          ExprContainsAggregate(stmt->items[0].expr.get());
  if (!scalar_agg) {
    return single(std::move(stmt));
  }
  // The paper knob (max_or_disjuncts -> kRewriteError) trips first under
  // default configuration; the governance cap (max_dnf_disjuncts ->
  // kResourceExhausted) backstops it should the knob be raised.
  const size_t governance_cap = options_.limits.max_dnf_disjuncts;
  const size_t max_d = std::min(options_.max_or_disjuncts, governance_cap);
  bool dnf_cap_tripped = false;
  Result<std::vector<Disjunct>> dnf_result =
      ToDnf(*stmt->where, max_d, &dnf_cap_tripped);
  if (!dnf_result.ok()) {
    // Relabel only a genuine disjunct-cap trip while the governance cap
    // is the effective bound; unrelated rewrite errors pass through.
    if (dnf_cap_tripped && options_.max_or_disjuncts > governance_cap) {
      return Status::ResourceExhausted(
          "DNF expansion exceeds the governance limit (" +
          std::to_string(governance_cap) + " disjuncts)");
    }
    return dnf_result.status();
  }
  std::vector<Disjunct> dnf = std::move(dnf_result).value();
  if (dnf.size() == 1) {
    std::vector<const Expr*> atoms;
    for (const auto& a : dnf[0]) atoms.push_back(a.get());
    stmt->where = ConjunctionOf(atoms);
    return single(std::move(stmt));
  }
  stmt->where = nullptr;
  return InclusionExclusion(*stmt, dnf, options_.limits.max_ie_terms);
}

Result<RewrittenQuery> Rewriter::Rewrite(const SelectStmt& query) const {
  VR_FAULT_POINT(faults::kRewrite);
  SelectStmtPtr stmt = query.Clone();
  RewrittenQuery out;

  VR_RETURN_NOT_OK(InlineWithClauses(stmt.get()));
  if (options_.enable_unnest) {
    VR_RETURN_NOT_OK(UnnestPredicates(stmt.get(), &out.chain));
  }
  if (options_.enable_hoist) {
    VR_RETURN_NOT_OK(HoistDerivedFilters(stmt.get()));
  }
  if (options_.enable_merge) {
    VR_RETURN_NOT_OK(MergeDerivedTables(stmt.get()));
  }
  VR_RETURN_NOT_OK(CanonicalizeJoins(stmt.get()));

  // Chain links go through the same normalization so that their FROM
  // structures define stable views too.
  for (ChainLink& link : out.chain) {
    if (options_.enable_hoist) {
      VR_RETURN_NOT_OK(HoistDerivedFilters(link.query.get()));
    }
    if (options_.enable_merge) {
      VR_RETURN_NOT_OK(MergeDerivedTables(link.query.get()));
    }
    VR_RETURN_NOT_OK(CanonicalizeJoins(link.query.get()));
  }

  VR_ASSIGN_OR_RETURN(out.combination, SplitDisjunction(std::move(stmt)));
  return out;
}

}  // namespace viewrewrite
