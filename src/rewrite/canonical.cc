#include "rewrite/canonical.h"

#include "sql/printer.h"

namespace viewrewrite {

std::string CanonicalRewrittenSql(const RewrittenQuery& rq) {
  return ToSql(rq);
}

std::string CanonicalCacheKey(const RewrittenQuery& rq,
                              const std::map<std::string, Value>& params) {
  std::string key = CanonicalRewrittenSql(rq);
  // std::map iterates sorted, so the rendering is order-independent.
  for (const auto& [name, value] : params) {
    key += "|$";
    key += name;
    key += '=';
    key += value.ToString();
  }
  return key;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace viewrewrite
