#include "rewrite/analysis.h"

#include "sql/printer.h"

namespace viewrewrite {

namespace {

Status AppendTableRefColumns(
    const TableRef& ref, const Schema& schema,
    std::vector<std::pair<std::string, std::string>>* out);

Status AppendSelectOutputs(
    const SelectStmt& stmt, const Schema& schema, const std::string& binding,
    std::vector<std::pair<std::string, std::string>>* out) {
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      // Expand to all FROM columns, exposed under the derived binding.
      for (const auto& f : stmt.from) {
        std::vector<std::pair<std::string, std::string>> inner;
        VR_RETURN_NOT_OK(AppendTableRefColumns(*f, schema, &inner));
        for (auto& [_, col] : inner) out->emplace_back(binding, col);
      }
      continue;
    }
    std::string name;
    if (!item.alias.empty()) {
      name = item.alias;
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      name = static_cast<const ColumnRefExpr&>(*item.expr).column;
    } else if (item.expr->kind == ExprKind::kFuncCall) {
      name = static_cast<const FuncCallExpr&>(*item.expr).name;
    } else {
      name = "expr" + std::to_string(i);
    }
    out->emplace_back(binding, std::move(name));
  }
  return Status::OK();
}

Status AppendTableRefColumns(
    const TableRef& ref, const Schema& schema,
    std::vector<std::pair<std::string, std::string>>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase: {
      const auto& base = static_cast<const BaseTableRef&>(ref);
      VR_ASSIGN_OR_RETURN(const TableSchema* t, schema.GetTable(base.name));
      for (const auto& c : t->columns()) {
        out->emplace_back(base.BindingName(), c.name);
      }
      return Status::OK();
    }
    case TableRefKind::kDerived: {
      const auto& d = static_cast<const DerivedTableRef&>(ref);
      return AppendSelectOutputs(*d.subquery, schema, d.alias, out);
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      VR_RETURN_NOT_OK(AppendTableRefColumns(*j.left, schema, out));
      VR_RETURN_NOT_OK(AppendTableRefColumns(*j.right, schema, out));
      return Status::OK();
    }
  }
  return Status::Internal("unknown table ref kind");
}

}  // namespace

Result<std::vector<std::pair<std::string, std::string>>> TableRefColumns(
    const TableRef& ref, const Schema& schema) {
  std::vector<std::pair<std::string, std::string>> out;
  VR_RETURN_NOT_OK(AppendTableRefColumns(ref, schema, &out));
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> VisibleColumns(
    const SelectStmt& stmt, const Schema& schema) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& f : stmt.from) {
    VR_RETURN_NOT_OK(AppendTableRefColumns(*f, schema, &out));
  }
  return out;
}

bool ColumnResolver::Resolves(const ColumnRefExpr& ref) const {
  for (const auto& [binding, col] : cols_) {
    if (!ref.table.empty()) {
      if (binding == ref.table && col == ref.column) return true;
    } else if (col == ref.column) {
      return true;
    }
  }
  return false;
}

void CollectColumnRefsShallow(const Expr* e,
                              std::vector<const ColumnRefExpr*>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(e));
      return;
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      CollectColumnRefsShallow(b->left.get(), out);
      CollectColumnRefsShallow(b->right.get(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectColumnRefsShallow(static_cast<const UnaryExpr*>(e)->operand.get(),
                               out);
      return;
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) CollectColumnRefsShallow(a.get(), out);
      return;
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const InExpr*>(e);
      CollectColumnRefsShallow(in->lhs.get(), out);
      for (const auto& v : in->value_list) {
        CollectColumnRefsShallow(v.get(), out);
      }
      return;
    }
    case ExprKind::kQuantifiedCmp:
      CollectColumnRefsShallow(
          static_cast<const QuantifiedCmpExpr*>(e)->lhs.get(), out);
      return;
    default:
      return;  // literals, params, stars, nested subqueries
  }
}

bool HasOuterRefs(const Expr& e, const ColumnResolver& resolver) {
  std::vector<const ColumnRefExpr*> refs;
  CollectColumnRefsShallow(&e, &refs);
  for (const ColumnRefExpr* r : refs) {
    if (!resolver.Resolves(*r)) return true;
  }
  return false;
}

bool ContainsSubquery(const Expr* e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kScalarSubquery:
    case ExprKind::kExists:
    case ExprKind::kQuantifiedCmp:
      return true;
    case ExprKind::kIn:
      return static_cast<const InExpr*>(e)->subquery != nullptr;
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      return ContainsSubquery(b->left.get()) ||
             ContainsSubquery(b->right.get());
    }
    case ExprKind::kUnary:
      return ContainsSubquery(static_cast<const UnaryExpr*>(e)->operand.get());
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) {
        if (ContainsSubquery(a.get())) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

Result<std::vector<CorrelationPair>> ExtractCorrelation(
    SelectStmt* sub, const Schema& schema, const ColumnResolver& outer) {
  VR_ASSIGN_OR_RETURN(auto local_cols, VisibleColumns(*sub, schema));
  ColumnResolver local(std::move(local_cols));

  std::vector<const Expr*> conjuncts = CollectConjuncts(sub->where.get());
  std::vector<CorrelationPair> pairs;
  std::vector<const Expr*> local_conjuncts;

  for (const Expr* c : conjuncts) {
    if (!HasOuterRefs(*c, local)) {
      local_conjuncts.push_back(c);
      continue;
    }
    // Must be `local = outer` (either side).
    if (c->kind != ExprKind::kBinary) {
      return Status::RewriteError(
          "unsupported correlated predicate (not an equality): " + ToSql(*c));
    }
    const auto* b = static_cast<const BinaryExpr*>(c);
    if (b->op != BinaryOp::kEq ||
        b->left->kind != ExprKind::kColumnRef ||
        b->right->kind != ExprKind::kColumnRef) {
      return Status::RewriteError(
          "unsupported correlated predicate (not column = column): " +
          ToSql(*c));
    }
    const auto& lc = static_cast<const ColumnRefExpr&>(*b->left);
    const auto& rc = static_cast<const ColumnRefExpr&>(*b->right);
    const ColumnRefExpr* local_ref = nullptr;
    const ColumnRefExpr* outer_ref = nullptr;
    if (local.Resolves(lc) && !local.Resolves(rc) && outer.Resolves(rc)) {
      local_ref = &lc;
      outer_ref = &rc;
    } else if (local.Resolves(rc) && !local.Resolves(lc) &&
               outer.Resolves(lc)) {
      local_ref = &rc;
      outer_ref = &lc;
    } else {
      return Status::RewriteError(
          "cannot attribute correlated equality sides: " + ToSql(*c));
    }
    pairs.push_back(CorrelationPair{local_ref->table, local_ref->column,
                                    outer_ref->table, outer_ref->column});
  }

  if (pairs.empty()) {
    return Status::RewriteError("subquery is not correlated");
  }
  sub->where = ConjunctionOf(local_conjuncts);
  return pairs;
}

}  // namespace viewrewrite
