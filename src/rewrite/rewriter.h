#ifndef VIEWREWRITE_REWRITE_REWRITER_H_
#define VIEWREWRITE_REWRITE_REWRITER_H_

#include <algorithm>
#include <vector>

#include "catalog/schema.h"
#include "common/limits.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

struct RewriteOptions {
  /// Hard cap on DNF disjuncts (Rule 7 emits 2^k - 1 terms). This is the
  /// paper-level quality knob; breaching it is kRewriteError ("this query
  /// is outside the rewrite class"), distinct from the governance caps in
  /// `limits` below (kResourceExhausted, "this input is hostile-sized").
  size_t max_or_disjuncts = 6;
  /// Resource governance for the rewrite pipeline: max_dnf_disjuncts
  /// backstops max_or_disjuncts should it be configured high, and
  /// max_ie_terms bounds the Rule-7 2^k clone expansion.
  ResourceLimits limits;
  /// Stage toggles, used by the ablation benchmarks.
  bool enable_unnest = true;         // Rules 9-20
  bool enable_hoist = true;          // Rules 1-3
  bool enable_merge = true;          // Rules 4-5
  bool enable_or_split = true;       // Rules 6-7
  /// Promote subquery filters that constrain only the correlation key to
  /// main-query predicates on the outer column (sound because such a
  /// filter is constant within each correlation group). Disabled for the
  /// PrivateSQL baseline, whose views keep subquery constants.
  bool enable_key_filter_promotion = true;
};

/// Implements the paper's query-rewriting pipeline (§5-§8):
///
///   Rule 8        WITH -> FROM derived tables
///   Rules 9-20    unnest WHERE subqueries (correlated and non-correlated;
///                 comparison / IN / ANY-SOME-ALL / EXISTS) into grouped
///                 derived tables LEFT-JOINed to the main query, or into
///                 chained scalar links ($var parameters)
///   Rules 1-3     hoist derived-table filters (WHERE on group columns,
///                 HAVING over aggregates) into the main query
///   Rules 4-5     merge structurally identical derived subqueries
///   Rules 6-7     distribute OR over AND and split the query into an
///                 inclusion-exclusion combination of AND-only queries
///
/// The output is a RewrittenQuery whose FROM structure no longer depends
/// on subquery filter constants — the property that keeps the generated
/// view count flat.
class Rewriter {
 public:
  explicit Rewriter(const Schema& schema, RewriteOptions options = {})
      : schema_(schema), options_(options) {}

  /// Runs the full pipeline on `query`.
  Result<RewrittenQuery> Rewrite(const SelectStmt& query) const;

  // Individual stages, exposed for unit tests and ablations. All stages
  // mutate `stmt` in place and are semantics-preserving.

  /// Rule 8: replaces references to WITH names with derived tables.
  Status InlineWithClauses(SelectStmt* stmt) const;

  /// Rules 9-20: eliminates subqueries from the WHERE tree. New scalar
  /// chain links are appended to `chain` in dependency order.
  Status UnnestPredicates(SelectStmt* stmt,
                          std::vector<ChainLink>* chain) const;

  /// Rules 1-3: hoists hoistable filters out of inner-joined derived
  /// tables into the enclosing WHERE. (LEFT-JOINed correlation tables are
  /// left untouched — hoisting through a padding join is not
  /// equivalence-preserving.)
  Status HoistDerivedFilters(SelectStmt* stmt) const;

  /// Rules 4-5: merges derived tables with identical FROM/WHERE/GROUP BY
  /// (and, for join attachments, identical join conditions), unioning
  /// their select lists and remapping references.
  Status MergeDerivedTables(SelectStmt* stmt) const;

  /// Normalizes the FROM clause into a canonical left-deep join tree with
  /// equi-join conditions pulled from WHERE into ON clauses. Gives every
  /// structurally identical query an identical FROM rendering (the view
  /// signature) and enables hash joins in the executor.
  Status CanonicalizeJoins(SelectStmt* stmt) const;

  /// Rules 6-7: splits a scalar aggregate query with OR filters into an
  /// inclusion-exclusion combination. Queries without OR yield one term.
  Result<QueryCombination> SplitDisjunction(SelectStmtPtr stmt) const;

 private:
  const Schema& schema_;
  RewriteOptions options_;
};

/// Rule 8 as a standalone transformation (used by the classifier to
/// resolve WITH names before feature extraction).
void InlineWithClausesStandalone(SelectStmt* stmt);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_REWRITE_REWRITER_H_
