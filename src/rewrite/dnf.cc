#include "rewrite/dnf.h"

#include <map>
#include <set>
#include <string>

#include "sql/printer.h"

namespace viewrewrite {

ExprPtr PushNotInward(const Expr& e, bool negate) {
  if (e.kind == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    if (u.op == UnaryOp::kNot) {
      return PushNotInward(*u.operand, !negate);
    }
  }
  if (e.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
      BinaryOp op = b.op;
      if (negate) {
        op = (op == BinaryOp::kAnd) ? BinaryOp::kOr : BinaryOp::kAnd;
      }
      return MakeBinary(op, PushNotInward(*b.left, negate),
                        PushNotInward(*b.right, negate));
    }
    if (negate && IsComparisonOp(b.op)) {
      return MakeBinary(NegateComparison(b.op), b.left->Clone(),
                        b.right->Clone());
    }
  }
  if (negate && e.kind == ExprKind::kFuncCall) {
    const auto& f = static_cast<const FuncCallExpr&>(e);
    if (f.name == "isnull" || f.name == "isnotnull") {
      std::vector<ExprPtr> args;
      args.push_back(f.args[0]->Clone());
      return MakeFuncCall(f.name == "isnull" ? "isnotnull" : "isnull",
                          std::move(args));
    }
  }
  ExprPtr clone = e.Clone();
  if (negate) return MakeNot(std::move(clone));
  return clone;
}

namespace {

Result<std::vector<Disjunct>> ToDnfImpl(const Expr& e, size_t max_disjuncts,
                                        bool* cap_tripped) {
  if (e.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op == BinaryOp::kOr) {
      VR_ASSIGN_OR_RETURN(auto l, ToDnfImpl(*b.left, max_disjuncts,
                                            cap_tripped));
      VR_ASSIGN_OR_RETURN(auto r, ToDnfImpl(*b.right, max_disjuncts,
                                            cap_tripped));
      if (l.size() + r.size() > max_disjuncts) {
        if (cap_tripped != nullptr) *cap_tripped = true;
        return Status::RewriteError("DNF expansion exceeds " +
                                    std::to_string(max_disjuncts) +
                                    " disjuncts");
      }
      for (auto& d : r) l.push_back(std::move(d));
      return l;
    }
    if (b.op == BinaryOp::kAnd) {
      // Distributive law: (D1 | ... ) AND (E1 | ...) = cross product.
      VR_ASSIGN_OR_RETURN(auto l, ToDnfImpl(*b.left, max_disjuncts,
                                            cap_tripped));
      VR_ASSIGN_OR_RETURN(auto r, ToDnfImpl(*b.right, max_disjuncts,
                                            cap_tripped));
      if (l.size() * r.size() > max_disjuncts) {
        if (cap_tripped != nullptr) *cap_tripped = true;
        return Status::RewriteError("DNF expansion exceeds " +
                                    std::to_string(max_disjuncts) +
                                    " disjuncts");
      }
      std::vector<Disjunct> out;
      out.reserve(l.size() * r.size());
      for (const Disjunct& dl : l) {
        for (const Disjunct& dr : r) {
          Disjunct d;
          d.reserve(dl.size() + dr.size());
          for (const auto& a : dl) d.push_back(a->Clone());
          for (const auto& a : dr) d.push_back(a->Clone());
          out.push_back(std::move(d));
        }
      }
      return out;
    }
  }
  Disjunct single;
  single.push_back(e.Clone());
  std::vector<Disjunct> out;
  out.push_back(std::move(single));
  return out;
}

}  // namespace

Result<std::vector<Disjunct>> ToDnf(const Expr& e, size_t max_disjuncts,
                                    bool* cap_tripped) {
  if (cap_tripped != nullptr) *cap_tripped = false;
  ExprPtr normalized = PushNotInward(e);
  return ToDnfImpl(*normalized, max_disjuncts, cap_tripped);
}

Result<QueryCombination> InclusionExclusion(
    const SelectStmt& base, const std::vector<Disjunct>& disjuncts,
    size_t max_terms) {
  const size_t k = disjuncts.size();
  if (k == 0) {
    return Status::InvalidArgument("inclusion-exclusion over zero disjuncts");
  }
  if (k > 16) {
    return Status::RewriteError("too many disjuncts for inclusion-exclusion");
  }
  // Governance backstop: refuse the 2^k - 1 expansion before cloning
  // anything. k <= 16 above, so the shift cannot overflow.
  const size_t n_terms = (size_t{1} << k) - 1;
  if (n_terms > max_terms) {
    return Status::ResourceExhausted(
        "inclusion-exclusion over " + std::to_string(k) +
        " disjuncts needs " + std::to_string(n_terms) +
        " terms, exceeding the limit (" + std::to_string(max_terms) + ")");
  }
  QueryCombination combo;
  combo.terms.reserve(n_terms);
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    // Intersection of the selected disjuncts: conjunction of their atoms,
    // deduplicated by canonical SQL text.
    std::set<std::string> seen;
    ExprPtr where;
    int bits = 0;
    for (size_t i = 0; i < k; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      ++bits;
      for (const ExprPtr& atom : disjuncts[i]) {
        std::string key = ToSql(*atom);
        if (!seen.insert(key).second) continue;
        where = MakeAnd(std::move(where), atom->Clone());
      }
    }
    QueryCombination::Term term;
    term.coeff = (bits % 2 == 1) ? 1.0 : -1.0;
    term.query = base.Clone();
    term.query->where = std::move(where);
    combo.terms.push_back(std::move(term));
  }
  return combo;
}

}  // namespace viewrewrite
