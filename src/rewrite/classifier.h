#ifndef VIEWREWRITE_REWRITE_CLASSIFIER_H_
#define VIEWREWRITE_REWRITE_CLASSIFIER_H_

#include "catalog/schema.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// The query taxonomy of Fig. 1. A query may exhibit several features; the
/// classifier reports the dominant one in the order the paper's rewrite
/// pipeline consumes them (nested predicates first, then derived tables).
enum class QueryClass {
  kSimple,                     // single relation or plain join, no subqueries
  kFromDerivedTable,           // subquery in FROM (§6.1–6.3)
  kWithDerivedTable,           // subquery in WITH (§6.4)
  kComparisonCorrelated,       // §7.1 (rules 9, 10)
  kInCorrelated,               // §7.2 (rule 11)
  kSetCorrelated,              // §7.3 (rule 12)
  kExistsCorrelated,           // §7.4 (rules 13, 14)
  kComparisonNonCorrelated,    // §8.1 (rule 15)
  kInNonCorrelated,            // §8.2 (rules 16, 17)
  kSetNonCorrelated,           // §8.3 (rule 18)
  kExistsNonCorrelated,        // §8.4 (rules 19, 20)
};

const char* QueryClassName(QueryClass c);

/// True for the nested (WHERE-subquery) classes.
bool IsNestedClass(QueryClass c);
/// True for the correlated nested classes.
bool IsCorrelatedClass(QueryClass c);

/// Classifies `stmt` per Fig. 1. Feature extraction walks the WHERE tree
/// for subquery predicates (testing each subquery for correlation against
/// the main query's visible columns), then the FROM list for derived
/// tables, then WITH clauses.
Result<QueryClass> Classify(const SelectStmt& stmt, const Schema& schema);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_REWRITE_CLASSIFIER_H_
