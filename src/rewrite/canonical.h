#ifndef VIEWREWRITE_REWRITE_CANONICAL_H_
#define VIEWREWRITE_REWRITE_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sql/ast.h"

namespace viewrewrite {

/// Canonical textual form of a rewritten query. The SQL printer emits a
/// fully parenthesized, single-line canonical rendering, so two rewritten
/// queries with equal canonical SQL are structurally identical and answer
/// identically from the same synopses — the property the serve-path
/// answer cache keys on.
std::string CanonicalRewrittenSql(const RewrittenQuery& rq);

/// Cache key for a (rewritten query, parameter bindings) pair: the
/// canonical SQL followed by the sorted parameter map. Two Submit calls
/// with the same key receive bit-identical answers, so the cached value
/// can be returned without touching the synopsis cells.
std::string CanonicalCacheKey(const RewrittenQuery& rq,
                              const std::map<std::string, Value>& params);

/// FNV-1a 64-bit hash, used for cache shard selection.
uint64_t Fnv1a64(std::string_view s);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_REWRITE_CANONICAL_H_
