#ifndef VIEWREWRITE_SQL_PRINTER_H_
#define VIEWREWRITE_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace viewrewrite {

/// Renders an expression as SQL text. Output uses a canonical, fully
/// parenthesized form so that textual equality implies structural equality.
std::string ToSql(const Expr& expr);

/// Renders a table reference as SQL text.
std::string ToSql(const TableRef& ref);

/// Renders a SELECT statement as SQL text (single line, canonical form).
std::string ToSql(const SelectStmt& stmt);

/// Renders a full rewritten query: chain links as `name := (...)` prefixes
/// followed by the signed combination of queries.
std::string ToSql(const RewrittenQuery& rq);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_PRINTER_H_
