#include "sql/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace viewrewrite {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_int()) return DataType::kInt;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

double Value::ToDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  return AsDoubleExact();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::ostringstream os;
    os << AsDoubleExact();
    return os.str();
  }
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // Allow int/double cross-type numeric equality for the total order so
    // that group keys 1 and 1.0 coincide, matching SQL grouping semantics.
    if (is_numeric() && other.is_numeric()) {
      return ToDouble() == other.ToDouble();
    }
    return false;
  }
  return repr_ == other.repr_;
}

bool Value::operator<(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // both NULL
  if (ra == 1) return ToDouble() < other.ToDouble();
  return AsString() < other.AsString();
}

Result<Value::TriCompare> Value::CompareSql(const Value& other) const {
  TriCompare out;
  if (is_null() || other.is_null()) {
    out.is_null = true;
    return out;
  }
  if (is_numeric() && other.is_numeric()) {
    double a = ToDouble();
    double b = other.ToDouble();
    out.cmp = (a < b) ? -1 : (a > b ? 1 : 0);
    return out;
  }
  if (is_string() && other.is_string()) {
    int c = AsString().compare(other.AsString());
    out.cmp = (c < 0) ? -1 : (c > 0 ? 1 : 0);
    return out;
  }
  return Status::TypeMismatch("cannot compare " +
                              std::string(DataTypeName(type())) + " with " +
                              std::string(DataTypeName(other.type())));
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_numeric()) {
    double d = ToDouble();
    if (d == 0.0) d = 0.0;  // normalize -0.0
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(AsString());
}

}  // namespace viewrewrite
