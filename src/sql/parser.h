#ifndef VIEWREWRITE_SQL_PARSER_H_
#define VIEWREWRITE_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// Parses one SQL SELECT statement (optionally with WITH clauses and a
/// trailing semicolon) into an AST.
///
/// Supported grammar (the subset the paper's query classes need):
///   [WITH name AS (select) [, ...]]
///   SELECT [DISTINCT] item [, ...]
///   FROM table_ref [, ...]
///   [WHERE expr] [GROUP BY cols] [HAVING expr]
/// with joins (JOIN/INNER/LEFT [OUTER]/NATURAL ... ON), derived tables,
/// scalar/EXISTS/IN/ANY/SOME/ALL subqueries, aggregates with DISTINCT,
/// COALESCE, arithmetic, AND/OR/NOT, IS [NOT] NULL, BETWEEN, and `$param`
/// placeholders for chained queries.
Result<SelectStmtPtr> ParseSelect(const std::string& sql);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_PARSER_H_
