#ifndef VIEWREWRITE_SQL_PARSER_H_
#define VIEWREWRITE_SQL_PARSER_H_

#include <string>

#include "common/limits.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// Parses one SQL SELECT statement (optionally with WITH clauses and a
/// trailing semicolon) into an AST.
///
/// Supported grammar (the subset the paper's query classes need):
///   [WITH name AS (select) [, ...]]
///   SELECT [DISTINCT] item [, ...]
///   FROM table_ref [, ...]
///   [WHERE expr] [GROUP BY cols] [HAVING expr]
/// with joins (JOIN/INNER/LEFT [OUTER]/NATURAL ... ON), derived tables,
/// scalar/EXISTS/IN/ANY/SOME/ALL subqueries, aggregates with DISTINCT,
/// COALESCE, arithmetic, AND/OR/NOT, IS [NOT] NULL, BETWEEN, and `$param`
/// placeholders for chained queries.
///
/// Resource governance (`limits`): input size and token count are
/// enforced by the tokenizer; nesting depth, operator-chain length, and
/// total AST node count are enforced during parsing, and the finished
/// tree is re-measured with ComputeAstStats. Any breach returns
/// kResourceExhausted; malformed integer literals (overflowing int64)
/// return kInvalidArgument. A statement that parses OK is therefore safe
/// for every downstream recursive walk.
Result<SelectStmtPtr> ParseSelect(const std::string& sql);
Result<SelectStmtPtr> ParseSelect(const std::string& sql,
                                  const ResourceLimits& limits);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_PARSER_H_
