#include "sql/printer.h"

#include <sstream>

#include "common/strings.h"

namespace viewrewrite {

namespace {

void PrintExpr(const Expr& e, std::ostream& os);
void PrintSelect(const SelectStmt& s, std::ostream& os);

void PrintExpr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      os << lit.value.ToString();
      return;
    }
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      os << c.FullName();
      return;
    }
    case ExprKind::kStar:
      os << "*";
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      os << "(";
      PrintExpr(*b.left, os);
      os << " " << BinaryOpName(b.op) << " ";
      PrintExpr(*b.right, os);
      os << ")";
      return;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      os << (u.op == UnaryOp::kNot ? "(NOT " : "(-");
      PrintExpr(*u.operand, os);
      os << ")";
      return;
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(e);
      os << ToUpper(f.name) << "(";
      if (f.distinct) os << "DISTINCT ";
      for (size_t i = 0; i < f.args.size(); ++i) {
        if (i > 0) os << ", ";
        PrintExpr(*f.args[i], os);
      }
      os << ")";
      return;
    }
    case ExprKind::kScalarSubquery: {
      const auto& sq = static_cast<const ScalarSubqueryExpr&>(e);
      os << "(";
      PrintSelect(*sq.subquery, os);
      os << ")";
      return;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(e);
      PrintExpr(*in.lhs, os);
      os << (in.negated ? " NOT IN (" : " IN (");
      if (in.subquery) {
        PrintSelect(*in.subquery, os);
      } else {
        for (size_t i = 0; i < in.value_list.size(); ++i) {
          if (i > 0) os << ", ";
          PrintExpr(*in.value_list[i], os);
        }
      }
      os << ")";
      return;
    }
    case ExprKind::kExists: {
      const auto& ex = static_cast<const ExistsExpr&>(e);
      os << (ex.negated ? "NOT EXISTS (" : "EXISTS (");
      PrintSelect(*ex.subquery, os);
      os << ")";
      return;
    }
    case ExprKind::kQuantifiedCmp: {
      const auto& q = static_cast<const QuantifiedCmpExpr&>(e);
      PrintExpr(*q.lhs, os);
      os << " " << BinaryOpName(q.op) << " "
         << (q.quantifier == Quantifier::kAny ? "ANY (" : "ALL (");
      PrintSelect(*q.subquery, os);
      os << ")";
      return;
    }
    case ExprKind::kParam: {
      const auto& p = static_cast<const ParamExpr&>(e);
      os << "$" << p.name;
      return;
    }
  }
}

void PrintTableRef(const TableRef& r, std::ostream& os) {
  switch (r.kind) {
    case TableRefKind::kBase: {
      const auto& b = static_cast<const BaseTableRef&>(r);
      os << b.name;
      if (!b.alias.empty()) os << " AS " << b.alias;
      return;
    }
    case TableRefKind::kDerived: {
      const auto& d = static_cast<const DerivedTableRef&>(r);
      os << "(";
      PrintSelect(*d.subquery, os);
      os << ") AS " << d.alias;
      return;
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(r);
      PrintTableRef(*j.left, os);
      switch (j.join_type) {
        case JoinType::kInner:
          os << " JOIN ";
          break;
        case JoinType::kLeft:
          os << " LEFT JOIN ";
          break;
        case JoinType::kNatural:
          os << " NATURAL JOIN ";
          break;
      }
      PrintTableRef(*j.right, os);
      if (j.condition) {
        os << " ON ";
        PrintExpr(*j.condition, os);
      }
      return;
    }
  }
}

void PrintSelect(const SelectStmt& s, std::ostream& os) {
  if (!s.with.empty()) {
    os << "WITH ";
    for (size_t i = 0; i < s.with.size(); ++i) {
      if (i > 0) os << ", ";
      os << s.with[i].name << " AS (";
      PrintSelect(*s.with[i].query, os);
      os << ")";
    }
    os << " ";
  }
  os << "SELECT ";
  if (s.distinct) os << "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) os << ", ";
    if (s.items[i].is_star) {
      os << "*";
    } else {
      PrintExpr(*s.items[i].expr, os);
      if (!s.items[i].alias.empty()) os << " AS " << s.items[i].alias;
    }
  }
  if (!s.from.empty()) {
    os << " FROM ";
    for (size_t i = 0; i < s.from.size(); ++i) {
      if (i > 0) os << ", ";
      PrintTableRef(*s.from[i], os);
    }
  }
  if (s.where) {
    os << " WHERE ";
    PrintExpr(*s.where, os);
  }
  if (!s.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) os << ", ";
      PrintExpr(*s.group_by[i], os);
    }
  }
  if (s.having) {
    os << " HAVING ";
    PrintExpr(*s.having, os);
  }
  if (!s.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) os << ", ";
      PrintExpr(*s.order_by[i].expr, os);
      if (s.order_by[i].descending) os << " DESC";
    }
  }
  if (s.limit >= 0) {
    os << " LIMIT " << s.limit;
  }
}

}  // namespace

std::string ToSql(const Expr& expr) {
  std::ostringstream os;
  PrintExpr(expr, os);
  return os.str();
}

std::string ToSql(const TableRef& ref) {
  std::ostringstream os;
  PrintTableRef(ref, os);
  return os.str();
}

std::string ToSql(const SelectStmt& stmt) {
  std::ostringstream os;
  PrintSelect(stmt, os);
  return os.str();
}

std::string ToSql(const RewrittenQuery& rq) {
  std::ostringstream os;
  for (const auto& link : rq.chain) {
    os << link.var << " := (";
    PrintSelect(*link.query, os);
    os << "); ";
  }
  for (size_t i = 0; i < rq.combination.terms.size(); ++i) {
    const auto& t = rq.combination.terms[i];
    if (i > 0) os << (t.coeff >= 0 ? " + " : " - ");
    else if (t.coeff < 0) os << "- ";
    double mag = t.coeff >= 0 ? t.coeff : -t.coeff;
    if (mag != 1.0) os << mag << " * ";
    os << "(";
    PrintSelect(*t.query, os);
    os << ")";
  }
  return os.str();
}

}  // namespace viewrewrite
