#include "sql/ast.h"

#include "common/strings.h"

namespace viewrewrite {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return BinaryOp::kNe;
    case BinaryOp::kNe: return BinaryOp::kEq;
    case BinaryOp::kLt: return BinaryOp::kGe;
    case BinaryOp::kLe: return BinaryOp::kGt;
    case BinaryOp::kGt: return BinaryOp::kLe;
    case BinaryOp::kGe: return BinaryOp::kLt;
    default: return op;
  }
}

bool FuncCallExpr::IsAggregate() const {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max" || name == "variance" ||
         name == "stddev";
}

// Clone implementations ------------------------------------------------------

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value);
}

ExprPtr ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(table, column);
}

ExprPtr StarExpr::Clone() const { return std::make_unique<StarExpr>(); }

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op, left->Clone(), right->Clone());
}

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op, operand->Clone());
}

ExprPtr FuncCallExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->Clone());
  return std::make_unique<FuncCallExpr>(name, std::move(cloned), distinct);
}

ScalarSubqueryExpr::ScalarSubqueryExpr(SelectStmtPtr q)
    : Expr(ExprKind::kScalarSubquery), subquery(std::move(q)) {}
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

ExprPtr ScalarSubqueryExpr::Clone() const {
  return std::make_unique<ScalarSubqueryExpr>(subquery->Clone());
}

InExpr::InExpr(ExprPtr l, SelectStmtPtr q, bool neg)
    : Expr(ExprKind::kIn), lhs(std::move(l)), subquery(std::move(q)),
      negated(neg) {}
InExpr::InExpr(ExprPtr l, std::vector<ExprPtr> list, bool neg)
    : Expr(ExprKind::kIn), lhs(std::move(l)), subquery(nullptr),
      value_list(std::move(list)), negated(neg) {}
InExpr::~InExpr() = default;

ExprPtr InExpr::Clone() const {
  if (subquery) {
    return std::make_unique<InExpr>(lhs->Clone(), subquery->Clone(), negated);
  }
  std::vector<ExprPtr> cloned;
  cloned.reserve(value_list.size());
  for (const auto& v : value_list) cloned.push_back(v->Clone());
  return std::make_unique<InExpr>(lhs->Clone(), std::move(cloned), negated);
}

ExistsExpr::ExistsExpr(SelectStmtPtr q, bool neg)
    : Expr(ExprKind::kExists), subquery(std::move(q)), negated(neg) {}
ExistsExpr::~ExistsExpr() = default;

ExprPtr ExistsExpr::Clone() const {
  return std::make_unique<ExistsExpr>(subquery->Clone(), negated);
}

QuantifiedCmpExpr::QuantifiedCmpExpr(ExprPtr l, BinaryOp o, Quantifier q,
                                     SelectStmtPtr sq)
    : Expr(ExprKind::kQuantifiedCmp), lhs(std::move(l)), op(o), quantifier(q),
      subquery(std::move(sq)) {}
QuantifiedCmpExpr::~QuantifiedCmpExpr() = default;

ExprPtr QuantifiedCmpExpr::Clone() const {
  return std::make_unique<QuantifiedCmpExpr>(lhs->Clone(), op, quantifier,
                                             subquery->Clone());
}

ExprPtr ParamExpr::Clone() const { return std::make_unique<ParamExpr>(name); }

TableRefPtr BaseTableRef::Clone() const {
  return std::make_unique<BaseTableRef>(name, alias);
}

DerivedTableRef::DerivedTableRef(SelectStmtPtr q, std::string a)
    : TableRef(TableRefKind::kDerived), subquery(std::move(q)),
      alias(std::move(a)) {}
DerivedTableRef::~DerivedTableRef() = default;

TableRefPtr DerivedTableRef::Clone() const {
  return std::make_unique<DerivedTableRef>(subquery->Clone(), alias);
}

TableRefPtr JoinTableRef::Clone() const {
  return std::make_unique<JoinTableRef>(
      join_type, left->Clone(), right->Clone(),
      condition ? condition->Clone() : nullptr);
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.alias = alias;
  out.is_star = is_star;
  return out;
}

WithItem WithItem::Clone() const {
  WithItem out;
  out.name = name;
  out.query = query->Clone();
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  out.expr = expr->Clone();
  out.descending = descending;
  return out;
}

SelectStmtPtr SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->with.reserve(with.size());
  for (const auto& w : with) out->with.push_back(w.Clone());
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& it : items) out->items.push_back(it.Clone());
  out->from.reserve(from.size());
  for (const auto& f : from) out->from.push_back(f->Clone());
  out->where = where ? where->Clone() : nullptr;
  out->group_by.reserve(group_by.size());
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = having ? having->Clone() : nullptr;
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  return out;
}

ChainLink ChainLink::Clone() const {
  ChainLink out;
  out.var = var;
  out.query = query->Clone();
  return out;
}

QueryCombination::Term QueryCombination::Term::Clone() const {
  Term out;
  out.coeff = coeff;
  out.query = query->Clone();
  return out;
}

QueryCombination QueryCombination::Clone() const {
  QueryCombination out;
  out.terms.reserve(terms.size());
  for (const auto& t : terms) out.terms.push_back(t.Clone());
  return out;
}

RewrittenQuery RewrittenQuery::Clone() const {
  RewrittenQuery out;
  out.chain.reserve(chain.size());
  for (const auto& l : chain) out.chain.push_back(l.Clone());
  out.combination = combination.Clone();
  return out;
}

// Convenience constructors ---------------------------------------------------

ExprPtr MakeLiteral(Value v) {
  return std::make_unique<LiteralExpr>(std::move(v));
}

ExprPtr MakeIntLiteral(int64_t v) { return MakeLiteral(Value::Int(v)); }

ExprPtr MakeColumnRef(std::string table, std::string column) {
  return std::make_unique<ColumnRefExpr>(std::move(table), std::move(column));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}

ExprPtr MakeAnd(ExprPtr l, ExprPtr r) {
  if (!l) return r;
  if (!r) return l;
  return MakeBinary(BinaryOp::kAnd, std::move(l), std::move(r));
}

ExprPtr MakeOr(ExprPtr l, ExprPtr r) {
  if (!l) return r;
  if (!r) return l;
  return MakeBinary(BinaryOp::kOr, std::move(l), std::move(r));
}

ExprPtr MakeNot(ExprPtr e) {
  return std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(e));
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     bool distinct) {
  return std::make_unique<FuncCallExpr>(ToLower(name), std::move(args),
                                        distinct);
}

namespace {

/// One pending node of the iterative AST walk: exactly one pointer set.
struct WalkItem {
  const Expr* expr = nullptr;
  const TableRef* ref = nullptr;
  const SelectStmt* stmt = nullptr;
  size_t depth = 0;
};

}  // namespace

AstStats ComputeAstStats(const SelectStmt& stmt) {
  AstStats stats;
  std::vector<WalkItem> work;
  work.push_back({nullptr, nullptr, &stmt, 1});
  auto push_expr = [&work](const Expr* e, size_t d) {
    if (e != nullptr) work.push_back({e, nullptr, nullptr, d});
  };
  auto push_stmt = [&work](const SelectStmt* s, size_t d) {
    if (s != nullptr) work.push_back({nullptr, nullptr, s, d});
  };
  while (!work.empty()) {
    WalkItem item = work.back();
    work.pop_back();
    ++stats.nodes;
    if (item.depth > stats.depth) stats.depth = item.depth;
    const size_t d = item.depth + 1;
    if (item.expr != nullptr) {
      switch (item.expr->kind) {
        case ExprKind::kLiteral:
        case ExprKind::kColumnRef:
        case ExprKind::kStar:
        case ExprKind::kParam:
          break;
        case ExprKind::kBinary: {
          const auto* b = static_cast<const BinaryExpr*>(item.expr);
          push_expr(b->left.get(), d);
          push_expr(b->right.get(), d);
          break;
        }
        case ExprKind::kUnary:
          push_expr(static_cast<const UnaryExpr*>(item.expr)->operand.get(),
                    d);
          break;
        case ExprKind::kFuncCall: {
          const auto* f = static_cast<const FuncCallExpr*>(item.expr);
          for (const auto& a : f->args) push_expr(a.get(), d);
          break;
        }
        case ExprKind::kScalarSubquery:
          push_stmt(
              static_cast<const ScalarSubqueryExpr*>(item.expr)->subquery.get(),
              d);
          break;
        case ExprKind::kIn: {
          const auto* in = static_cast<const InExpr*>(item.expr);
          push_expr(in->lhs.get(), d);
          push_stmt(in->subquery.get(), d);
          for (const auto& v : in->value_list) push_expr(v.get(), d);
          break;
        }
        case ExprKind::kExists:
          push_stmt(static_cast<const ExistsExpr*>(item.expr)->subquery.get(),
                    d);
          break;
        case ExprKind::kQuantifiedCmp: {
          const auto* q = static_cast<const QuantifiedCmpExpr*>(item.expr);
          push_expr(q->lhs.get(), d);
          push_stmt(q->subquery.get(), d);
          break;
        }
      }
    } else if (item.ref != nullptr) {
      switch (item.ref->kind) {
        case TableRefKind::kBase:
          break;
        case TableRefKind::kDerived:
          push_stmt(
              static_cast<const DerivedTableRef*>(item.ref)->subquery.get(),
              d);
          break;
        case TableRefKind::kJoin: {
          const auto* j = static_cast<const JoinTableRef*>(item.ref);
          if (j->left) work.push_back({nullptr, j->left.get(), nullptr, d});
          if (j->right) work.push_back({nullptr, j->right.get(), nullptr, d});
          push_expr(j->condition.get(), d);
          break;
        }
      }
    } else {
      const SelectStmt* s = item.stmt;
      for (const auto& w : s->with) push_stmt(w.query.get(), d);
      for (const auto& it : s->items) push_expr(it.expr.get(), d);
      for (const auto& f : s->from) {
        if (f) work.push_back({nullptr, f.get(), nullptr, d});
      }
      push_expr(s->where.get(), d);
      for (const auto& g : s->group_by) push_expr(g.get(), d);
      push_expr(s->having.get(), d);
      for (const auto& o : s->order_by) push_expr(o.expr.get(), d);
    }
  }
  return stats;
}

std::vector<const Expr*> CollectConjuncts(const Expr* e) {
  std::vector<const Expr*> out;
  if (e == nullptr) return out;
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    if (b->op == BinaryOp::kAnd) {
      auto l = CollectConjuncts(b->left.get());
      auto r = CollectConjuncts(b->right.get());
      out.insert(out.end(), l.begin(), l.end());
      out.insert(out.end(), r.begin(), r.end());
      return out;
    }
  }
  out.push_back(e);
  return out;
}

ExprPtr ConjunctionOf(const std::vector<const Expr*>& conjuncts) {
  ExprPtr out;
  for (const Expr* c : conjuncts) {
    out = MakeAnd(std::move(out), c->Clone());
  }
  return out;
}

}  // namespace viewrewrite
