#include "sql/token.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace viewrewrite {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",    "BY",     "HAVING",
      "AS",     "AND",    "OR",     "NOT",      "IN",     "EXISTS",
      "ANY",    "SOME",   "ALL",    "DISTINCT", "JOIN",   "INNER",
      "LEFT",   "RIGHT",  "OUTER",  "NATURAL",  "ON",     "WITH",
      "NULL",   "IS",     "BETWEEN", "LIKE",    "CASE",   "WHEN",
      "THEN",   "ELSE",   "END",    "UNION",    "ORDER",  "LIMIT",
      "ASC",    "DESC",   "TRUE",   "FALSE",
  };
  return *kKeywords;
}

}  // namespace

bool IsSqlKeyword(const std::string& upper_word) {
  return KeywordSet().count(upper_word) > 0;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

Result<std::vector<Token>> Tokenize(const std::string& sql,
                                    const ResourceLimits& limits) {
  if (sql.size() > limits.max_sql_bytes) {
    return Status::ResourceExhausted(
        "SQL text of " + std::to_string(sql.size()) +
        " bytes exceeds the limit (" + std::to_string(limits.max_sql_bytes) +
        ")");
  }
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    if (out.size() >= limits.max_tokens) {
      return Status::ResourceExhausted(
          "SQL token stream exceeds the limit (" +
          std::to_string(limits.max_tokens) + " tokens)");
    }
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: -- ... \n
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = ToLower(word);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool saw_dot = false;
      bool saw_exp = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!saw_dot && sql[i] == '.'))) {
        if (sql[i] == '.') saw_dot = true;
        ++i;
      }
      // Scientific notation: [eE][+-]?digits.
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          saw_exp = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
            ++i;
          }
        }
      }
      tok.type =
          (saw_dot || saw_exp) ? TokenType::kFloat : TokenType::kInteger;
      tok.text = sql.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string lit;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            lit += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        lit += sql[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(lit);
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=" ||
        two == ":=") {
      tok.type = TokenType::kOperator;
      tok.text = (two == "!=") ? "<>" : two;
      i += 2;
      out.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingle = "=<>+-*/(),.;$";
    if (kSingle.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace viewrewrite
