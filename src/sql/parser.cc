#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "sql/token.h"

namespace viewrewrite {

namespace {

/// RAII wrapper around LimitTracker::EnterDepth/LeaveDepth: charges one
/// level of parser recursion on construction and releases it on scope
/// exit (on failure nothing was charged, so nothing is released).
class DepthScope {
 public:
  DepthScope(LimitTracker& tracker, const char* what) : tracker_(tracker) {
    status_ = tracker_.EnterDepth(what);
    entered_ = status_.ok();
  }
  ~DepthScope() {
    if (entered_) tracker_.LeaveDepth();
  }
  DepthScope(const DepthScope&) = delete;
  DepthScope& operator=(const DepthScope&) = delete;

  const Status& status() const { return status_; }

 private:
  LimitTracker& tracker_;
  Status status_;
  bool entered_ = false;
};

/// Strict int64 parse for an integer token: the whole text must convert
/// and fit, else kInvalidArgument (std::strtoll would silently saturate
/// on overflow and ignore trailing garbage).
Result<int64_t> ParseInt64Token(const Token& tok) {
  errno = 0;
  char* end = nullptr;
  const char* begin = tok.text.c_str();
  long long v = std::strtoll(begin, &end, 10);
  if (errno == ERANGE || end == begin || *end != '\0') {
    return Status::InvalidArgument("integer literal '" + tok.text +
                                   "' at offset " +
                                   std::to_string(tok.offset) +
                                   " does not fit in int64");
  }
  return static_cast<int64_t>(v);
}

/// Strict parse of `-<integer token>`. The magnitude converts as uint64
/// so that INT64_MIN stays expressible: its magnitude 2^63 does not fit
/// a bare int64 literal and would be refused before the unary-minus fold
/// could negate it.
Result<int64_t> ParseNegatedInt64Token(const Token& tok) {
  constexpr uint64_t kInt64MinMagnitude =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1;
  errno = 0;
  char* end = nullptr;
  const char* begin = tok.text.c_str();
  unsigned long long mag = std::strtoull(begin, &end, 10);
  if (errno == ERANGE || end == begin || *end != '\0' ||
      mag > kInt64MinMagnitude) {
    return Status::InvalidArgument("integer literal '-" + tok.text +
                                   "' at offset " +
                                   std::to_string(tok.offset) +
                                   " does not fit in int64");
  }
  if (mag == kInt64MinMagnitude) return std::numeric_limits<int64_t>::min();
  return -static_cast<int64_t>(mag);
}

/// Recursive-descent parser over the token stream. `IS [NOT] NULL` is
/// represented as the special function calls isnull(x) / isnotnull(x);
/// `BETWEEN a AND b` is desugared to (x >= a AND x <= b) at parse time.
///
/// Governance: every recursion cycle (subqueries, parenthesized
/// expressions, NOT chains, unary-minus chains) passes through a
/// DepthScope, and the iterative left-deep chain builders (AND/OR,
/// additive, multiplicative, joins) charge chain length against the same
/// depth budget — so the tree the parser hands back can always be
/// destroyed, cloned, and walked recursively without overflowing the
/// machine stack.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const ResourceLimits& limits)
      : tokens_(std::move(tokens)), tracker_(limits) {}

  Result<SelectStmtPtr> ParseStatement() {
    VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelectStmt());
    if (Peek().IsOperator(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenType type, const char* text) {
    const Token& t = Peek();
    if (t.type == type && t.text == text) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    return Accept(TokenType::kKeyword, kw);
  }
  bool AcceptOperator(const char* op) {
    return Accept(TokenType::kOperator, op);
  }
  Status Expect(TokenType type, const char* text) {
    if (!Accept(type, text)) {
      return Status::ParseError(std::string("expected '") + text +
                                "' near offset " +
                                std::to_string(Peek().offset) + " (got '" +
                                Peek().text + "')");
    }
    return Status::OK();
  }
  Status ErrStatus(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset) + " (got '" +
                              Peek().text + "')");
  }
  template <typename T = SelectStmtPtr>
  Result<T> Err(const std::string& msg) const {
    return ErrStatus(msg);
  }

  /// Charges `n` nodes toward max_ast_nodes; a breach is sticky (the
  /// parser aborts at the next VR_RETURN_NOT_OK).
  Status ChargeNodes(size_t n = 1) {
    return tracker_.AddNodes(n, "SQL statement");
  }
  /// Charges one link of an iteratively-built left-deep chain (AND/OR,
  /// + - * /, JOIN) against the depth budget: each link deepens the tree
  /// by one without any parser recursion.
  Status ChargeChain(size_t* chain, const char* what) {
    if (++*chain > tracker_.limits().max_ast_depth) {
      return Status::ResourceExhausted(
          std::string(what) + " chain exceeds the depth limit (" +
          std::to_string(tracker_.limits().max_ast_depth) + ")");
    }
    return Status::OK();
  }

  Result<SelectStmtPtr> ParseSelectStmt() {
    DepthScope scope(tracker_, "SELECT nesting");
    VR_RETURN_NOT_OK(scope.status());
    VR_RETURN_NOT_OK(ChargeNodes());
    auto stmt = std::make_unique<SelectStmt>();
    if (AcceptKeyword("WITH")) {
      while (true) {
        if (Peek().type != TokenType::kIdentifier) {
          return Err("expected WITH-clause name");
        }
        WithItem item;
        item.name = Advance().text;
        VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "AS"));
        VR_RETURN_NOT_OK(Expect(TokenType::kOperator, "("));
        VR_ASSIGN_OR_RETURN(item.query, ParseSelectStmt());
        VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
        stmt->with.push_back(std::move(item));
        if (!AcceptOperator(",")) break;
      }
    }
    VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "SELECT"));
    stmt->distinct = AcceptKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsOperator("*") && !Peek(1).IsOperator(".")) {
        Advance();
        item.is_star = true;
      } else {
        VR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;  // bare alias
        }
      }
      stmt->items.push_back(std::move(item));
      if (!AcceptOperator(",")) break;
    }
    if (AcceptKeyword("FROM")) {
      while (true) {
        VR_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        if (!AcceptOperator(",")) break;
      }
    }
    if (AcceptKeyword("WHERE")) {
      VR_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "BY"));
      while (true) {
        VR_ASSIGN_OR_RETURN(ExprPtr col, ParseExpr());
        stmt->group_by.push_back(std::move(col));
        if (!AcceptOperator(",")) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      VR_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "BY"));
      while (true) {
        OrderItem item;
        VR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!AcceptOperator(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Err("LIMIT expects an integer");
      }
      VR_ASSIGN_OR_RETURN(stmt->limit, ParseInt64Token(Advance()));
    }
    return stmt;
  }

  Result<TableRefPtr> ParseTableRef() {
    VR_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
    size_t chain = 0;
    while (true) {
      JoinType type;
      bool natural = false;
      if (AcceptKeyword("JOIN")) {
        type = JoinType::kInner;
      } else if (AcceptKeyword("INNER")) {
        VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "JOIN"));
        type = JoinType::kInner;
      } else if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");
        VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "JOIN"));
        type = JoinType::kLeft;
      } else if (AcceptKeyword("NATURAL")) {
        VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "JOIN"));
        type = JoinType::kNatural;
        natural = true;
      } else {
        break;
      }
      VR_RETURN_NOT_OK(ChargeChain(&chain, "JOIN"));
      VR_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      ExprPtr cond;
      if (AcceptKeyword("ON")) {
        if (natural) return Err<TableRefPtr>("NATURAL JOIN takes no ON");
        VR_ASSIGN_OR_RETURN(cond, ParseExpr());
      } else if (!natural) {
        return Err<TableRefPtr>("JOIN requires ON condition");
      }
      left = std::make_unique<JoinTableRef>(type, std::move(left),
                                            std::move(right), std::move(cond));
    }
    return left;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    if (AcceptOperator("(")) {
      VR_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
      AcceptKeyword("AS");
      if (Peek().type != TokenType::kIdentifier) {
        return Err<TableRefPtr>("derived table requires an alias");
      }
      std::string alias = Advance().text;
      return TableRefPtr(
          std::make_unique<DerivedTableRef>(std::move(sub), std::move(alias)));
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Err<TableRefPtr>("expected table name");
    }
    std::string name = Advance().text;
    std::string alias;
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err<TableRefPtr>("expected alias after AS");
      }
      alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      alias = Advance().text;
    }
    return TableRefPtr(
        std::make_unique<BaseTableRef>(std::move(name), std::move(alias)));
  }

  // expr := or_expr
  Result<ExprPtr> ParseExpr() {
    DepthScope scope(tracker_, "expression nesting");
    VR_RETURN_NOT_OK(scope.status());
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    VR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    size_t chain = 0;
    while (AcceptKeyword("OR")) {
      VR_RETURN_NOT_OK(ChargeChain(&chain, "OR"));
      VR_RETURN_NOT_OK(ChargeNodes());
      VR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    VR_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    size_t chain = 0;
    while (AcceptKeyword("AND")) {
      VR_RETURN_NOT_OK(ChargeChain(&chain, "AND"));
      VR_RETURN_NOT_OK(ChargeNodes());
      VR_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    // `NOT EXISTS (...)` folds into ExistsExpr(negated) in ParsePredicate.
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("EXISTS")) {
      return ParsePredicate();
    }
    if (AcceptKeyword("NOT")) {
      DepthScope scope(tracker_, "NOT chain");
      VR_RETURN_NOT_OK(scope.status());
      VR_RETURN_NOT_OK(ChargeNodes());
      VR_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      // NOT EXISTS / NOT IN are already folded below; a generic NOT wraps.
      return MakeNot(std::move(inner));
    }
    return ParsePredicate();
  }

  bool PeekSelectAfterParen() const {
    return Peek().IsOperator("(") && Peek(1).type == TokenType::kKeyword &&
           (Peek(1).text == "SELECT" || Peek(1).text == "WITH");
  }

  Result<ExprPtr> ParsePredicate() {
    if (Peek().IsKeyword("EXISTS") ||
        (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("EXISTS"))) {
      bool negated = AcceptKeyword("NOT");
      AcceptKeyword("EXISTS");
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, "("));
      VR_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
      return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub), negated));
    }

    VR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "NULL"));
      std::vector<ExprPtr> args;
      args.push_back(std::move(lhs));
      return MakeFuncCall(negated ? "isnotnull" : "isnull", std::move(args));
    }

    // [NOT] IN / [NOT] BETWEEN
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN"))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("IN")) {
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, "("));
      if (Peek().IsKeyword("SELECT") || Peek().IsKeyword("WITH")) {
        VR_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
        VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
        return ExprPtr(std::make_unique<InExpr>(std::move(lhs),
                                                std::move(sub), negated));
      }
      std::vector<ExprPtr> list;
      while (true) {
        VR_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        list.push_back(std::move(v));
        if (!AcceptOperator(",")) break;
      }
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
      return ExprPtr(std::make_unique<InExpr>(std::move(lhs), std::move(list),
                                              negated));
    }
    if (AcceptKeyword("BETWEEN")) {
      VR_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      VR_RETURN_NOT_OK(Expect(TokenType::kKeyword, "AND"));
      VR_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr lhs_copy = lhs->Clone();
      ExprPtr ge = MakeBinary(BinaryOp::kGe, std::move(lhs_copy), std::move(lo));
      ExprPtr le = MakeBinary(BinaryOp::kLe, std::move(lhs), std::move(hi));
      ExprPtr range = MakeAnd(std::move(ge), std::move(le));
      if (negated) return MakeNot(std::move(range));
      return range;
    }
    if (negated) return Err<ExprPtr>("dangling NOT");

    // Comparison, possibly quantified.
    BinaryOp op;
    if (AcceptOperator("=")) op = BinaryOp::kEq;
    else if (AcceptOperator("<>")) op = BinaryOp::kNe;
    else if (AcceptOperator("<=")) op = BinaryOp::kLe;
    else if (AcceptOperator(">=")) op = BinaryOp::kGe;
    else if (AcceptOperator("<")) op = BinaryOp::kLt;
    else if (AcceptOperator(">")) op = BinaryOp::kGt;
    else return lhs;

    if (Peek().IsKeyword("ANY") || Peek().IsKeyword("SOME") ||
        Peek().IsKeyword("ALL")) {
      Quantifier q = Peek().IsKeyword("ALL") ? Quantifier::kAll
                                             : Quantifier::kAny;
      Advance();
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, "("));
      VR_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
      VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
      return ExprPtr(std::make_unique<QuantifiedCmpExpr>(
          std::move(lhs), op, q, std::move(sub)));
    }
    VR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    VR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    size_t chain = 0;
    while (true) {
      if (AcceptOperator("+")) {
        VR_RETURN_NOT_OK(ChargeChain(&chain, "additive"));
        VR_RETURN_NOT_OK(ChargeNodes());
        VR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kAdd, std::move(left), std::move(right));
      } else if (AcceptOperator("-")) {
        VR_RETURN_NOT_OK(ChargeChain(&chain, "additive"));
        VR_RETURN_NOT_OK(ChargeNodes());
        VR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kSub, std::move(left), std::move(right));
      } else {
        break;
      }
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    VR_ASSIGN_OR_RETURN(ExprPtr left, ParseUnaryPrimary());
    size_t chain = 0;
    while (true) {
      if (AcceptOperator("*")) {
        VR_RETURN_NOT_OK(ChargeChain(&chain, "multiplicative"));
        VR_RETURN_NOT_OK(ChargeNodes());
        VR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnaryPrimary());
        left = MakeBinary(BinaryOp::kMul, std::move(left), std::move(right));
      } else if (AcceptOperator("/")) {
        VR_RETURN_NOT_OK(ChargeChain(&chain, "multiplicative"));
        VR_RETURN_NOT_OK(ChargeNodes());
        VR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnaryPrimary());
        left = MakeBinary(BinaryOp::kDiv, std::move(left), std::move(right));
      } else {
        break;
      }
    }
    return left;
  }

  Result<ExprPtr> ParseUnaryPrimary() {
    if (AcceptOperator("-")) {
      DepthScope scope(tracker_, "unary-minus chain");
      VR_RETURN_NOT_OK(scope.status());
      // `-` directly before an integer token folds before the magnitude
      // check, so INT64_MIN (magnitude 2^63) parses.
      if (Peek().type == TokenType::kInteger) {
        VR_RETURN_NOT_OK(ChargeNodes());
        VR_ASSIGN_OR_RETURN(int64_t v, ParseNegatedInt64Token(Advance()));
        return MakeLiteral(Value::Int(v));
      }
      VR_ASSIGN_OR_RETURN(ExprPtr e, ParseUnaryPrimary());
      // Fold `-<numeric literal>` so negative constants round-trip
      // through the printer unchanged.
      if (e->kind == ExprKind::kLiteral) {
        const Value& v = static_cast<const LiteralExpr&>(*e).value;
        if (v.is_int()) {
          if (v.AsInt() == std::numeric_limits<int64_t>::min()) {
            return Status::InvalidArgument(
                "integer literal does not fit in int64 after negation "
                "near offset " + std::to_string(Peek().offset));
          }
          return MakeLiteral(Value::Int(-v.AsInt()));
        }
        if (v.is_double()) {
          return MakeLiteral(Value::Double(-v.AsDoubleExact()));
        }
      }
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(e)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    VR_RETURN_NOT_OK(ChargeNodes());
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        VR_ASSIGN_OR_RETURN(int64_t v, ParseInt64Token(Advance()));
        return MakeLiteral(Value::Int(v));
      }
      case TokenType::kFloat: {
        double v = std::strtod(Advance().text.c_str(), nullptr);
        return MakeLiteral(Value::Double(v));
      }
      case TokenType::kString:
        return MakeLiteral(Value::String(Advance().text));
      case TokenType::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Int(1));
        }
        if (t.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Int(0));
        }
        return Err<ExprPtr>("unexpected keyword in expression");
      }
      case TokenType::kOperator: {
        if (t.text == "$") {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Err<ExprPtr>("expected parameter name after $");
          }
          return ExprPtr(std::make_unique<ParamExpr>(Advance().text));
        }
        if (t.text == "(") {
          if (PeekSelectAfterParen()) {
            Advance();
            VR_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
            VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
            return ExprPtr(
                std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
          }
          Advance();
          VR_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
          return inner;
        }
        // Note: no bare-`*` production here. `*` is only meaningful as a
        // whole select item or a COUNT(*) argument (both handled at their
        // call sites); accepting it as a general primary let nonsense
        // like `(*) AS cnt` parse into statements whose canonical
        // rendering could not be reparsed (found by fuzz_sql_parser).
        return Err<ExprPtr>("unexpected operator in expression");
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        // Function call?
        if (Peek().IsOperator("(")) {
          Advance();
          bool distinct = AcceptKeyword("DISTINCT");
          std::vector<ExprPtr> args;
          if (!Peek().IsOperator(")")) {
            if (Peek().IsOperator("*") && !distinct) {
              Advance();
              args.push_back(std::make_unique<StarExpr>());
            } else {
              while (true) {
                VR_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
                args.push_back(std::move(a));
                if (!AcceptOperator(",")) break;
              }
            }
          }
          VR_RETURN_NOT_OK(Expect(TokenType::kOperator, ")"));
          return MakeFuncCall(std::move(first), std::move(args), distinct);
        }
        // Qualified column?
        if (AcceptOperator(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err<ExprPtr>("expected column name after '.'");
          }
          std::string col = Advance().text;
          return MakeColumnRef(std::move(first), std::move(col));
        }
        return MakeColumnRef("", std::move(first));
      }
      case TokenType::kEnd:
        return Err<ExprPtr>("unexpected end of input");
    }
    return Err<ExprPtr>("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  LimitTracker tracker_;
};

}  // namespace

Result<SelectStmtPtr> ParseSelect(const std::string& sql,
                                  const ResourceLimits& limits) {
  VR_FAULT_POINT(faults::kParse);
  VR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql, limits));
  Parser parser(std::move(tokens), limits);
  VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, parser.ParseStatement());
  // Re-measure the finished tree iteratively: the in-parse charges are
  // per-production approximations, this is the exact bound downstream
  // recursive walks (Clone, ToSql, DNF, executor eval) rely on.
  AstStats stats = ComputeAstStats(*stmt);
  if (stats.depth > limits.max_ast_depth) {
    return Status::ResourceExhausted(
        "parsed statement depth " + std::to_string(stats.depth) +
        " exceeds the limit (" + std::to_string(limits.max_ast_depth) + ")");
  }
  if (stats.nodes > limits.max_ast_nodes) {
    return Status::ResourceExhausted(
        "parsed statement has " + std::to_string(stats.nodes) +
        " nodes, exceeding the limit (" +
        std::to_string(limits.max_ast_nodes) + ")");
  }
  return stmt;
}

Result<SelectStmtPtr> ParseSelect(const std::string& sql) {
  return ParseSelect(sql, ResourceLimits::Defaults());
}

}  // namespace viewrewrite
