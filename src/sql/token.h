#ifndef VIEWREWRITE_SQL_TOKEN_H_
#define VIEWREWRITE_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "common/limits.h"
#include "common/result.h"

namespace viewrewrite {

enum class TokenType {
  kIdentifier,   // table/column/function names (case-insensitive)
  kKeyword,      // recognized SQL keywords, text stored upper-cased
  kInteger,      // 123
  kFloat,        // 1.5, .5, 2.
  kString,       // 'abc' with '' escaping
  kOperator,     // = <> != < <= > >= + - * / ( ) , . ; $
  kEnd,          // end of input sentinel
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keywords upper-cased; identifiers lower-cased
  size_t offset = 0;  // byte offset in the original query string

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// Tokenizes `sql`. The final element is always a kEnd token. SQL keywords
/// are recognized case-insensitively from a fixed list; everything else
/// alphabetic is an identifier (lower-cased, since SQL identifiers are
/// case-insensitive across database platforms).
///
/// Resource governance: input larger than `limits.max_sql_bytes` is
/// refused before any scanning, and the token stream is capped at
/// `limits.max_tokens` — both with kResourceExhausted.
Result<std::vector<Token>> Tokenize(
    const std::string& sql,
    const ResourceLimits& limits = ResourceLimits::Defaults());

/// True if `word` (upper-cased) is a recognized SQL keyword.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_TOKEN_H_
