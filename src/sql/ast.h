#ifndef VIEWREWRITE_SQL_AST_H_
#define VIEWREWRITE_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/value.h"

namespace viewrewrite {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SelectStmt;
using SelectStmtPtr = std::unique_ptr<SelectStmt>;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,           // the `*` in COUNT(*)
  kBinary,
  kUnary,
  kFuncCall,       // aggregates and scalar functions (COALESCE)
  kScalarSubquery, // (SELECT agg FROM ...)
  kIn,             // x [NOT] IN (subquery | list)
  kExists,         // [NOT] EXISTS (subquery)
  kQuantifiedCmp,  // x op ANY/ALL (subquery)
  kParam,          // $name — bound by chained-query links (Rule 15)
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

enum class UnaryOp { kNot, kNeg };

/// ANY and SOME are synonyms in SQL; both map to kAny.
enum class Quantifier { kAny, kAll };

const char* BinaryOpName(BinaryOp op);
bool IsComparisonOp(BinaryOp op);
/// Flips a comparison (e.g. kLt -> kGt) for operand swap.
BinaryOp MirrorComparison(BinaryOp op);
/// Logical negation of a comparison (e.g. kLt -> kGe).
BinaryOp NegateComparison(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class for all expression nodes. Nodes own their children through
/// unique_ptr; `Clone()` performs a deep copy (the rewriter duplicates
/// subtrees when splitting queries).
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  virtual ExprPtr Clone() const = 0;

  ExprKind kind;
};

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  ExprPtr Clone() const override;

  Value value;
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string tbl, std::string col)
      : Expr(ExprKind::kColumnRef),
        table(std::move(tbl)),
        column(std::move(col)) {}
  ExprPtr Clone() const override;

  std::string table;   // qualifier; empty if unqualified
  std::string column;

  /// "t.c" or "c".
  std::string FullName() const {
    return table.empty() ? column : table + "." + column;
  }
};

struct StarExpr : Expr {
  StarExpr() : Expr(ExprKind::kStar) {}
  ExprPtr Clone() const override;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  ExprPtr Clone() const override;

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  ExprPtr Clone() const override;

  UnaryOp op;
  ExprPtr operand;
};

/// Function call: aggregate (COUNT/SUM/AVG/MIN/MAX) or scalar (COALESCE).
/// Function names are stored lower-cased.
struct FuncCallExpr : Expr {
  FuncCallExpr(std::string fn, std::vector<ExprPtr> a, bool dist = false)
      : Expr(ExprKind::kFuncCall),
        name(std::move(fn)),
        args(std::move(a)),
        distinct(dist) {}
  ExprPtr Clone() const override;

  std::string name;
  std::vector<ExprPtr> args;
  bool distinct;

  bool IsAggregate() const;
};

struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(SelectStmtPtr q);
  ~ScalarSubqueryExpr() override;
  ExprPtr Clone() const override;

  SelectStmtPtr subquery;
};

/// `lhs [NOT] IN (subquery)` or `lhs [NOT] IN (v1, v2, ...)`.
struct InExpr : Expr {
  InExpr(ExprPtr l, SelectStmtPtr q, bool neg);
  InExpr(ExprPtr l, std::vector<ExprPtr> list, bool neg);
  ~InExpr() override;
  ExprPtr Clone() const override;

  ExprPtr lhs;
  SelectStmtPtr subquery;        // nullptr when list form
  std::vector<ExprPtr> value_list;
  bool negated;
};

struct ExistsExpr : Expr {
  ExistsExpr(SelectStmtPtr q, bool neg);
  ~ExistsExpr() override;
  ExprPtr Clone() const override;

  SelectStmtPtr subquery;
  bool negated;
};

/// `lhs op ANY|ALL (subquery)` (SOME == ANY).
struct QuantifiedCmpExpr : Expr {
  QuantifiedCmpExpr(ExprPtr l, BinaryOp o, Quantifier q, SelectStmtPtr sq);
  ~QuantifiedCmpExpr() override;
  ExprPtr Clone() const override;

  ExprPtr lhs;
  BinaryOp op;  // comparison op
  Quantifier quantifier;
  SelectStmtPtr subquery;
};

/// `$name` — a scalar parameter bound by a chained-query link (Rule 15).
struct ParamExpr : Expr {
  explicit ParamExpr(std::string n) : Expr(ExprKind::kParam), name(std::move(n)) {}
  ExprPtr Clone() const override;

  std::string name;
};

// ---------------------------------------------------------------------------
// Table references and SELECT statements
// ---------------------------------------------------------------------------

enum class TableRefKind { kBase, kDerived, kJoin };
enum class JoinType { kInner, kLeft, kNatural };

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

struct TableRef {
  explicit TableRef(TableRefKind k) : kind(k) {}
  virtual ~TableRef() = default;
  virtual TableRefPtr Clone() const = 0;

  TableRefKind kind;
};

struct BaseTableRef : TableRef {
  BaseTableRef(std::string n, std::string a)
      : TableRef(TableRefKind::kBase), name(std::move(n)), alias(std::move(a)) {}
  TableRefPtr Clone() const override;

  std::string name;
  std::string alias;  // empty if none; binding name is alias-or-name

  const std::string& BindingName() const { return alias.empty() ? name : alias; }
};

struct DerivedTableRef : TableRef {
  DerivedTableRef(SelectStmtPtr q, std::string a);
  ~DerivedTableRef() override;
  TableRefPtr Clone() const override;

  SelectStmtPtr subquery;
  std::string alias;  // required by SQL for derived tables
};

struct JoinTableRef : TableRef {
  JoinTableRef(JoinType t, TableRefPtr l, TableRefPtr r, ExprPtr cond)
      : TableRef(TableRefKind::kJoin),
        join_type(t),
        left(std::move(l)),
        right(std::move(r)),
        condition(std::move(cond)) {}
  TableRefPtr Clone() const override;

  JoinType join_type;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr condition;  // nullptr for NATURAL joins
};

/// One projected output: expression plus optional alias, or `*`.
struct SelectItem {
  ExprPtr expr;        // null iff is_star
  std::string alias;   // empty if none
  bool is_star = false;

  SelectItem Clone() const;
};

struct WithItem {
  std::string name;
  SelectStmtPtr query;

  WithItem Clone() const;
};

/// One ORDER BY key: an output column (by alias/name or 1-based
/// position) plus direction.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// A (possibly nested) SELECT statement. Field order mirrors SQL clause
/// order.
struct SelectStmt {
  SelectStmt() = default;
  SelectStmt(const SelectStmt&) = delete;
  SelectStmt& operator=(const SelectStmt&) = delete;

  SelectStmtPtr Clone() const;

  std::vector<WithItem> with;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRefPtr> from;   // comma list (implicit inner join)
  ExprPtr where;                   // may be null
  std::vector<ExprPtr> group_by;   // column refs
  ExprPtr having;                  // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;              // -1 = no LIMIT
};

// ---------------------------------------------------------------------------
// Rewriter output forms
// ---------------------------------------------------------------------------

/// One link of a chained query (Rule 15): `v := <scalar subquery>`.
struct ChainLink {
  std::string var;
  SelectStmtPtr query;

  ChainLink Clone() const;
};

/// A linear combination of aggregate queries. Rule 7 (inclusion–exclusion)
/// expands OR-filters into +1/-1 weighted AND-only queries.
struct QueryCombination {
  struct Term {
    double coeff = 1.0;
    SelectStmtPtr query;

    Term Clone() const;
  };
  std::vector<Term> terms;

  QueryCombination Clone() const;
};

/// Full output of the rewrite pipeline: chained scalar links feeding a
/// linear combination of AND-only, subquery-free aggregate queries.
struct RewrittenQuery {
  std::vector<ChainLink> chain;
  QueryCombination combination;

  RewrittenQuery Clone() const;
};

// Convenience constructors --------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeIntLiteral(int64_t v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeAnd(ExprPtr l, ExprPtr r);   // returns the other side if one null
ExprPtr MakeOr(ExprPtr l, ExprPtr r);
ExprPtr MakeNot(ExprPtr e);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     bool distinct = false);

/// Tree height and node count of a parsed statement. Computed with an
/// explicit work stack (never recursion), so a tree too deep for the
/// machine stack can still be measured safely — this is what lets the
/// parser enforce ResourceLimits::max_ast_depth on left-deep AND/OR
/// chains that it builds iteratively.
struct AstStats {
  size_t depth = 0;  // max nesting over expressions, refs and subqueries
  size_t nodes = 0;  // total Expr + TableRef + SelectStmt nodes
};
AstStats ComputeAstStats(const SelectStmt& stmt);

/// Splits a predicate into its top-level AND conjuncts (flattens nested
/// ANDs). A null input produces an empty vector.
std::vector<const Expr*> CollectConjuncts(const Expr* e);

/// Rebuilds a conjunction from clones of `conjuncts` (null if empty).
ExprPtr ConjunctionOf(const std::vector<const Expr*>& conjuncts);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_AST_H_
