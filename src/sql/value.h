#ifndef VIEWREWRITE_SQL_VALUE_H_
#define VIEWREWRITE_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

/// Column data types supported by the engine.
enum class DataType {
  kNull,
  kInt,
  kDouble,
  kString,
};

const char* DataTypeName(DataType type);

/// A single SQL scalar: NULL, 64-bit integer, double, or string.
///
/// Values use SQL semantics for comparisons against NULL (unknown), which
/// callers express via the tri-state helpers below. `operator==` /
/// `operator<` implement a *total* order (NULL first, then numerics by
/// value, then strings) so Values can key hash maps and be sorted;
/// SQL-comparison helpers are separate.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.repr_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.repr_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.repr_ = std::move(v);
    return out;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const;

  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDoubleExact() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric value as double (int widened). Requires is_numeric().
  double ToDouble() const;

  /// Renders the value as a SQL literal ("NULL", 42, 1.5, 'abc').
  std::string ToString() const;

  /// Total order for container use; NULL < numbers < strings.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// SQL three-valued comparison. Returns error on type mismatch
  /// (string vs number). Result is NULL if either side is NULL.
  /// cmp < 0, == 0, > 0 like strcmp, wrapped in a nullable.
  struct TriCompare {
    bool is_null = false;
    int cmp = 0;
  };
  Result<TriCompare> CompareSql(const Value& other) const;

  /// Hash consistent with the total order equality.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// Hash functor for containers keyed on Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash functor for vector<Value> keys (group-by keys, synopsis cells).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SQL_VALUE_H_
