#include "view/cell_eval.h"

#include <cmath>

namespace viewrewrite {

namespace {

enum class Tri { kFalse, kTrue, kNull };

Tri ToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_numeric()) return v.ToDouble() != 0 ? Tri::kTrue : Tri::kFalse;
  return v.AsString().empty() ? Tri::kFalse : Tri::kTrue;
}

Value FromTri(Tri t) {
  switch (t) {
    case Tri::kTrue: return Value::Int(1);
    case Tri::kFalse: return Value::Int(0);
    case Tri::kNull: return Value::Null();
  }
  return Value::Null();
}

}  // namespace

Result<Value> EvalCellExpr(const Expr& e, const CellContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value;
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      auto it = ctx.attr_values.find(c.FullName());
      if (it != ctx.attr_values.end()) return it->second;
      // Qualified miss: try the bare column (merged-view remaps can leave
      // either form); unqualified miss: no fallback.
      if (!c.table.empty()) {
        it = ctx.attr_values.find(c.column);
        if (it != ctx.attr_values.end()) return it->second;
      }
      return Status::NotFound("cell context has no attribute '" +
                              c.FullName() + "'");
    }
    case ExprKind::kParam: {
      const auto& p = static_cast<const ParamExpr&>(e);
      auto it = ctx.params.find(p.name);
      if (it == ctx.params.end()) {
        return Status::NotFound("unbound parameter '$" + p.name + "'");
      }
      return it->second;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
        VR_ASSIGN_OR_RETURN(Value lv, EvalCellExpr(*b.left, ctx));
        VR_ASSIGN_OR_RETURN(Value rv, EvalCellExpr(*b.right, ctx));
        Tri l = ToTri(lv);
        Tri r = ToTri(rv);
        if (b.op == BinaryOp::kAnd) {
          if (l == Tri::kFalse || r == Tri::kFalse) return FromTri(Tri::kFalse);
          if (l == Tri::kNull || r == Tri::kNull) return FromTri(Tri::kNull);
          return FromTri(Tri::kTrue);
        }
        if (l == Tri::kTrue || r == Tri::kTrue) return FromTri(Tri::kTrue);
        if (l == Tri::kNull || r == Tri::kNull) return FromTri(Tri::kNull);
        return FromTri(Tri::kFalse);
      }
      VR_ASSIGN_OR_RETURN(Value l, EvalCellExpr(*b.left, ctx));
      VR_ASSIGN_OR_RETURN(Value r, EvalCellExpr(*b.right, ctx));
      if (IsComparisonOp(b.op)) {
        VR_ASSIGN_OR_RETURN(Value::TriCompare c, l.CompareSql(r));
        if (c.is_null) return Value::Null();
        bool res = false;
        switch (b.op) {
          case BinaryOp::kEq: res = c.cmp == 0; break;
          case BinaryOp::kNe: res = c.cmp != 0; break;
          case BinaryOp::kLt: res = c.cmp < 0; break;
          case BinaryOp::kLe: res = c.cmp <= 0; break;
          case BinaryOp::kGt: res = c.cmp > 0; break;
          case BinaryOp::kGe: res = c.cmp >= 0; break;
          default: break;
        }
        return Value::Int(res ? 1 : 0);
      }
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::TypeMismatch("cell arithmetic on non-numeric values");
      }
      double a = l.ToDouble();
      double b2 = r.ToDouble();
      switch (b.op) {
        case BinaryOp::kAdd: return Value::Double(a + b2);
        case BinaryOp::kSub: return Value::Double(a - b2);
        case BinaryOp::kMul: return Value::Double(a * b2);
        case BinaryOp::kDiv:
          if (b2 == 0) return Status::ExecutionError("cell division by zero");
          return Value::Double(a / b2);
        default:
          return Status::Internal("unhandled cell binary op");
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(*u.operand, ctx));
      if (u.op == UnaryOp::kNot) {
        Tri t = ToTri(v);
        if (t == Tri::kNull) return Value::Null();
        return Value::Int(t == Tri::kTrue ? 0 : 1);
      }
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Double(-v.AsDoubleExact());
      return Status::TypeMismatch("negating non-numeric cell value");
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(e);
      if (f.name == "coalesce") {
        for (const auto& a : f.args) {
          VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(*a, ctx));
          if (!v.is_null()) return v;
        }
        return Value::Null();
      }
      if (f.name == "isnull" || f.name == "isnotnull") {
        VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(*f.args[0], ctx));
        return Value::Int((f.name == "isnull") == v.is_null() ? 1 : 0);
      }
      if (f.name == "ifpos") {
        VR_ASSIGN_OR_RETURN(Value cond, EvalCellExpr(*f.args[0], ctx));
        if (ToTri(cond) != Tri::kTrue) return Value::Null();
        return EvalCellExpr(*f.args[1], ctx);
      }
      if (f.name == "abs") {
        VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(*f.args[0], ctx));
        if (v.is_null()) return Value::Null();
        return Value::Double(std::fabs(v.ToDouble()));
      }
      return Status::Unsupported("cell function '" + f.name + "'");
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const InExpr&>(e);
      if (in.subquery) {
        return Status::Unsupported("cell IN over a subquery (not rewritten?)");
      }
      VR_ASSIGN_OR_RETURN(Value lhs, EvalCellExpr(*in.lhs, ctx));
      if (lhs.is_null()) return Value::Null();
      bool any_null = false;
      for (const auto& item : in.value_list) {
        VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(*item, ctx));
        if (v.is_null()) {
          any_null = true;
          continue;
        }
        VR_ASSIGN_OR_RETURN(Value::TriCompare c, lhs.CompareSql(v));
        if (!c.is_null && c.cmp == 0) {
          return Value::Int(in.negated ? 0 : 1);
        }
      }
      if (any_null) return Value::Null();
      return Value::Int(in.negated ? 1 : 0);
    }
    default:
      return Status::Unsupported(
          "cell evaluation of subquery expression (not rewritten?)");
  }
}

Result<bool> EvalCellPredicate(const Expr& e, const CellContext& ctx) {
  VR_ASSIGN_OR_RETURN(Value v, EvalCellExpr(e, ctx));
  return ToTri(v) == Tri::kTrue;
}

}  // namespace viewrewrite
