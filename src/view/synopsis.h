#ifndef VIEWREWRITE_VIEW_SYNOPSIS_H_
#define VIEWREWRITE_VIEW_SYNOPSIS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aggregate/grouped_result.h"
#include "catalog/schema.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/matrix_mechanism.h"
#include "exec/executor.h"
#include "storage/table.h"
#include "view/view_def.h"

namespace viewrewrite {

struct SynopsisOptions {
  /// Fractions of the per-view budget spent on the two truncation steps
  /// (noisy pivot Q̂ and SVT); the rest publishes the histograms.
  double trunc_pivot_frac = 0.05;
  double trunc_svt_frac = 0.05;
  MatrixStrategy strategy = MatrixStrategy::kIdentity;
  /// Hard cap on histogram cells per view.
  size_t max_cells = size_t{1} << 21;
  DomainOptions domain;
};

struct SynopsisParts;

/// A differentially private synopsis of one view: noisy contingency tables
/// (one per measure) over the view's attribute grid, published via the
/// §9 pipeline — materialize, pick truncation threshold τ (DLS + SVT),
/// truncate per protected key, add matrix-mechanism noise.
///
/// Thread safety: once built (or reconstructed), a Synopsis is immutable.
/// All const members — AnswerScalar, AnswerScalarExact, AnswerGrouped,
/// stats, ExactCells — only read the published arrays and build local
/// state, so any number of threads may answer queries from one Synopsis
/// concurrently with no external locking. The serve layer's QueryServer
/// relies on this contract.
class Synopsis {
 public:
  struct BuildStats {
    int64_t tau = 1;
    double dls = 0;
    size_t materialized_rows = 0;
    size_t truncated_rows = 0;
    size_t cells = 0;
    double epsilon = 0;
  };

  /// Materializes and publishes the view under `epsilon` (the view's slice
  /// of the total budget). Deterministic given `rng`.
  static Result<Synopsis> Build(const ViewDef& view, const Database& db,
                                const PrivacyPolicy& policy, double epsilon,
                                const SynopsisOptions& options, Random* rng);

  /// Answers a scalar aggregate `query` whose FROM matches this view:
  /// evaluates the WHERE against every cell's representative values and
  /// totals the matching noisy measure cells. Supports COUNT, SUM(expr)
  /// (for registered measure expressions), MIN/MAX/AVG(col) (estimated
  /// from the histograms over col's dimension), and arithmetic around
  /// aggregate calls.
  Result<double> AnswerScalar(const SelectStmt& query,
                              const ParamMap& params) const;

  /// Same as AnswerScalar but over the exact (pre-noise, pre-truncation-
  /// noise) cell totals. Benchmarks use it as ground truth: the paper's
  /// systems answer workload queries exactly from view tuples, so the
  /// reported error isolates the DP noise.
  Result<double> AnswerScalarExact(const SelectStmt& query,
                                   const ParamMap& params) const;

  /// Answers a grouped aggregate (GROUP BY over view attributes): one
  /// output row per group cell, keyed by the cell representative, with
  /// the noisy aggregate per group. This is the private histogram release
  /// for workloads that want per-group results instead of one scalar.
  /// Derived aggregates (AVG, VARIANCE, STDDEV) combine published
  /// measures per the planner; a HAVING clause is evaluated over the
  /// noisy per-group aggregates (pure post-processing) and filters the
  /// rows. Every row carries the group's noisy count for the serve
  /// layer's suppression rule.
  Result<aggregate::GroupedData> AnswerGroupedData(const SelectStmt& query,
                                                   const ParamMap& params,
                                                   bool use_exact = false)
      const;

  /// Flattened convenience wrapper around AnswerGroupedData.
  Result<ResultSet> AnswerGrouped(const SelectStmt& query,
                                  const ParamMap& params,
                                  bool use_exact = false) const;

  const BuildStats& stats() const { return stats_; }
  const ViewDef& view() const { return *view_; }

  /// Exact (pre-noise) cell totals, for tests only.
  const std::vector<double>& ExactCells(const std::string& measure_key) const;

  /// Serialization-friendly snapshot of the published state (deep copy,
  /// no view pointer). The serve layer persists these parts.
  SynopsisParts ToParts() const;

  /// Rebuilds a synopsis from persisted parts, bound to `view` (which the
  /// caller owns and must keep alive). Validates that the parts are
  /// consistent with the view's attribute grid — a corrupted or drifted
  /// bundle yields a Corruption status, never an out-of-bounds answer.
  static Result<Synopsis> FromParts(const ViewDef* view, SynopsisParts parts);

 private:
  Synopsis() = default;

  /// Representative value of dimension `dim` at cell index `idx`
  /// (the extra index == CellCount() is the NULL/other cell).
  Value Representative(size_t dim, int64_t idx) const;

  int64_t CellOf(size_t dim, const Value& v) const;

  /// Mixed-radix flattening over (CellCount()+1) per dimension.
  size_t FlatIndex(const std::vector<int64_t>& cell) const;

  Result<double> AnswerScalarImpl(const SelectStmt& query,
                                  const ParamMap& params,
                                  bool use_exact) const;

  /// Answers one aggregate call over the cells matching `where` by
  /// combining published measures per its AggregatePlan (the shared
  /// engine behind both the scalar and the grouped answer paths).
  Result<double> AnswerAggCall(const FuncCallExpr& agg, const Expr* where,
                               const ParamMap& params, bool use_exact) const;

  Result<double> SumMatchingCells(const std::vector<double>& array,
                                  const Expr* where,
                                  const ParamMap& params) const;

  Result<double> EstimateExtremum(const std::string& column, bool is_max,
                                  const Expr* where, const ParamMap& params,
                                  bool use_exact) const;

  /// Attempts to answer a 1-D COUNT via the hierarchical tree: succeeds
  /// when the per-dimension mask is one contiguous value range (no NULL
  /// cell), the case range decomposition accelerates.
  Result<std::optional<double>> TryHierarchicalCount(
      const Expr* where, const ParamMap& params) const;

  const ViewDef* view_ = nullptr;  // owned by the ViewManager
  std::vector<int64_t> dim_sizes_;  // CellCount()+1 per attribute
  /// Hierarchical release of the count histogram (1-D views under
  /// MatrixStrategy::kHierarchical only).
  std::optional<HierarchicalHistogram> hier_count_;
  size_t total_cells_ = 1;
  // measure key -> noisy / exact cell arrays (count first).
  std::map<std::string, std::vector<double>> noisy_;
  std::map<std::string, std::vector<double>> exact_;
  double count_noise_scale_ = 0;
  BuildStats stats_;
};

/// The decomposed state of one published synopsis: everything Save needs
/// to write and FromParts needs to rebuild answering, minus the ViewDef
/// binding (persisted separately, re-bound on load).
struct SynopsisParts {
  std::vector<int64_t> dim_sizes;
  size_t total_cells = 1;
  std::map<std::string, std::vector<double>> noisy;
  std::map<std::string, std::vector<double>> exact;
  double count_noise_scale = 0;
  Synopsis::BuildStats stats;
  std::optional<HierarchicalHistogram> hier_count;
};

/// Finds (or synthesizes by FK-path augmentation) an expression that
/// identifies the protected individual for every row of the view's join.
/// May append path tables and join predicates to `mat_stmt`. Returns
/// nullptr when no relation of the view holds or references protected
/// data — such a view is invariant across neighboring databases
/// (sensitivity 0) and can be published without noise.
Result<ExprPtr> ResolvePrivacyKey(SelectStmt* mat_stmt, const Schema& schema,
                                  const PrivacyPolicy& policy);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_VIEW_SYNOPSIS_H_
