#ifndef VIEWREWRITE_VIEW_VIEW_MATCHER_H_
#define VIEWREWRITE_VIEW_VIEW_MATCHER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "view/view_def.h"

namespace viewrewrite {

/// Decides, per WHERE conjunct, whether the predicate becomes part of the
/// view definition (baked, evaluated at materialization) instead of a
/// cell-level filter. Pass nullptr to bake nothing. Shared by register-time
/// view generation (ViewManager) and serve-time matching (SynopsisStore).
using BakePredicate = std::function<bool(const Expr&)>;

/// The view-relevant shape of one scalar aggregate query: its view
/// signature, the split of its WHERE into baked and cell conjuncts, and
/// the attributes/measures the answering view must carry.
///
/// This is the single matcher both sides of the system use. At
/// registration time the shape says what to *add* to the (possibly new)
/// view; at serve time it says what a *loaded* view must already have for
/// the query to be answerable. Keeping one analysis guarantees a query
/// that registered against a view also matches it after a save/load
/// round trip.
struct ScalarQueryShape {
  /// View identity: canonical FROM rendering plus baked predicates.
  std::string signature;

  /// Conjunction of baked (view-defining) predicates; null if none.
  ExprPtr baked_where;

  /// Non-baked conjuncts, evaluated against synopsis cells at answer
  /// time. Pointers into the analyzed query: the query must outlive the
  /// shape (both callers analyze and bind in one scope).
  std::vector<const Expr*> cell_conjuncts;

  /// Columns the cell conjuncts reference; each must be a view attribute.
  struct AttributeRef {
    std::string table;
    std::string column;
  };
  std::vector<AttributeRef> attributes;

  /// What the aggregate item needs from the synopsis.
  struct MeasureNeed {
    enum class Kind {
      kCount,     // count histogram (always published)
      kSum,       // SUM(expr) / AVG(expr) cell totals
      kExtremum,  // MIN/MAX(col): col must be a view dimension
    };
    Kind kind = Kind::kCount;
    ExprPtr expr;       // kSum: the summed expression
    std::string key;    // kSum: canonical measure key ("sum:<expr>")
    std::string table;  // kExtremum: the dimension column
    std::string column;
  };
  std::vector<MeasureNeed> measures;
};

/// Analyzes one scalar aggregate query (a combination term or chain link)
/// into its view shape. Fails with a typed Status when the query is not a
/// single-aggregate scalar (InvalidArgument) or uses an unsupported
/// aggregate form (Unsupported).
Result<ScalarQueryShape> AnalyzeScalarQuery(const SelectStmt& query,
                                            const BakePredicate& bake);

/// The view-relevant shape of a grouped aggregate query: the scalar shape
/// (signature, conjunct split, WHERE attributes, measures for every
/// aggregate in the select list *and* in HAVING, via the derived-measure
/// planner) plus the group-by columns, which must also be view
/// dimensions. Shared by RegisterGrouped and serve-time BindGrouped so a
/// grouped query that registered also matches after a save/load round
/// trip.
struct GroupedQueryShape {
  ScalarQueryShape base;
  std::vector<ScalarQueryShape::AttributeRef> group_columns;
};

/// Analyzes one grouped aggregate query (non-empty GROUP BY; HAVING
/// allowed — it is evaluated post-noise at answer time). Select items
/// must be group-column refs or aggregate expressions.
Result<GroupedQueryShape> AnalyzeGroupedQuery(const SelectStmt& query,
                                              const BakePredicate& bake);

/// Collects the aggregate function calls inside `e` (skipping into
/// arithmetic and scalar-function arguments, not into aggregate
/// arguments). Shared by registration, matching and answering so all
/// three agree on what counts as "an aggregate of this query".
void CollectAggregateCalls(const Expr* e,
                           std::vector<const FuncCallExpr*>* out);

/// Serve-time check that `view` can answer a query of this shape: every
/// required attribute is a view dimension and every required measure was
/// published. Returns NotFound naming the first missing piece.
Status MatchShapeToView(const ScalarQueryShape& shape, const ViewDef& view);

/// Builds the bound cell query for `shape`: the original aggregate item
/// plus the conjunction of cell-level conjuncts.
SelectStmtPtr MakeCellQuery(const SelectStmt& query,
                            const ScalarQueryShape& shape);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_VIEW_VIEW_MATCHER_H_
