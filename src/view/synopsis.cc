#include "view/synopsis.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>

#include "aggregate/aggregate_planner.h"
#include "common/limits.h"
#include "dp/truncation.h"
#include "rewrite/analysis.h"
#include "sql/printer.h"
#include "view/cell_eval.h"

namespace viewrewrite {

namespace {

constexpr const char* kKeyAlias = "__pk";

void CollectBaseLeaves(const TableRef& ref,
                       std::vector<const BaseTableRef*>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      out->push_back(static_cast<const BaseTableRef*>(&ref));
      return;
    case TableRefKind::kDerived:
      return;
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      CollectBaseLeaves(*j.left, out);
      CollectBaseLeaves(*j.right, out);
      return;
    }
  }
}

void CollectDerivedLeaves(const TableRef& ref,
                          std::vector<const DerivedTableRef*>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      return;
    case TableRefKind::kDerived:
      out->push_back(static_cast<const DerivedTableRef*>(&ref));
      return;
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      CollectDerivedLeaves(*j.left, out);
      CollectDerivedLeaves(*j.right, out);
      return;
    }
  }
}

std::string ItemOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).column;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return static_cast<const FuncCallExpr&>(*item.expr).name;
  }
  return "expr";
}

/// True if the reference (recursively, through derived bodies) contains a
/// base table that is, or references, the primary privacy relation.
bool TouchesPrivacyRelation(const TableRef& ref, const Schema& schema,
                            const PrivacyPolicy& policy) {
  switch (ref.kind) {
    case TableRefKind::kBase: {
      const auto& b = static_cast<const BaseTableRef&>(ref);
      return b.name == policy.primary_relation ||
             schema.References(b.name, policy.primary_relation);
    }
    case TableRefKind::kDerived: {
      const auto& d = static_cast<const DerivedTableRef&>(ref);
      for (const auto& f : d.subquery->from) {
        if (TouchesPrivacyRelation(*f, schema, policy)) return true;
      }
      return false;
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      return TouchesPrivacyRelation(*j.left, schema, policy) ||
             TouchesPrivacyRelation(*j.right, schema, policy);
    }
  }
  return false;
}

}  // namespace

Result<ExprPtr> ResolvePrivacyKey(SelectStmt* mat_stmt, const Schema& schema,
                                  const PrivacyPolicy& policy) {
  VR_ASSIGN_OR_RETURN(const TableSchema* primary,
                      schema.GetTable(policy.primary_relation));

  std::vector<const BaseTableRef*> leaves;
  for (const auto& f : mat_stmt->from) CollectBaseLeaves(*f, &leaves);

  // Case 1: the primary privacy relation participates directly.
  for (const BaseTableRef* leaf : leaves) {
    if (leaf->name == policy.primary_relation) {
      return MakeColumnRef(leaf->BindingName(), primary->primary_key());
    }
  }

  // Case 2: a participating relation references R_P through foreign keys;
  // augment the materialization with the N:1 path joins (row-preserving).
  for (const BaseTableRef* leaf : leaves) {
    // BFS over the FK graph from leaf->name to the primary relation.
    std::map<std::string, std::pair<std::string, const ForeignKey*>> pred;
    std::deque<std::string> queue = {leaf->name};
    pred[leaf->name] = {"", nullptr};
    bool found = false;
    while (!queue.empty() && !found) {
      std::string cur = queue.front();
      queue.pop_front();
      const TableSchema* t = schema.FindTable(cur);
      if (t == nullptr) continue;
      for (const ForeignKey& fk : t->foreign_keys()) {
        if (pred.count(fk.ref_table) > 0) continue;
        pred[fk.ref_table] = {cur, &fk};
        if (fk.ref_table == policy.primary_relation) {
          found = true;
          break;
        }
        queue.push_back(fk.ref_table);
      }
    }
    if (!found) continue;
    // Reconstruct the hop sequence leaf -> ... -> primary.
    std::vector<const ForeignKey*> hops;
    std::string cur = policy.primary_relation;
    while (cur != leaf->name) {
      auto& [prev, fk] = pred[cur];
      hops.push_back(fk);
      cur = prev;
    }
    std::reverse(hops.begin(), hops.end());
    std::string binding = leaf->BindingName();
    int idx = 0;
    for (const ForeignKey* fk : hops) {
      VR_ASSIGN_OR_RETURN(const TableSchema* ref_schema,
                          schema.GetTable(fk->ref_table));
      (void)ref_schema;
      std::string alias = "__pp" + std::to_string(idx++);
      mat_stmt->from.push_back(
          std::make_unique<BaseTableRef>(fk->ref_table, alias));
      mat_stmt->where = MakeAnd(
          std::move(mat_stmt->where),
          MakeBinary(BinaryOp::kEq, MakeColumnRef(binding, fk->column),
                     MakeColumnRef(alias, fk->ref_column)));
      binding = alias;
    }
    return MakeColumnRef(binding, primary->primary_key());
  }

  // Case 3: protected data reaches the view only through an aggregated
  // derived table. Use that table's grouping key (its first output) as a
  // surrogate individual id — a documented approximation of lineage
  // through aggregation.
  std::vector<const DerivedTableRef*> derived;
  for (const auto& f : mat_stmt->from) CollectDerivedLeaves(*f, &derived);
  for (const DerivedTableRef* d : derived) {
    if (!TouchesPrivacyRelation(*d, schema, policy)) continue;
    if (!d->subquery->items.empty() && !d->subquery->items[0].is_star) {
      return MakeColumnRef(d->alias, ItemOutputName(d->subquery->items[0]));
    }
  }
  // No participating relation holds or references R_P: neighboring
  // databases agree on every row of this view, so it is insensitive.
  return ExprPtr(nullptr);
}

Result<Synopsis> Synopsis::Build(const ViewDef& view, const Database& db,
                                 const PrivacyPolicy& policy, double epsilon,
                                 const SynopsisOptions& options, Random* rng) {
  if (epsilon <= 0) {
    return Status::PrivacyError("synopsis requires a positive budget");
  }
  Synopsis s;
  s.view_ = &view;

  // ---- Dimension grid. ----------------------------------------------------
  // Checked multiply: with hostile domains the running product can wrap
  // uint64 (e.g. two ~2^33-bucket dimensions) and sneak under max_cells,
  // so the overflow itself must trip the budget check.
  uint64_t total = 1;
  for (const ViewAttribute& a : view.attributes()) {
    int64_t size = a.domain.CellCount() + 1;  // + NULL/other cell
    s.dim_sizes_.push_back(size);
    if (!CheckedMulU64(total, static_cast<uint64_t>(size), &total) ||
        total > options.max_cells) {
      return Status::InvalidArgument("view '" + view.signature() +
                                     "' exceeds the synopsis cell budget");
    }
  }
  s.total_cells_ = static_cast<size_t>(total);

  // ---- Materialization statement. -----------------------------------------
  auto mat = std::make_unique<SelectStmt>();
  for (const auto& f : view.from_template().from) mat->from.push_back(f->Clone());
  mat->where = view.from_template().where
                   ? view.from_template().where->Clone()
                   : nullptr;
  for (size_t i = 0; i < view.attributes().size(); ++i) {
    const ViewAttribute& a = view.attributes()[i];
    SelectItem item;
    item.expr = MakeColumnRef(a.table, a.column);
    item.alias = "a" + std::to_string(i);
    mat->items.push_back(std::move(item));
  }
  std::vector<std::string> sum_keys;
  for (const ViewMeasure& m : view.measures()) {
    if (m.kind != ViewMeasure::Kind::kSum) continue;
    SelectItem item;
    item.expr = m.expr->Clone();
    item.alias = "m" + std::to_string(sum_keys.size());
    mat->items.push_back(std::move(item));
    sum_keys.push_back(m.key);
  }
  VR_ASSIGN_OR_RETURN(ExprPtr key_expr,
                      ResolvePrivacyKey(mat.get(), db.schema(), policy));
  const bool insensitive = (key_expr == nullptr);
  if (insensitive) {
    // The view never touches protected data; a constant key makes the
    // truncation machinery a no-op and sensitivity-0 noise exact.
    key_expr = MakeIntLiteral(0);
  }
  {
    SelectItem item;
    item.expr = std::move(key_expr);
    item.alias = kKeyAlias;
    mat->items.push_back(std::move(item));
  }

  Executor executor(db);
  VR_ASSIGN_OR_RETURN(ResultSet rs, executor.Execute(*mat));
  s.stats_.materialized_rows = rs.NumRows();

  const size_t n_attrs = view.attributes().size();
  const size_t n_sums = sum_keys.size();
  const size_t key_col = n_attrs + n_sums;

  // ---- Truncation threshold (DLS + SVT, §9). -------------------------------
  std::unordered_map<Value, int64_t, ValueHash> per_key;
  for (const Row& row : rs.rows) ++per_key[row[key_col]];
  std::vector<double> contributions;
  contributions.reserve(per_key.size());
  for (const auto& [k, c] : per_key) {
    (void)k;
    contributions.push_back(static_cast<double>(c));
  }
  const double eps_pivot = epsilon * options.trunc_pivot_frac;
  const double eps_svt = epsilon * options.trunc_svt_frac;
  int64_t tau = 1;
  if (insensitive) {
    // All rows share the constant key; keep every row.
    tau = static_cast<int64_t>(rs.NumRows()) + 1;
  } else {
    VR_ASSIGN_OR_RETURN(
        tau, SelectTruncationThreshold(contributions, eps_pivot, eps_svt,
                                       rng));
  }
  s.stats_.tau = tau;
  s.stats_.dls = DownwardLocalSensitivity(contributions);
  s.stats_.epsilon = epsilon;

  // ---- Truncate and histogram. ---------------------------------------------
  std::vector<double> count_cells(s.total_cells_, 0.0);
  std::vector<std::vector<double>> sum_cells(
      n_sums, std::vector<double>(s.total_cells_, 0.0));

  std::unordered_map<Value, int64_t, ValueHash> kept;
  std::vector<int64_t> cell(n_attrs, 0);
  size_t kept_rows = 0;
  for (const Row& row : rs.rows) {
    int64_t& used = kept[row[key_col]];
    if (used >= tau) continue;
    ++used;
    ++kept_rows;
    for (size_t i = 0; i < n_attrs; ++i) cell[i] = s.CellOf(i, row[i]);
    size_t flat = s.FlatIndex(cell);
    count_cells[flat] += 1.0;
    for (size_t m = 0; m < n_sums; ++m) {
      const Value& v = row[n_attrs + m];
      if (!v.is_null() && v.is_numeric()) {
        sum_cells[m][flat] += v.ToDouble();
      }
    }
  }
  s.stats_.truncated_rows = kept_rows;
  s.stats_.cells = s.total_cells_;

  // ---- Publish with the matrix mechanism (identity strategy). --------------
  const double eps_hist =
      epsilon * (1.0 - options.trunc_pivot_frac - options.trunc_svt_frac);
  const double eps_each = eps_hist / static_cast<double>(1 + n_sums);

  const double count_sensitivity = insensitive ? 0.0 : static_cast<double>(tau);
  if (options.strategy == MatrixStrategy::kHierarchical && n_attrs == 1 &&
      view.attributes()[0].domain.kind == ColumnDomain::Kind::kIntBuckets) {
    // One-dimensional ordered domain: a binary-tree release answers the
    // workload's range predicates with O(log n) noisy nodes.
    VR_ASSIGN_OR_RETURN(HierarchicalHistogram h,
                        HierarchicalHistogram::Publish(
                            count_cells, count_sensitivity, eps_each, rng));
    s.hier_count_ = std::move(h);
  }
  VR_ASSIGN_OR_RETURN(
      std::vector<double> noisy_count,
      PublishIdentity(count_cells, count_sensitivity, eps_each, rng));
  s.count_noise_scale_ = count_sensitivity / eps_each;
  s.exact_["count"] = std::move(count_cells);
  s.noisy_["count"] = std::move(noisy_count);

  for (size_t m = 0; m < n_sums; ++m) {
    double bound = 1.0;
    int mi = view.MeasureIndex(sum_keys[m]);
    if (mi >= 0) bound = view.measures()[mi].value_bound;
    VR_ASSIGN_OR_RETURN(
        std::vector<double> noisy,
        PublishIdentity(sum_cells[m], count_sensitivity * bound, eps_each,
                        rng));
    s.exact_[sum_keys[m]] = std::move(sum_cells[m]);
    s.noisy_[sum_keys[m]] = std::move(noisy);
  }
  return s;
}

Value Synopsis::Representative(size_t dim, int64_t idx) const {
  const ColumnDomain& d = view_->attributes()[dim].domain;
  if (idx >= d.CellCount()) return Value::Null();
  if (d.kind == ColumnDomain::Kind::kCategorical) {
    return d.categories[static_cast<size_t>(idx)];
  }
  auto [lo, hi] = d.BucketBounds(idx);
  // Continuous convention: the bucket covers [lo, hi + 1).
  return Value::Double((static_cast<double>(lo) + static_cast<double>(hi) +
                        1.0) /
                       2.0);
}

int64_t Synopsis::CellOf(size_t dim, const Value& v) const {
  const ColumnDomain& d = view_->attributes()[dim].domain;
  if (v.is_null()) return d.CellCount();
  int64_t idx = d.CellIndex(v);
  if (idx < 0) return d.CellCount();  // unseen category -> "other" cell
  return idx;
}

size_t Synopsis::FlatIndex(const std::vector<int64_t>& cell) const {
  size_t flat = 0;
  for (size_t i = 0; i < cell.size(); ++i) {
    flat = flat * static_cast<size_t>(dim_sizes_[i]) +
           static_cast<size_t>(cell[i]);
  }
  return flat;
}

const std::vector<double>& Synopsis::ExactCells(
    const std::string& measure_key) const {
  static const std::vector<double>* empty = new std::vector<double>();
  auto it = exact_.find(measure_key);
  return it == exact_.end() ? *empty : it->second;
}

SynopsisParts Synopsis::ToParts() const {
  SynopsisParts parts;
  parts.dim_sizes = dim_sizes_;
  parts.total_cells = total_cells_;
  parts.noisy = noisy_;
  parts.exact = exact_;
  parts.count_noise_scale = count_noise_scale_;
  parts.stats = stats_;
  parts.hier_count = hier_count_;
  return parts;
}

Result<Synopsis> Synopsis::FromParts(const ViewDef* view,
                                     SynopsisParts parts) {
  if (view == nullptr) {
    return Status::InvalidArgument("synopsis parts need a view to bind to");
  }
  // The persisted grid must agree with the view definition it is bound
  // to: one size per attribute, each the domain's cell count plus the
  // NULL/other cell, with the flat arrays sized to the grid product.
  if (parts.dim_sizes.size() != view->attributes().size()) {
    return Status::Corruption(
        "synopsis dimension count does not match view '" +
        view->signature() + "'");
  }
  uint64_t product = 1;
  for (size_t i = 0; i < parts.dim_sizes.size(); ++i) {
    const int64_t expect = view->attributes()[i].domain.CellCount() + 1;
    if (parts.dim_sizes[i] != expect) {
      return Status::Corruption("synopsis dimension " + std::to_string(i) +
                                " size mismatch for view '" +
                                view->signature() + "'");
    }
    if (!CheckedMulU64(product, static_cast<uint64_t>(parts.dim_sizes[i]),
                       &product)) {
      return Status::Corruption("synopsis cell grid overflows for view '" +
                                view->signature() + "'");
    }
  }
  if (parts.total_cells != product) {
    return Status::Corruption("synopsis cell total mismatch for view '" +
                              view->signature() + "'");
  }
  if (parts.noisy.count("count") == 0 || parts.exact.count("count") == 0) {
    return Status::Corruption("synopsis for view '" + view->signature() +
                              "' is missing its count histogram");
  }
  for (const auto* arrays : {&parts.noisy, &parts.exact}) {
    for (const auto& [key, cells] : *arrays) {
      if (cells.size() != parts.total_cells) {
        return Status::Corruption("synopsis array '" + key +
                                  "' has wrong length for view '" +
                                  view->signature() + "'");
      }
    }
  }
  Synopsis s;
  s.view_ = view;
  s.dim_sizes_ = std::move(parts.dim_sizes);
  s.total_cells_ = parts.total_cells;
  s.noisy_ = std::move(parts.noisy);
  s.exact_ = std::move(parts.exact);
  s.count_noise_scale_ = parts.count_noise_scale;
  s.stats_ = parts.stats;
  s.hier_count_ = std::move(parts.hier_count);
  return s;
}

namespace {

/// Dimension references of a conjunct: resolves each column ref against
/// the view attributes. Returns false if some ref is not an attribute.
bool ConjunctDims(const Expr& e, const ViewDef& view, std::set<int>* dims) {
  std::vector<const ColumnRefExpr*> refs;
  CollectColumnRefsShallow(&e, &refs);
  for (const ColumnRefExpr* r : refs) {
    int d = view.AttributeIndex(r->table, r->column);
    if (d < 0) return false;
    dims->insert(d);
  }
  return true;
}

}  // namespace

Result<std::optional<double>> Synopsis::TryHierarchicalCount(
    const Expr* where, const ParamMap& params) const {
  if (!hier_count_.has_value() || view_->attributes().size() != 1) {
    return std::optional<double>();
  }
  const ViewAttribute& attr = view_->attributes()[0];
  // Evaluate every conjunct per cell of the single dimension; the tree
  // helps only when the admitted cells form one contiguous value range
  // that excludes the NULL padding cell.
  std::vector<const Expr*> conjuncts = CollectConjuncts(where);
  const int64_t cells = attr.domain.CellCount();
  int64_t lo = -1, hi = -1;
  bool contiguous = true;
  for (int64_t idx = 0; idx <= cells; ++idx) {
    CellContext ctx;
    for (const auto& [k, v] : params) ctx.params[k] = v;
    Value rep = Representative(0, idx);
    ctx.attr_values[attr.QualifiedName()] = rep;
    ctx.attr_values[attr.column] = rep;
    bool pass = true;
    for (const Expr* c : conjuncts) {
      std::set<int> dims;
      if (!ConjunctDims(*c, *view_, &dims)) {
        return std::optional<double>();  // non-view attribute: bail out
      }
      VR_ASSIGN_OR_RETURN(bool p, EvalCellPredicate(*c, ctx));
      if (!p) {
        pass = false;
        break;
      }
    }
    if (idx == cells) {
      if (pass) return std::optional<double>();  // NULL cell needed
      break;
    }
    if (pass) {
      if (lo < 0) {
        lo = hi = idx;
      } else if (idx == hi + 1) {
        hi = idx;
      } else {
        contiguous = false;
      }
    }
  }
  if (!contiguous || lo < 0) return std::optional<double>();
  VR_ASSIGN_OR_RETURN(double sum, hier_count_->RangeSum(lo, hi));
  return std::optional<double>(sum);
}

Result<double> Synopsis::SumMatchingCells(const std::vector<double>& array,
                                          const Expr* where,
                                          const ParamMap& params) const {
  const size_t n = view_->attributes().size();

  // Classify conjuncts: per-dimension filters get precomputed masks; the
  // rest are evaluated per surviving cell.
  std::vector<const Expr*> conjuncts = CollectConjuncts(where);
  std::vector<std::vector<const Expr*>> dim_conjuncts(n);
  std::vector<const Expr*> general;
  for (const Expr* c : conjuncts) {
    std::set<int> dims;
    if (!ConjunctDims(*c, *view_, &dims)) {
      return Status::ExecutionError(
          "query filter references a non-view attribute: " + ToSql(*c));
    }
    if (dims.size() == 1) {
      dim_conjuncts[static_cast<size_t>(*dims.begin())].push_back(c);
    } else if (dims.empty()) {
      general.push_back(c);  // constant / param-only predicate
    } else {
      general.push_back(c);
    }
  }

  CellContext ctx;
  ctx.params.clear();
  for (const auto& [k, v] : params) ctx.params[k] = v;

  // Constant predicates can zero the whole query (e.g. `$v >= 1`).
  for (auto it = general.begin(); it != general.end();) {
    std::set<int> dims;
    ConjunctDims(**it, *view_, &dims);
    if (dims.empty()) {
      VR_ASSIGN_OR_RETURN(bool pass, EvalCellPredicate(**it, ctx));
      if (!pass) return 0.0;
      it = general.erase(it);
    } else {
      ++it;
    }
  }

  // Per-dimension allowed masks.
  std::vector<std::vector<char>> allowed(n);
  for (size_t d = 0; d < n; ++d) {
    allowed[d].assign(static_cast<size_t>(dim_sizes_[d]), 1);
    if (dim_conjuncts[d].empty()) continue;
    const ViewAttribute& attr = view_->attributes()[d];
    for (int64_t idx = 0; idx < dim_sizes_[d]; ++idx) {
      CellContext dctx;
      dctx.params = ctx.params;
      Value rep = Representative(d, idx);
      dctx.attr_values[attr.QualifiedName()] = rep;
      dctx.attr_values[attr.column] = rep;
      bool ok = true;
      for (const Expr* c : dim_conjuncts[d]) {
        VR_ASSIGN_OR_RETURN(bool pass, EvalCellPredicate(*c, dctx));
        if (!pass) {
          ok = false;
          break;
        }
      }
      allowed[d][static_cast<size_t>(idx)] = ok ? 1 : 0;
    }
  }

  // Enumerate allowed cells. Representatives are precomputed and the
  // cell context is built once with stable map slots, so the per-cell
  // work is pointer assignments — this loop dominates query answering.
  std::vector<std::vector<Value>> reps(n);
  for (size_t d = 0; d < n; ++d) {
    reps[d].reserve(static_cast<size_t>(dim_sizes_[d]));
    for (int64_t idx = 0; idx < dim_sizes_[d]; ++idx) {
      reps[d].push_back(Representative(d, idx));
    }
  }
  CellContext full;
  full.params = ctx.params;
  std::vector<std::pair<Value*, Value*>> slots(n);
  if (!general.empty()) {
    for (size_t i = 0; i < n; ++i) {
      const ViewAttribute& attr = view_->attributes()[i];
      Value* qualified = &full.attr_values[attr.QualifiedName()];
      Value* bare = &full.attr_values[attr.column];
      slots[i] = {qualified, bare};
    }
  }

  double total = 0;
  std::vector<int64_t> cell(n, 0);
  std::function<Status(size_t)> recurse = [&](size_t d) -> Status {
    if (d == n) {
      if (!general.empty()) {
        for (const Expr* c : general) {
          VR_ASSIGN_OR_RETURN(bool pass, EvalCellPredicate(*c, full));
          if (!pass) return Status::OK();
        }
      }
      total += array[FlatIndex(cell)];
      return Status::OK();
    }
    for (int64_t idx = 0; idx < dim_sizes_[d]; ++idx) {
      if (!allowed[d][static_cast<size_t>(idx)]) continue;
      cell[d] = idx;
      if (!general.empty()) {
        const Value& rep = reps[d][static_cast<size_t>(idx)];
        *slots[d].first = rep;
        *slots[d].second = rep;
      }
      VR_RETURN_NOT_OK(recurse(d + 1));
    }
    return Status::OK();
  };
  if (n == 0) {
    total = array.empty() ? 0.0 : array[0];
    if (!general.empty()) {
      return Status::ExecutionError("filter on a zero-dimensional view");
    }
  } else {
    VR_RETURN_NOT_OK(recurse(0));
  }
  return total;
}

Result<double> Synopsis::EstimateExtremum(const std::string& column,
                                          bool is_max, const Expr* where,
                                          const ParamMap& params,
                                          bool use_exact) const {
  const auto& arrays = use_exact ? exact_ : noisy_;
  int dim = -1;
  for (size_t i = 0; i < view_->attributes().size(); ++i) {
    if (view_->attributes()[i].column == column) {
      dim = static_cast<int>(i);
      break;
    }
  }
  if (dim < 0) {
    return Status::NotFound("extremum column '" + column +
                            "' is not a view dimension");
  }
  const ViewAttribute& attr = view_->attributes()[static_cast<size_t>(dim)];
  const int64_t cells = attr.domain.CellCount();

  // Noisy count of qualifying rows in each slice of the target dimension
  // (WHERE applied); the noisy extremum is the outermost slice whose
  // count clears the noise floor.
  auto slice_count = [&](int64_t idx) -> Result<double> {
    ExprPtr eq = MakeBinary(
        BinaryOp::kEq, MakeColumnRef(attr.table, attr.column),
        MakeLiteral(Representative(static_cast<size_t>(dim), idx)));
    ExprPtr combined =
        where ? MakeAnd(where->Clone(), std::move(eq)) : std::move(eq);
    return SumMatchingCells(arrays.at("count"), combined.get(), params);
  };
  std::vector<double> counts;
  counts.reserve(static_cast<size_t>(cells));
  for (int64_t idx = 0; idx < cells; ++idx) {
    VR_ASSIGN_OR_RETURN(double c, slice_count(idx));
    counts.push_back(c);
  }
  const double threshold =
      use_exact ? 0.5 : std::max(1.0, 2.0 * count_noise_scale_);
  if (is_max) {
    for (int64_t idx = cells - 1; idx >= 0; --idx) {
      if (counts[static_cast<size_t>(idx)] > threshold) {
        return Representative(static_cast<size_t>(dim), idx).ToDouble();
      }
    }
  } else {
    for (int64_t idx = 0; idx < cells; ++idx) {
      if (counts[static_cast<size_t>(idx)] > threshold) {
        return Representative(static_cast<size_t>(dim), idx).ToDouble();
      }
    }
  }
  // Nothing cleared the noise floor (tiny budgets or an empty selection):
  // fall back to the most plausible slice so answering degrades gracefully
  // instead of failing.
  int64_t best = 0;
  for (int64_t idx = 1; idx < cells; ++idx) {
    if (counts[static_cast<size_t>(idx)] > counts[static_cast<size_t>(best)]) {
      best = idx;
    }
  }
  return Representative(static_cast<size_t>(dim), best).ToDouble();
}

namespace {

/// Evaluates an item expression after aggregate calls have been resolved
/// to numbers (keyed by canonical SQL).
Result<double> EvalAggregateExpr(
    const Expr& e, const std::map<std::string, double>& agg_values) {
  auto it = agg_values.find(ToSql(e));
  if (it != agg_values.end()) return it->second;
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value;
      if (!v.is_numeric()) {
        return Status::TypeMismatch("non-numeric literal in aggregate expr");
      }
      return v.ToDouble();
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      VR_ASSIGN_OR_RETURN(double l, EvalAggregateExpr(*b.left, agg_values));
      VR_ASSIGN_OR_RETURN(double r, EvalAggregateExpr(*b.right, agg_values));
      switch (b.op) {
        case BinaryOp::kAdd: return l + r;
        case BinaryOp::kSub: return l - r;
        case BinaryOp::kMul: return l * r;
        case BinaryOp::kDiv:
          if (r == 0) return Status::ExecutionError("division by zero");
          return l / r;
        default:
          return Status::Unsupported("operator in aggregate expression");
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnaryOp::kNeg) {
        VR_ASSIGN_OR_RETURN(double v,
                            EvalAggregateExpr(*u.operand, agg_values));
        return -v;
      }
      return Status::Unsupported("NOT in aggregate expression");
    }
    default:
      return Status::Unsupported("expression around aggregates");
  }
}

void CollectAggCallsForAnswer(const Expr* e,
                              std::vector<const FuncCallExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall) {
    const auto* f = static_cast<const FuncCallExpr*>(e);
    if (f->IsAggregate()) {
      out->push_back(f);
      return;
    }
    for (const auto& a : f->args) CollectAggCallsForAnswer(a.get(), out);
    return;
  }
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    CollectAggCallsForAnswer(b->left.get(), out);
    CollectAggCallsForAnswer(b->right.get(), out);
    return;
  }
  if (e->kind == ExprKind::kUnary) {
    CollectAggCallsForAnswer(static_cast<const UnaryExpr*>(e)->operand.get(),
                             out);
  }
}

}  // namespace

Result<double> Synopsis::AnswerScalar(const SelectStmt& query,
                                      const ParamMap& params) const {
  return AnswerScalarImpl(query, params, /*use_exact=*/false);
}

Result<double> Synopsis::AnswerScalarExact(const SelectStmt& query,
                                           const ParamMap& params) const {
  return AnswerScalarImpl(query, params, /*use_exact=*/true);
}

Result<ResultSet> Synopsis::AnswerGrouped(const SelectStmt& query,
                                          const ParamMap& params,
                                          bool use_exact) const {
  VR_ASSIGN_OR_RETURN(aggregate::GroupedData data,
                      AnswerGroupedData(query, params, use_exact));
  return data.ToResultSet();
}

Result<aggregate::GroupedData> Synopsis::AnswerGroupedData(
    const SelectStmt& query, const ParamMap& params, bool use_exact) const {
  if (query.group_by.empty()) {
    return Status::InvalidArgument("AnswerGrouped requires GROUP BY");
  }
  // Resolve each group-by column to a view dimension.
  std::vector<size_t> group_dims;
  for (const ExprPtr& g : query.group_by) {
    if (g->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("GROUP BY over non-column expressions");
    }
    const auto& ref = static_cast<const ColumnRefExpr&>(*g);
    int dim = view_->AttributeIndex(ref.table, ref.column);
    if (dim < 0) {
      return Status::NotFound("GROUP BY column '" + ref.FullName() +
                              "' is not a view attribute");
    }
    group_dims.push_back(static_cast<size_t>(dim));
  }

  // Output columns: group keys and aggregate items in select-list order.
  aggregate::GroupedData data;
  for (const SelectItem& item : query.items) {
    if (item.is_star || !item.expr) {
      return Status::Unsupported("SELECT * in a grouped synopsis query");
    }
    if (!item.alias.empty()) {
      data.columns.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      data.columns.push_back(
          static_cast<const ColumnRefExpr&>(*item.expr).column);
    } else if (item.expr->kind == ExprKind::kFuncCall) {
      data.columns.push_back(
          static_cast<const FuncCallExpr&>(*item.expr).name);
    } else {
      data.columns.push_back("expr");
    }
    data.is_aggregate.push_back(item.expr->kind != ExprKind::kColumnRef);
  }

  // The synthetic COUNT(*) backing every row's noisy_count.
  std::vector<ExprPtr> star_args;
  star_args.push_back(std::make_unique<StarExpr>());
  const FuncCallExpr count_star("count", std::move(star_args));

  // Enumerate group cells (value cells only; the NULL/other padding cell
  // is not a publishable group key) and answer each slice by pinning the
  // group dimensions with synthetic equality predicates.
  std::vector<int64_t> combo(group_dims.size(), 0);
  std::function<Status(size_t)> recurse = [&](size_t d) -> Status {
    if (d == group_dims.size()) {
      ExprPtr where = query.where ? query.where->Clone() : nullptr;
      // Group-key values, for select items and for HAVING column refs.
      std::map<std::string, Value> group_values;
      for (size_t gi = 0; gi < group_dims.size(); ++gi) {
        const ViewAttribute& attr = view_->attributes()[group_dims[gi]];
        Value rep = Representative(group_dims[gi], combo[gi]);
        group_values[attr.column] = rep;
        group_values[attr.table + "." + attr.column] = rep;
        where = MakeAnd(std::move(where),
                        MakeBinary(BinaryOp::kEq,
                                   MakeColumnRef(attr.table, attr.column),
                                   MakeLiteral(std::move(rep))));
      }

      // Answer each distinct aggregate call once per group (select list
      // and HAVING share the memo), always including COUNT(*) for the
      // suppression input.
      std::map<std::string, double> agg_values;
      auto answer_agg = [&](const FuncCallExpr& agg) -> Status {
        const std::string key = ToSql(agg);
        if (agg_values.count(key) != 0) return Status::OK();
        VR_ASSIGN_OR_RETURN(
            double v, AnswerAggCall(agg, where.get(), params, use_exact));
        agg_values[key] = v;
        return Status::OK();
      };
      VR_RETURN_NOT_OK(answer_agg(count_star));
      std::vector<const FuncCallExpr*> aggs;
      for (const SelectItem& item : query.items) {
        CollectAggCallsForAnswer(item.expr.get(), &aggs);
      }
      CollectAggCallsForAnswer(query.having.get(), &aggs);
      for (const FuncCallExpr* agg : aggs) VR_RETURN_NOT_OK(answer_agg(*agg));

      aggregate::EvalContext ctx;
      ctx.aggregates = &agg_values;
      ctx.columns = &group_values;

      // Post-noise HAVING: the aggregates above are already published
      // noisy values, so filtering on them is pure post-processing.
      if (query.having != nullptr) {
        VR_ASSIGN_OR_RETURN(bool keep,
                            aggregate::EvaluateHaving(*query.having, ctx));
        if (!keep) return Status::OK();
      }

      aggregate::GroupedRow row;
      row.noisy_count = agg_values[ToSql(count_star)];
      for (const SelectItem& item : query.items) {
        if (item.expr->kind == ExprKind::kColumnRef) {
          // Group key output.
          const auto& ref = static_cast<const ColumnRefExpr&>(*item.expr);
          int dim = view_->AttributeIndex(ref.table, ref.column);
          bool emitted = false;
          for (size_t gi = 0; gi < group_dims.size(); ++gi) {
            if (static_cast<int>(group_dims[gi]) == dim) {
              row.values.push_back(Representative(group_dims[gi], combo[gi]));
              emitted = true;
              break;
            }
          }
          if (!emitted) {
            return Status::InvalidArgument(
                "non-grouped column '" + ref.FullName() +
                "' in grouped select list");
          }
          continue;
        }
        VR_ASSIGN_OR_RETURN(Value v, aggregate::EvalExpr(*item.expr, ctx));
        if (!v.is_numeric()) {
          return Status::TypeMismatch(
              "grouped aggregate item did not evaluate to a number");
        }
        row.values.push_back(Value::Double(v.ToDouble()));
      }
      data.rows.push_back(std::move(row));
      return Status::OK();
    }
    const int64_t cells =
        view_->attributes()[group_dims[d]].domain.CellCount();
    for (int64_t idx = 0; idx < cells; ++idx) {
      combo[d] = idx;
      VR_RETURN_NOT_OK(recurse(d + 1));
    }
    return Status::OK();
  };
  VR_RETURN_NOT_OK(recurse(0));
  return data;
}

Result<double> Synopsis::AnswerScalarImpl(const SelectStmt& query,
                                          const ParamMap& params,
                                          bool use_exact) const {
  if (query.items.size() != 1 || query.items[0].is_star) {
    return Status::InvalidArgument(
        "synopsis answering expects a single aggregate item");
  }
  const Expr& item = *query.items[0].expr;
  std::vector<const FuncCallExpr*> aggs;
  CollectAggCallsForAnswer(&item, &aggs);
  if (aggs.empty()) {
    return Status::InvalidArgument("query item has no aggregate");
  }

  std::map<std::string, double> agg_values;
  for (const FuncCallExpr* agg : aggs) {
    VR_ASSIGN_OR_RETURN(double value, AnswerAggCall(*agg, query.where.get(),
                                                    params, use_exact));
    agg_values[ToSql(*agg)] = value;
  }
  return EvalAggregateExpr(item, agg_values);
}

Result<double> Synopsis::AnswerAggCall(const FuncCallExpr& agg,
                                       const Expr* where,
                                       const ParamMap& params,
                                       bool use_exact) const {
  const auto& arrays = use_exact ? exact_ : noisy_;
  VR_ASSIGN_OR_RETURN(aggregate::AggregatePlan plan,
                      aggregate::PlanAggregate(agg));
  if (plan.is_extremum) {
    const auto& col = static_cast<const ColumnRefExpr&>(*plan.arg);
    return EstimateExtremum(col.column, agg.name == "max", where, params,
                            use_exact);
  }
  double count = 0;
  double sum = 0;
  double sumsq = 0;
  if (plan.derivation == aggregate::Derivation::kCount || plan.needs_count) {
    bool answered = false;
    if (plan.derivation == aggregate::Derivation::kCount && !use_exact) {
      VR_ASSIGN_OR_RETURN(std::optional<double> hier,
                          TryHierarchicalCount(where, params));
      if (hier.has_value()) {
        count = *hier;
        answered = true;
      }
    }
    if (!answered) {
      VR_ASSIGN_OR_RETURN(count,
                          SumMatchingCells(arrays.at("count"), where, params));
    }
  }
  if (!plan.sum_key.empty()) {
    auto it = arrays.find(plan.sum_key);
    if (it == arrays.end()) {
      return Status::NotFound("view has no measure '" + plan.sum_key + "'");
    }
    VR_ASSIGN_OR_RETURN(sum, SumMatchingCells(it->second, where, params));
  }
  if (!plan.sumsq_key.empty()) {
    auto it = arrays.find(plan.sumsq_key);
    if (it == arrays.end()) {
      return Status::NotFound("view has no measure '" + plan.sumsq_key +
                              "' (needed for " + agg.name + ")");
    }
    VR_ASSIGN_OR_RETURN(sumsq, SumMatchingCells(it->second, where, params));
  }
  return aggregate::EvaluateDerived(plan.derivation, count, sum, sumsq);
}

}  // namespace viewrewrite
