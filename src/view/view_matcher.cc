#include "view/view_matcher.h"

#include "rewrite/analysis.h"
#include "sql/printer.h"

namespace viewrewrite {

namespace {

void CollectAggCalls(const Expr* e, std::vector<const FuncCallExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall) {
    const auto* f = static_cast<const FuncCallExpr*>(e);
    if (f->IsAggregate()) {
      out->push_back(f);
      return;
    }
    for (const auto& a : f->args) CollectAggCalls(a.get(), out);
    return;
  }
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    CollectAggCalls(b->left.get(), out);
    CollectAggCalls(b->right.get(), out);
    return;
  }
  if (e->kind == ExprKind::kUnary) {
    CollectAggCalls(static_cast<const UnaryExpr*>(e)->operand.get(), out);
  }
}

}  // namespace

Result<ScalarQueryShape> AnalyzeScalarQuery(const SelectStmt& query,
                                            const BakePredicate& bake) {
  if (query.items.size() != 1 || query.items[0].is_star) {
    return Status::InvalidArgument(
        "view matching expects a single-aggregate query, got: " +
        ToSql(query));
  }
  if (!query.group_by.empty() || query.having != nullptr) {
    return Status::Unsupported(
        "grouped workload queries go through RegisterGrouped");
  }

  ScalarQueryShape shape;

  // Split WHERE into baked (view-defining) and cell (dimension) conjuncts.
  std::vector<const Expr*> baked;
  for (const Expr* c : CollectConjuncts(query.where.get())) {
    if (bake && bake(*c)) {
      baked.push_back(c);
    } else {
      shape.cell_conjuncts.push_back(c);
    }
  }
  shape.baked_where = ConjunctionOf(baked);

  // View signature: the canonical FROM rendering plus baked predicates.
  for (const auto& f : query.from) shape.signature += ToSql(*f) + " , ";
  if (shape.baked_where) {
    shape.signature += "|B:" + ToSql(*shape.baked_where);
  }

  // Attributes: every column the cell predicates touch.
  std::vector<const ColumnRefExpr*> refs;
  for (const Expr* c : shape.cell_conjuncts) {
    CollectColumnRefsShallow(c, &refs);
  }
  for (const ColumnRefExpr* r : refs) {
    shape.attributes.push_back({r->table, r->column});
  }

  // Measures from the aggregate item.
  std::vector<const FuncCallExpr*> aggs;
  CollectAggCalls(query.items[0].expr.get(), &aggs);
  if (aggs.empty()) {
    return Status::InvalidArgument("workload query has no aggregate: " +
                                   ToSql(query));
  }
  for (const FuncCallExpr* agg : aggs) {
    ScalarQueryShape::MeasureNeed need;
    if (agg->name == "count") {
      need.kind = ScalarQueryShape::MeasureNeed::Kind::kCount;
    } else if (agg->name == "sum" || agg->name == "avg") {
      const Expr& arg = *agg->args[0];
      need.kind = ScalarQueryShape::MeasureNeed::Kind::kSum;
      need.expr = arg.Clone();
      need.key = "sum:" + ToSql(arg);
    } else if (agg->name == "min" || agg->name == "max") {
      if (agg->args.size() != 1 ||
          agg->args[0]->kind != ExprKind::kColumnRef) {
        return Status::Unsupported("MIN/MAX over non-column expressions");
      }
      const auto& col = static_cast<const ColumnRefExpr&>(*agg->args[0]);
      need.kind = ScalarQueryShape::MeasureNeed::Kind::kExtremum;
      need.table = col.table;
      need.column = col.column;
    } else {
      return Status::Unsupported("aggregate '" + agg->name +
                                 "' in workload query");
    }
    shape.measures.push_back(std::move(need));
  }
  return shape;
}

Status MatchShapeToView(const ScalarQueryShape& shape, const ViewDef& view) {
  for (const auto& a : shape.attributes) {
    if (view.AttributeIndex(a.table, a.column) < 0) {
      const std::string name =
          a.table.empty() ? a.column : a.table + "." + a.column;
      return Status::NotFound("view '" + view.signature() +
                              "' has no attribute '" + name + "'");
    }
  }
  for (const auto& m : shape.measures) {
    switch (m.kind) {
      case ScalarQueryShape::MeasureNeed::Kind::kCount:
        break;  // the count histogram is always published
      case ScalarQueryShape::MeasureNeed::Kind::kSum:
        if (view.MeasureIndex(m.key) < 0) {
          return Status::NotFound("view '" + view.signature() +
                                  "' has no measure '" + m.key + "'");
        }
        break;
      case ScalarQueryShape::MeasureNeed::Kind::kExtremum:
        if (view.AttributeIndex(m.table, m.column) < 0) {
          const std::string name =
              m.table.empty() ? m.column : m.table + "." + m.column;
          return Status::NotFound("view '" + view.signature() +
                                  "' has no dimension '" + name +
                                  "' for MIN/MAX");
        }
        break;
    }
  }
  return Status::OK();
}

SelectStmtPtr MakeCellQuery(const SelectStmt& query,
                            const ScalarQueryShape& shape) {
  auto cell = std::make_unique<SelectStmt>();
  cell->items.push_back(query.items[0].Clone());
  cell->where = ConjunctionOf(shape.cell_conjuncts);
  return cell;
}

}  // namespace viewrewrite
