#include "view/view_matcher.h"

#include "aggregate/aggregate_planner.h"
#include "rewrite/analysis.h"
#include "sql/printer.h"

namespace viewrewrite {

void CollectAggregateCalls(const Expr* e,
                           std::vector<const FuncCallExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall) {
    const auto* f = static_cast<const FuncCallExpr*>(e);
    if (f->IsAggregate()) {
      out->push_back(f);
      return;
    }
    for (const auto& a : f->args) CollectAggregateCalls(a.get(), out);
    return;
  }
  if (e->kind == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    CollectAggregateCalls(b->left.get(), out);
    CollectAggregateCalls(b->right.get(), out);
    return;
  }
  if (e->kind == ExprKind::kUnary) {
    CollectAggregateCalls(static_cast<const UnaryExpr*>(e)->operand.get(),
                          out);
  }
}

namespace {

// Translates one aggregate call into the measures it needs, via the
// derived-measure planner: this is where AVG gains its count companion
// and VARIANCE/STDDEV their sum-of-squares, both at register time (so
// the companions get published) and at serve time (so a loaded view is
// checked for them).
Status AppendMeasureNeeds(const FuncCallExpr& agg,
                          std::vector<ScalarQueryShape::MeasureNeed>* out) {
  using Kind = ScalarQueryShape::MeasureNeed::Kind;
  Result<aggregate::AggregatePlan> plan = aggregate::PlanAggregate(agg);
  if (!plan.ok()) return plan.status();
  if (plan->is_extremum) {
    const auto& col = static_cast<const ColumnRefExpr&>(*plan->arg);
    ScalarQueryShape::MeasureNeed need;
    need.kind = Kind::kExtremum;
    need.table = col.table;
    need.column = col.column;
    out->push_back(std::move(need));
    return Status::OK();
  }
  if (!plan->sum_key.empty()) {
    ScalarQueryShape::MeasureNeed need;
    need.kind = Kind::kSum;
    need.expr = plan->arg->Clone();
    need.key = plan->sum_key;
    out->push_back(std::move(need));
  }
  if (!plan->sumsq_key.empty()) {
    ScalarQueryShape::MeasureNeed need;
    need.kind = Kind::kSum;
    need.expr = plan->square->Clone();
    need.key = plan->sumsq_key;
    out->push_back(std::move(need));
  }
  if (plan->needs_count) {
    ScalarQueryShape::MeasureNeed need;
    need.kind = Kind::kCount;
    out->push_back(std::move(need));
  }
  return Status::OK();
}

}  // namespace

Result<ScalarQueryShape> AnalyzeScalarQuery(const SelectStmt& query,
                                            const BakePredicate& bake) {
  if (query.items.size() != 1 || query.items[0].is_star) {
    return Status::InvalidArgument(
        "view matching expects a single-aggregate query, got: " +
        ToSql(query));
  }
  if (!query.group_by.empty() || query.having != nullptr) {
    return Status::Unsupported(
        "grouped workload queries go through RegisterGrouped");
  }

  ScalarQueryShape shape;

  // Split WHERE into baked (view-defining) and cell (dimension) conjuncts.
  std::vector<const Expr*> baked;
  for (const Expr* c : CollectConjuncts(query.where.get())) {
    if (bake && bake(*c)) {
      baked.push_back(c);
    } else {
      shape.cell_conjuncts.push_back(c);
    }
  }
  shape.baked_where = ConjunctionOf(baked);

  // View signature: the canonical FROM rendering plus baked predicates.
  for (const auto& f : query.from) shape.signature += ToSql(*f) + " , ";
  if (shape.baked_where) {
    shape.signature += "|B:" + ToSql(*shape.baked_where);
  }

  // Attributes: every column the cell predicates touch.
  std::vector<const ColumnRefExpr*> refs;
  for (const Expr* c : shape.cell_conjuncts) {
    CollectColumnRefsShallow(c, &refs);
  }
  for (const ColumnRefExpr* r : refs) {
    shape.attributes.push_back({r->table, r->column});
  }

  // Measures from the aggregate item.
  std::vector<const FuncCallExpr*> aggs;
  CollectAggregateCalls(query.items[0].expr.get(), &aggs);
  if (aggs.empty()) {
    return Status::InvalidArgument("workload query has no aggregate: " +
                                   ToSql(query));
  }
  for (const FuncCallExpr* agg : aggs) {
    VR_RETURN_NOT_OK(AppendMeasureNeeds(*agg, &shape.measures));
  }
  return shape;
}

Result<GroupedQueryShape> AnalyzeGroupedQuery(const SelectStmt& query,
                                              const BakePredicate& bake) {
  if (query.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped matching expects GROUP BY, got: " + ToSql(query));
  }
  GroupedQueryShape shape;

  // Same conjunct split and signature computation as the scalar path:
  // grouped queries share views (and synopses) with the scalar queries
  // over the same FROM.
  std::vector<const Expr*> baked;
  for (const Expr* c : CollectConjuncts(query.where.get())) {
    if (bake && bake(*c)) {
      baked.push_back(c);
    } else {
      shape.base.cell_conjuncts.push_back(c);
    }
  }
  shape.base.baked_where = ConjunctionOf(baked);
  for (const auto& f : query.from) shape.base.signature += ToSql(*f) + " , ";
  if (shape.base.baked_where) {
    shape.base.signature += "|B:" + ToSql(*shape.base.baked_where);
  }

  std::vector<const ColumnRefExpr*> refs;
  for (const Expr* c : shape.base.cell_conjuncts) {
    CollectColumnRefsShallow(c, &refs);
  }
  for (const ColumnRefExpr* r : refs) {
    shape.base.attributes.push_back({r->table, r->column});
  }

  // Group columns are dimensions too: the answer enumerates their cells.
  for (const ExprPtr& g : query.group_by) {
    if (g->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("GROUP BY over non-column expressions");
    }
    const auto& col = static_cast<const ColumnRefExpr&>(*g);
    shape.group_columns.push_back({col.table, col.column});
    shape.base.attributes.push_back({col.table, col.column});
  }

  // Measures: every aggregate in the select list and in HAVING, expanded
  // through the planner, plus the count histogram — the noisy per-group
  // count always backs the minimum-frequency suppression rule.
  bool any_aggregate = false;
  for (const SelectItem& item : query.items) {
    if (item.is_star) {
      return Status::InvalidArgument("SELECT * is not a grouped aggregate");
    }
    if (item.expr->kind == ExprKind::kColumnRef) continue;  // group key
    std::vector<const FuncCallExpr*> aggs;
    CollectAggregateCalls(item.expr.get(), &aggs);
    if (aggs.empty()) {
      return Status::Unsupported(
          "grouped select items must be group columns or aggregates");
    }
    any_aggregate = true;
    for (const FuncCallExpr* agg : aggs) {
      VR_RETURN_NOT_OK(AppendMeasureNeeds(*agg, &shape.base.measures));
    }
  }
  if (!any_aggregate) {
    return Status::InvalidArgument("grouped query has no aggregate: " +
                                   ToSql(query));
  }
  if (query.having != nullptr) {
    std::vector<const FuncCallExpr*> aggs;
    CollectAggregateCalls(query.having.get(), &aggs);
    for (const FuncCallExpr* agg : aggs) {
      VR_RETURN_NOT_OK(AppendMeasureNeeds(*agg, &shape.base.measures));
    }
  }
  ScalarQueryShape::MeasureNeed count_need;
  count_need.kind = ScalarQueryShape::MeasureNeed::Kind::kCount;
  shape.base.measures.push_back(std::move(count_need));
  return shape;
}

Status MatchShapeToView(const ScalarQueryShape& shape, const ViewDef& view) {
  for (const auto& a : shape.attributes) {
    if (view.AttributeIndex(a.table, a.column) < 0) {
      const std::string name =
          a.table.empty() ? a.column : a.table + "." + a.column;
      return Status::NotFound("view '" + view.signature() +
                              "' has no attribute '" + name + "'");
    }
  }
  for (const auto& m : shape.measures) {
    switch (m.kind) {
      case ScalarQueryShape::MeasureNeed::Kind::kCount:
        break;  // the count histogram is always published
      case ScalarQueryShape::MeasureNeed::Kind::kSum:
        if (view.MeasureIndex(m.key) < 0) {
          return Status::NotFound("view '" + view.signature() +
                                  "' has no measure '" + m.key + "'");
        }
        break;
      case ScalarQueryShape::MeasureNeed::Kind::kExtremum:
        if (view.AttributeIndex(m.table, m.column) < 0) {
          const std::string name =
              m.table.empty() ? m.column : m.table + "." + m.column;
          return Status::NotFound("view '" + view.signature() +
                                  "' has no dimension '" + name +
                                  "' for MIN/MAX");
        }
        break;
    }
  }
  return Status::OK();
}

SelectStmtPtr MakeCellQuery(const SelectStmt& query,
                            const ScalarQueryShape& shape) {
  auto cell = std::make_unique<SelectStmt>();
  cell->items.push_back(query.items[0].Clone());
  cell->where = ConjunctionOf(shape.cell_conjuncts);
  return cell;
}

}  // namespace viewrewrite
