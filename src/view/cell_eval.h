#ifndef VIEWREWRITE_VIEW_CELL_EVAL_H_
#define VIEWREWRITE_VIEW_CELL_EVAL_H_

#include <map>
#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace viewrewrite {

/// Per-cell predicate evaluation context: each view attribute's
/// representative value (categorical value, bucket midpoint, or NULL for
/// the padding cell) plus scalar parameter bindings from chained queries.
struct CellContext {
  /// Keyed by qualified name ("t.col") with an unqualified fallback entry
  /// ("col") when unambiguous.
  std::map<std::string, Value> attr_values;
  std::map<std::string, Value> params;
};

/// Evaluates a rewritten (subquery-free) predicate over a cell. Returns
/// SQL three-valued truth collapsed to bool (only TRUE counts the cell).
Result<bool> EvalCellPredicate(const Expr& e, const CellContext& ctx);

/// Evaluates a scalar expression over a cell (NULL-propagating).
Result<Value> EvalCellExpr(const Expr& e, const CellContext& ctx);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_VIEW_CELL_EVAL_H_
