#include "view/view_manager.h"

#include <algorithm>
#include <set>

#include "common/fault_injection.h"
#include "dp/budget_wal.h"
#include "rewrite/analysis.h"
#include "sql/printer.h"
#include "view/view_matcher.h"

namespace viewrewrite {

Result<BoundQuery> ViewManager::RegisterGrouped(const SelectStmt& query,
                                                const BakePredicate& bake) {
  if (query.group_by.empty()) {
    return Status::InvalidArgument("RegisterGrouped requires GROUP BY");
  }
  // Register via a scalar proxy whose WHERE additionally references the
  // group columns, so they become view attributes; then rebind the
  // original grouped statement.
  SelectStmtPtr proxy = query.Clone();
  proxy->group_by.clear();
  // HAVING aggregates are collected below and registered like select-list
  // ones; the scalar proxy itself must carry no HAVING (the scalar
  // analysis rejects it, and its filtering is post-noise anyway).
  proxy->having = nullptr;
  proxy->items.clear();
  SelectItem count_item;
  std::vector<ExprPtr> star_args;
  star_args.push_back(std::make_unique<StarExpr>());
  count_item.expr = MakeFuncCall("count", std::move(star_args));
  proxy->items.push_back(std::move(count_item));
  for (const ExprPtr& g : query.group_by) {
    if (g->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("GROUP BY over non-column expressions");
    }
    // A tautological ISNOTNULL-or-not predicate would change semantics;
    // instead reference the column through a filter that every row
    // passes after the NULL cell check is irrelevant for registration.
    proxy->where =
        MakeAnd(std::move(proxy->where),
                MakeFuncCall("isnotnull", [&] {
                  std::vector<ExprPtr> args;
                  args.push_back(g->Clone());
                  return args;
                }()));
  }
  // Register once per aggregate call — select list and HAVING alike — so
  // every measure the grouped query needs lands on the (single, shared)
  // view. The scalar registration expands derived aggregates through the
  // planner, so AVG contributes (sum, count) and VARIANCE/STDDEV
  // contribute (sum, sum-of-squares, count) companion measures here, at
  // register time; answering them later is budget-free post-processing.
  BoundQuery bound;
  bool registered = false;
  std::vector<const FuncCallExpr*> aggs;
  for (const SelectItem& item : query.items) {
    CollectAggregateCalls(item.expr.get(), &aggs);
  }
  CollectAggregateCalls(query.having.get(), &aggs);
  for (const FuncCallExpr* agg : aggs) {
    SelectItem item;
    item.expr = agg->Clone();
    proxy->items[0] = std::move(item);
    VR_ASSIGN_OR_RETURN(bound, RegisterScalar(*proxy, bake));
    registered = true;
  }
  if (!registered) {
    VR_ASSIGN_OR_RETURN(bound, RegisterScalar(*proxy, bake));
  }
  bound.cell_query = query.Clone();
  return bound;
}

Result<ResultSet> ViewManager::AnswerGrouped(const BoundQuery& q,
                                             const ParamMap& params,
                                             bool exact) const {
  auto it = synopses_.find(q.view_signature);
  if (it == synopses_.end()) {
    auto failed = failed_views_.find(q.view_signature);
    if (failed != failed_views_.end()) return failed->second;
    return Status::NotFound("no synopsis published for view '" +
                            q.view_signature + "'");
  }
  return it->second.AnswerGrouped(*q.cell_query, params, exact);
}

Result<aggregate::GroupedData> ViewManager::AnswerGroupedData(
    const BoundQuery& q, const ParamMap& params, bool exact) const {
  auto it = synopses_.find(q.view_signature);
  if (it == synopses_.end()) {
    auto failed = failed_views_.find(q.view_signature);
    if (failed != failed_views_.end()) return failed->second;
    return Status::NotFound("no synopsis published for view '" +
                            q.view_signature + "'");
  }
  return it->second.AnswerGroupedData(*q.cell_query, params, exact);
}

Result<BoundQuery> ViewManager::RegisterScalar(const SelectStmt& query,
                                               const BakePredicate& bake) {
  VR_FAULT_POINT(faults::kViewRegister);
  // One analysis shared with serve-time matching (view_matcher.h): the
  // shape says which view answers the query and what it must carry.
  VR_ASSIGN_OR_RETURN(ScalarQueryShape shape, AnalyzeScalarQuery(query, bake));

  ViewDef* view = nullptr;
  auto it = view_index_.find(shape.signature);
  if (it != view_index_.end()) {
    view = views_[it->second].get();
  } else {
    auto tmpl = std::make_unique<SelectStmt>();
    for (const auto& f : query.from) tmpl->from.push_back(f->Clone());
    tmpl->where = shape.baked_where ? shape.baked_where->Clone() : nullptr;
    views_.push_back(
        std::make_unique<ViewDef>(shape.signature, std::move(tmpl)));
    view_index_[shape.signature] = views_.size() - 1;
    view = views_.back().get();
  }

  // Contribute the attributes the cell predicates need.
  for (const auto& a : shape.attributes) {
    if (view->AttributeIndex(a.table, a.column) >= 0) continue;
    VR_ASSIGN_OR_RETURN(
        ColumnDomain domain,
        DeriveAttributeDomain(view->from_template().from, schema_, a.table,
                              a.column, options_.domain));
    view->AddAttribute(ViewAttribute{a.table, a.column, std::move(domain)});
  }

  // Contribute the measures the aggregate item needs.
  for (const auto& need : shape.measures) {
    switch (need.kind) {
      case ScalarQueryShape::MeasureNeed::Kind::kCount:
        break;  // count histogram always built
      case ScalarQueryShape::MeasureNeed::Kind::kSum: {
        ViewMeasure m;
        m.kind = ViewMeasure::Kind::kSum;
        m.expr = need.expr->Clone();
        m.key = need.key;
        VR_ASSIGN_OR_RETURN(
            m.value_bound,
            ExpressionBound(view->from_template().from, schema_, *need.expr,
                            options_.domain));
        view->AddMeasure(std::move(m));
        break;
      }
      case ScalarQueryShape::MeasureNeed::Kind::kExtremum: {
        if (view->AttributeIndex(need.table, need.column) >= 0) break;
        VR_ASSIGN_OR_RETURN(
            ColumnDomain domain,
            DeriveAttributeDomain(view->from_template().from, schema_,
                                  need.table, need.column, options_.domain));
        view->AddAttribute(
            ViewAttribute{need.table, need.column, std::move(domain)});
        break;
      }
    }
  }

  ++view_usage_[shape.signature];
  BoundQuery bound;
  bound.view_signature = shape.signature;
  bound.cell_query = MakeCellQuery(query, shape);
  return bound;
}

Result<BoundRewrittenQuery> ViewManager::RegisterRewritten(
    const RewrittenQuery& rq, const BakePredicate& bake) {
  BoundRewrittenQuery out;
  for (const ChainLink& link : rq.chain) {
    VR_ASSIGN_OR_RETURN(BoundQuery bq, RegisterScalar(*link.query, bake));
    BoundRewrittenQuery::Link l;
    l.var = link.var;
    l.query = std::move(bq);
    out.chain.push_back(std::move(l));
  }
  for (const auto& term : rq.combination.terms) {
    // Grouped terms (the rewriter passes grouped statements through as a
    // single coefficient-1 term) register through the grouped path: the
    // group columns become view attributes and the bound cell query
    // keeps its GROUP BY/HAVING for row-carrying answering.
    Result<BoundQuery> bq = term.query->group_by.empty()
                                ? RegisterScalar(*term.query, bake)
                                : RegisterGrouped(*term.query, bake);
    VR_RETURN_NOT_OK(bq.status());
    BoundRewrittenQuery::Term t;
    t.coeff = term.coeff;
    t.query = std::move(*bq);
    out.terms.push_back(std::move(t));
  }
  return out;
}

size_t ViewManager::ViewUsage(const std::string& signature) const {
  auto it = view_usage_.find(signature);
  return it == view_usage_.end() ? 0 : it->second;
}

Status ViewManager::Publish(const Database& db, double total_epsilon,
                            Random* rng, BudgetAllocation allocation,
                            bool degraded, double lifetime_epsilon) {
  if (views_.empty()) {
    return Status::InvalidArgument("no views registered");
  }
  // The accountant's total is the *lifetime* budget: the initial
  // publication splits total_epsilon, and any surplus is the reserve
  // later republish generations compose against (sequential composition
  // across epochs, one ledger).
  const double lifetime_total =
      lifetime_epsilon > total_epsilon ? lifetime_epsilon : total_epsilon;
  if (budget_wal_ != nullptr) {
    // Crash recovery: the WAL replayed every spend durably recorded by
    // previous process lives. Seeding the accountant with that state
    // makes this publication stack on top of it — so a restarted process
    // hard-fails before the combined lifetime spend could exceed the
    // total, instead of silently re-spending the whole budget.
    const BudgetWal::ReplayedLedger& recovered = budget_wal_->recovered();
    accountant_ = std::make_unique<BudgetAccountant>(
        lifetime_total, recovered.spent, recovered.entries);
    accountant_->AttachWal(budget_wal_);
  } else {
    accountant_ = std::make_unique<BudgetAccountant>(lifetime_total);
  }
  failed_views_.clear();
  view_data_generation_.clear();
  view_outdated_since_.clear();
  double total_weight = 0;
  auto weight_of = [&](const ViewDef& view) -> double {
    if (allocation == BudgetAllocation::kUniform) return 1.0;
    return static_cast<double>(std::max<size_t>(1, ViewUsage(view.signature())));
  };
  for (const auto& view : views_) total_weight += weight_of(*view);
  for (const auto& view : views_) {
    const double eps_view =
        total_epsilon * weight_of(*view) / total_weight;
    Status st = accountant_->Spend(eps_view, "synopsis:" + view->signature());
    const bool spent = st.ok();
    if (st.ok() && FaultInjection::Armed()) {
      st = FaultInjection::Instance().Check(faults::kViewPublish);
    }
    if (st.ok()) {
      Result<Synopsis> syn =
          Synopsis::Build(*view, db, policy_, eps_view, options_, rng);
      if (syn.ok()) {
        synopses_.emplace(view->signature(), std::move(syn).value());
        continue;
      }
      st = syn.status();
    }
    if (!degraded) return st;
    // Per-view recovery: every output of the failed publication is
    // discarded, so its slice composes as if never spent — refund it and
    // keep publishing the remaining views.
    if (spent) {
      VR_RETURN_NOT_OK(
          accountant_->Refund(eps_view, "refund:synopsis:" + view->signature()));
    }
    failed_views_.emplace(view->signature(), std::move(st));
  }
  return Status::OK();
}

Result<ViewManager::RepublishOutcome> ViewManager::RepublishViews(
    const Database& db, const std::vector<std::string>& changed_relations,
    double generation_epsilon, Random* rng, uint64_t generation) {
  if (accountant_ == nullptr) {
    return Status::InvalidArgument(
        "RepublishViews requires a prior Publish (no lifetime ledger)");
  }
  if (generation == 0) {
    return Status::InvalidArgument(
        "generation 0 is the initial publication; republish generations "
        "start at 1");
  }
  RepublishOutcome outcome;
  outcome.generation = generation;

  const std::set<std::string> changed(changed_relations.begin(),
                                      changed_relations.end());
  for (const auto& view : views_) {
    for (const std::string& rel : view->BaseRelations()) {
      if (changed.count(rel)) {
        outcome.affected.push_back(view->signature());
        break;
      }
    }
  }
  if (outcome.affected.empty()) return outcome;

  // Hard-fail before over-spend: the whole generation is refused before
  // any spend or rebuild when the lifetime reserve cannot cover it, so a
  // generation either has its full budget or never starts.
  if (generation_epsilon >
      accountant_->remaining() * (1.0 + 1e-9) + 1e-9) {
    return Status::PrivacyError(
        "republish generation " + std::to_string(generation) + " needs " +
        std::to_string(generation_epsilon) +
        " epsilon but only " + std::to_string(accountant_->remaining()) +
        " of the lifetime budget remains");
  }
  outcome.epsilon_per_view =
      generation_epsilon / static_cast<double>(outcome.affected.size());

  const std::string gen_tag = "gen" + std::to_string(generation);
  for (const std::string& sig : outcome.affected) {
    const ViewDef& view = *views_[view_index_.at(sig)];
    auto fail_view = [&](Status st, bool spent) -> Status {
      if (spent) {
        VR_RETURN_NOT_OK(accountant_->Refund(
            outcome.epsilon_per_view, "refund:" + gen_tag + ":synopsis:" + sig));
      }
      outcome.failed.push_back(sig);
      // The old synopsis (when one exists) keeps serving, flagged
      // outdated from the first generation whose change it missed.
      view_outdated_since_.emplace(sig, generation);
      if (!synopses_.count(sig)) failed_views_[sig] = std::move(st);
      return Status::OK();
    };
    Status st = accountant_->Spend(outcome.epsilon_per_view,
                                   gen_tag + ":synopsis:" + sig);
    if (!st.ok()) {
      VR_RETURN_NOT_OK(fail_view(std::move(st), /*spent=*/false));
      continue;
    }
    if (FaultInjection::Armed()) {
      st = FaultInjection::Instance().Check(faults::kRepublishBuild);
    }
    if (st.ok()) {
      Result<Synopsis> syn = Synopsis::Build(view, db, policy_,
                                             outcome.epsilon_per_view,
                                             options_, rng);
      if (syn.ok()) {
        synopses_.insert_or_assign(sig, std::move(syn).value());
        outcome.rebuilt.push_back(sig);
        outcome.epsilon_spent += outcome.epsilon_per_view;
        view_data_generation_[sig] = generation;
        view_outdated_since_.erase(sig);
        // A view whose initial publication failed heals on a successful
        // rebuild: it now has a synopsis to serve.
        failed_views_.erase(sig);
        continue;
      }
      st = syn.status();
    }
    VR_RETURN_NOT_OK(fail_view(std::move(st), /*spent=*/true));
  }
  return outcome;
}

Status ViewManager::RefundGeneration(const RepublishOutcome& outcome) {
  if (accountant_ == nullptr) {
    return Status::InvalidArgument("no lifetime ledger to refund against");
  }
  const std::string gen_tag = "gen" + std::to_string(outcome.generation);
  for (const std::string& sig : outcome.rebuilt) {
    VR_RETURN_NOT_OK(accountant_->Refund(
        outcome.epsilon_per_view,
        "refund:discarded:" + gen_tag + ":synopsis:" + sig));
  }
  return Status::OK();
}

const Status* ViewManager::BindingFailure(const BoundRewrittenQuery& q) const {
  if (failed_views_.empty()) return nullptr;
  for (const auto& link : q.chain) {
    auto it = failed_views_.find(link.query.view_signature);
    if (it != failed_views_.end()) return &it->second;
  }
  for (const auto& term : q.terms) {
    auto it = failed_views_.find(term.query.view_signature);
    if (it != failed_views_.end()) return &it->second;
  }
  return nullptr;
}

Result<double> ViewManager::AnswerScalar(const BoundQuery& q,
                                         const ParamMap& params,
                                         bool exact) const {
  auto it = synopses_.find(q.view_signature);
  if (it == synopses_.end()) {
    auto failed = failed_views_.find(q.view_signature);
    if (failed != failed_views_.end()) return failed->second;
    return Status::NotFound("no synopsis published for view '" +
                            q.view_signature + "'");
  }
  if (exact) return it->second.AnswerScalarExact(*q.cell_query, params);
  return it->second.AnswerScalar(*q.cell_query, params);
}

Result<double> ViewManager::Answer(const BoundRewrittenQuery& q,
                                   bool exact) const {
  ParamMap params;
  for (const auto& link : q.chain) {
    VR_ASSIGN_OR_RETURN(double v, AnswerScalar(link.query, params, exact));
    params[link.var] = Value::Double(v);
  }
  double total = 0;
  for (const auto& term : q.terms) {
    VR_ASSIGN_OR_RETURN(double v, AnswerScalar(term.query, params, exact));
    total += term.coeff * v;
  }
  return total;
}

std::vector<Synopsis::BuildStats> ViewManager::BuildStatsList() const {
  std::vector<Synopsis::BuildStats> out;
  for (const auto& [sig, syn] : synopses_) {
    (void)sig;
    out.push_back(syn.stats());
  }
  return out;
}

}  // namespace viewrewrite
