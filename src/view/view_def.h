#ifndef VIEWREWRITE_VIEW_VIEW_DEF_H_
#define VIEWREWRITE_VIEW_VIEW_DEF_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "sql/ast.h"

namespace viewrewrite {

/// One histogram dimension of a view: a (qualified) attribute of the
/// view's join structure together with its bounded domain.
struct ViewAttribute {
  std::string table;    // binding within the view's FROM ("" if unqualified)
  std::string column;
  ColumnDomain domain;

  std::string QualifiedName() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// What the synopsis must be able to total per cell.
struct ViewMeasure {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };

  Kind kind = Kind::kCount;
  /// For kSum: the summed expression. For kMin/kMax/kAvg: the column
  /// (those are answered from the count/sum histograms over its domain).
  ExprPtr expr;
  /// Per-row magnitude bound of `expr` (sensitivity calibration for sums).
  double value_bound = 1.0;
  /// Canonical key for dedup ("count", "sum:(a * b)", ...).
  std::string key;

  ViewMeasure Clone() const;
};

/// A view: a join structure (FROM tree with residual derived-table
/// filters), the attribute dimensions queries filter on, and the measures
/// they aggregate. Structurally identical queries share one view — the
/// quantity the paper minimizes.
class ViewDef {
 public:
  ViewDef(std::string signature, SelectStmtPtr from_template)
      : signature_(std::move(signature)),
        from_template_(std::move(from_template)) {}

  const std::string& signature() const { return signature_; }
  /// Statement carrying the canonical FROM tree (items/where unset).
  const SelectStmt& from_template() const { return *from_template_; }

  const std::vector<ViewAttribute>& attributes() const { return attrs_; }
  const std::vector<ViewMeasure>& measures() const { return measures_; }

  /// Adds an attribute if not already present (by qualified name).
  void AddAttribute(ViewAttribute attr);
  /// Adds a measure if not already present (by key).
  void AddMeasure(ViewMeasure measure);

  /// Deep copy (the serve layer snapshots views out of a ViewManager).
  std::unique_ptr<ViewDef> Clone() const;

  /// Base relations the view's definition reads (deduplicated, sorted):
  /// every base table reachable through the FROM tree, including tables
  /// referenced only inside derived-table subqueries. This is the
  /// dependency set the synopsis lifecycle consults: when a base relation
  /// changes, every view whose BaseRelations() contains it must be
  /// rebuilt (or flagged outdated).
  std::vector<std::string> BaseRelations() const;

  int AttributeIndex(const std::string& table,
                     const std::string& column) const;
  int MeasureIndex(const std::string& key) const;

 private:
  std::string signature_;
  SelectStmtPtr from_template_;
  std::vector<ViewAttribute> attrs_;
  std::vector<ViewMeasure> measures_;
};

/// Derives the bounded domain of an attribute of a FROM structure:
/// base-table columns use their catalog domain; derived-table outputs are
/// resolved through their defining expression (aggregates get synthetic
/// domains sized by `count_bound`, interval arithmetic handles scalar
/// expressions).
struct DomainOptions {
  /// Upper bound (inclusive-exclusive style: values live in [0, bound))
  /// on per-group row counts; synthetic data generators respect it.
  int64_t count_bound = 64;
  /// Default bucket count for derived numeric attributes. Coarser grids
  /// mean each workload query touches fewer noisy cells, which is how the
  /// paper's tuned synopses keep per-query variance low.
  int64_t buckets = 16;
};

Result<ColumnDomain> DeriveAttributeDomain(
    const std::vector<TableRefPtr>& from, const Schema& schema,
    const std::string& table, const std::string& column,
    const DomainOptions& options);

/// Interval bound |expr| <= bound for a row-level expression over the
/// given FROM structure (used to calibrate SUM sensitivities).
Result<double> ExpressionBound(const std::vector<TableRefPtr>& from,
                               const Schema& schema, const Expr& expr,
                               const DomainOptions& options);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_VIEW_VIEW_DEF_H_
