#include "view/view_def.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sql/printer.h"

namespace viewrewrite {

ViewMeasure ViewMeasure::Clone() const {
  ViewMeasure out;
  out.kind = kind;
  out.expr = expr ? expr->Clone() : nullptr;
  out.value_bound = value_bound;
  out.key = key;
  return out;
}

void ViewDef::AddAttribute(ViewAttribute attr) {
  for (const ViewAttribute& a : attrs_) {
    if (a.table == attr.table && a.column == attr.column) return;
  }
  attrs_.push_back(std::move(attr));
}

void ViewDef::AddMeasure(ViewMeasure measure) {
  for (const ViewMeasure& m : measures_) {
    if (m.key == measure.key) return;
  }
  measures_.push_back(std::move(measure));
}

int ViewDef::AttributeIndex(const std::string& table,
                            const std::string& column) const {
  // Prefer an exact qualified match, then an unqualified column match.
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].table == table && attrs_[i].column == column) {
      return static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].column == column && (table.empty() || attrs_[i].table.empty())) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::unique_ptr<ViewDef> ViewDef::Clone() const {
  auto out = std::make_unique<ViewDef>(signature_, from_template_->Clone());
  for (const ViewAttribute& a : attrs_) out->attrs_.push_back(a);
  for (const ViewMeasure& m : measures_) out->measures_.push_back(m.Clone());
  return out;
}

int ViewDef::MeasureIndex(const std::string& key) const {
  for (size_t i = 0; i < measures_.size(); ++i) {
    if (measures_[i].key == key) return static_cast<int>(i);
  }
  return -1;
}

namespace {

void CollectBaseRelations(const TableRef& ref, std::set<std::string>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      out->insert(static_cast<const BaseTableRef&>(ref).name);
      break;
    case TableRefKind::kDerived: {
      const auto& derived = static_cast<const DerivedTableRef&>(ref);
      if (derived.subquery) {
        for (const TableRefPtr& f : derived.subquery->from) {
          if (f) CollectBaseRelations(*f, out);
        }
      }
      break;
    }
    case TableRefKind::kJoin: {
      const auto& join = static_cast<const JoinTableRef&>(ref);
      if (join.left) CollectBaseRelations(*join.left, out);
      if (join.right) CollectBaseRelations(*join.right, out);
      break;
    }
  }
}

}  // namespace

std::vector<std::string> ViewDef::BaseRelations() const {
  std::set<std::string> names;
  for (const TableRefPtr& f : from_template_->from) {
    if (f) CollectBaseRelations(*f, &names);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

namespace {

struct Interval {
  double lo = 0;
  double hi = 0;
};

std::string ItemOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr&>(*item.expr).column;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return static_cast<const FuncCallExpr&>(*item.expr).name;
  }
  return "expr";
}

Result<Interval> DomainToInterval(const ColumnDomain& d) {
  switch (d.kind) {
    case ColumnDomain::Kind::kCategorical: {
      bool first = true;
      Interval iv;
      for (const Value& v : d.categories) {
        if (!v.is_numeric()) {
          return Status::TypeMismatch(
              "non-numeric categorical domain in arithmetic context");
        }
        double x = v.ToDouble();
        if (first) {
          iv.lo = iv.hi = x;
          first = false;
        } else {
          iv.lo = std::min(iv.lo, x);
          iv.hi = std::max(iv.hi, x);
        }
      }
      if (first) return Status::InvalidArgument("empty categorical domain");
      return iv;
    }
    case ColumnDomain::Kind::kIntBuckets:
      // Continuous convention: values live in [lo, hi + 1).
      return Interval{static_cast<double>(d.lo), static_cast<double>(d.hi + 1)};
    case ColumnDomain::Kind::kNone:
      return Status::NotFound("column has no registered domain");
  }
  return Status::Internal("unknown domain kind");
}

Result<Interval> ExprInterval(const std::vector<TableRefPtr>& from,
                              const Schema& schema, const Expr& e,
                              const DomainOptions& options);

Result<ColumnDomain> FindInTableRef(const TableRef& ref, const Schema& schema,
                                    const std::string& table,
                                    const std::string& column,
                                    const DomainOptions& options,
                                    bool* found);

Result<ColumnDomain> DeriveFromItemExpr(const SelectStmt& sub,
                                        const Schema& schema, const Expr& e,
                                        const DomainOptions& options) {
  if (e.kind == ExprKind::kColumnRef) {
    const auto& c = static_cast<const ColumnRefExpr&>(e);
    return DeriveAttributeDomain(sub.from, schema, c.table, c.column, options);
  }
  if (e.kind == ExprKind::kLiteral) {
    // Constant projections (e.g. the rewriter's `1 AS matched` indicator)
    // have a one-value domain.
    return ColumnDomain::Categorical(
        {static_cast<const LiteralExpr&>(e).value});
  }
  if (e.kind == ExprKind::kFuncCall) {
    const auto& f = static_cast<const FuncCallExpr&>(e);
    if (f.name == "count") {
      int64_t cells = std::min<int64_t>(options.count_bound, 8);
      return ColumnDomain::IntBuckets(0, options.count_bound - 1, cells);
    }
    if ((f.name == "min" || f.name == "max" || f.name == "avg") &&
        f.args.size() == 1 && f.args[0]->kind == ExprKind::kColumnRef) {
      // These aggregates stay within the argument's domain; reusing it
      // keeps workload predicates cell-aligned.
      const auto& c = static_cast<const ColumnRefExpr&>(*f.args[0]);
      return DeriveAttributeDomain(sub.from, schema, c.table, c.column,
                                   options);
    }
    if (f.name == "sum" && f.args.size() == 1) {
      VR_ASSIGN_OR_RETURN(Interval iv,
                          ExprInterval(sub.from, schema, *f.args[0], options));
      double cb = static_cast<double>(options.count_bound);
      double lo = std::min(0.0, iv.lo * cb);
      double hi = std::max(0.0, iv.hi * cb);
      return ColumnDomain::IntBuckets(static_cast<int64_t>(std::floor(lo)),
                                      static_cast<int64_t>(std::ceil(hi)) - 1,
                                      options.buckets);
    }
    if (f.name == "min" || f.name == "max" || f.name == "avg") {
      VR_ASSIGN_OR_RETURN(Interval iv,
                          ExprInterval(sub.from, schema, *f.args[0], options));
      return ColumnDomain::IntBuckets(static_cast<int64_t>(std::floor(iv.lo)),
                                      static_cast<int64_t>(std::ceil(iv.hi)) - 1,
                                      options.buckets);
    }
  }
  // Generic scalar expression: interval arithmetic.
  VR_ASSIGN_OR_RETURN(Interval iv, ExprInterval(sub.from, schema, e, options));
  return ColumnDomain::IntBuckets(static_cast<int64_t>(std::floor(iv.lo)),
                                  static_cast<int64_t>(std::ceil(iv.hi)) - 1,
                                  options.buckets);
}

Result<ColumnDomain> FindInTableRef(const TableRef& ref, const Schema& schema,
                                    const std::string& table,
                                    const std::string& column,
                                    const DomainOptions& options,
                                    bool* found) {
  *found = false;
  switch (ref.kind) {
    case TableRefKind::kBase: {
      const auto& b = static_cast<const BaseTableRef&>(ref);
      if (!table.empty() && b.BindingName() != table) {
        return ColumnDomain::None();
      }
      VR_ASSIGN_OR_RETURN(const TableSchema* ts, schema.GetTable(b.name));
      const ColumnDef* col = ts->FindColumn(column);
      if (col == nullptr) return ColumnDomain::None();
      *found = true;
      if (!col->domain.IsBounded()) {
        return Status::NotFound("column '" + b.name + "." + column +
                                "' has no registered domain");
      }
      return col->domain;
    }
    case TableRefKind::kDerived: {
      const auto& d = static_cast<const DerivedTableRef&>(ref);
      if (!table.empty() && d.alias != table) return ColumnDomain::None();
      for (const SelectItem& item : d.subquery->items) {
        if (item.is_star || !item.expr) continue;
        if (ItemOutputName(item) == column) {
          *found = true;
          return DeriveFromItemExpr(*d.subquery, schema, *item.expr, options);
        }
      }
      return ColumnDomain::None();
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      VR_ASSIGN_OR_RETURN(
          ColumnDomain dl,
          FindInTableRef(*j.left, schema, table, column, options, found));
      if (*found) return dl;
      return FindInTableRef(*j.right, schema, table, column, options, found);
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<Interval> ExprInterval(const std::vector<TableRefPtr>& from,
                              const Schema& schema, const Expr& e,
                              const DomainOptions& options) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(e).value;
      if (!v.is_numeric()) {
        return Status::TypeMismatch("non-numeric literal in interval");
      }
      double x = v.ToDouble();
      return Interval{x, x};
    }
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      VR_ASSIGN_OR_RETURN(
          ColumnDomain d,
          DeriveAttributeDomain(from, schema, c.table, c.column, options));
      return DomainToInterval(d);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      VR_ASSIGN_OR_RETURN(Interval l,
                          ExprInterval(from, schema, *b.left, options));
      VR_ASSIGN_OR_RETURN(Interval r,
                          ExprInterval(from, schema, *b.right, options));
      switch (b.op) {
        case BinaryOp::kAdd:
          return Interval{l.lo + r.lo, l.hi + r.hi};
        case BinaryOp::kSub:
          return Interval{l.lo - r.hi, l.hi - r.lo};
        case BinaryOp::kMul: {
          double a1 = l.lo * r.lo, a2 = l.lo * r.hi, a3 = l.hi * r.lo,
                 a4 = l.hi * r.hi;
          return Interval{std::min({a1, a2, a3, a4}),
                          std::max({a1, a2, a3, a4})};
        }
        default:
          return Status::Unsupported("interval arithmetic for operator " +
                                     std::string(BinaryOpName(b.op)));
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnaryOp::kNeg) {
        VR_ASSIGN_OR_RETURN(Interval i,
                            ExprInterval(from, schema, *u.operand, options));
        return Interval{-i.hi, -i.lo};
      }
      return Status::Unsupported("interval of NOT");
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(e);
      if (f.name == "coalesce") {
        Interval acc{0, 0};
        bool first = true;
        for (const auto& a : f.args) {
          VR_ASSIGN_OR_RETURN(Interval i,
                              ExprInterval(from, schema, *a, options));
          if (first) {
            acc = i;
            first = false;
          } else {
            acc.lo = std::min(acc.lo, i.lo);
            acc.hi = std::max(acc.hi, i.hi);
          }
        }
        return acc;
      }
      return Status::Unsupported("interval of function '" + f.name + "'");
    }
    default:
      return Status::Unsupported("interval of expression kind");
  }
}

}  // namespace

Result<ColumnDomain> DeriveAttributeDomain(
    const std::vector<TableRefPtr>& from, const Schema& schema,
    const std::string& table, const std::string& column,
    const DomainOptions& options) {
  for (const auto& f : from) {
    bool found = false;
    VR_ASSIGN_OR_RETURN(
        ColumnDomain d,
        FindInTableRef(*f, schema, table, column, options, &found));
    if (found) return d;
  }
  std::string name = table.empty() ? column : table + "." + column;
  return Status::NotFound("attribute '" + name +
                          "' not found in view structure");
}

Result<double> ExpressionBound(const std::vector<TableRefPtr>& from,
                               const Schema& schema, const Expr& expr,
                               const DomainOptions& options) {
  VR_ASSIGN_OR_RETURN(Interval iv, ExprInterval(from, schema, expr, options));
  return std::max(std::fabs(iv.lo), std::fabs(iv.hi));
}

}  // namespace viewrewrite
