#ifndef VIEWREWRITE_VIEW_VIEW_MANAGER_H_
#define VIEWREWRITE_VIEW_VIEW_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/budget.h"
#include "exec/executor.h"
#include "view/synopsis.h"
#include "view/view_def.h"
#include "view/view_matcher.h"

namespace viewrewrite {

/// A workload query bound to its view: the signature locates the synopsis,
/// `cell_query` is the (AND-only) scalar aggregate evaluated against the
/// synopsis cells.
struct BoundQuery {
  std::string view_signature;
  SelectStmtPtr cell_query;
};

/// A fully bound rewritten query: chain links plus combination terms, each
/// bound to a view.
struct BoundRewrittenQuery {
  struct Link {
    std::string var;
    BoundQuery query;
  };
  std::vector<Link> chain;
  struct Term {
    double coeff;
    BoundQuery query;
  };
  std::vector<Term> terms;
};

/// How the total budget is split across views at publication time.
/// kUniform is the paper's scheme; kByUsage is the extension the paper
/// sketches as future work ("optimizing privacy budget allocation
/// strategies"): views answering more workload queries receive
/// proportionally more budget.
enum class BudgetAllocation {
  kUniform,
  kByUsage,
};

/// View generation + publication + query answering (§9's three modules
/// behind one interface). Both ViewRewrite and the PrivateSQL baseline
/// drive this class; they differ in how queries are rewritten and in which
/// predicates are baked into the view (the baseline bakes subquery-derived
/// predicates, constants included, which is what makes its view count grow).
class ViewManager {
 public:
  /// `bake` decides, per WHERE conjunct, whether the predicate becomes part
  /// of the view definition (baked, evaluated at materialization) instead
  /// of a cell-level filter. Pass nullptr to bake nothing. (The type lives
  /// in view_matcher.h so serve-time matching shares it.)
  using BakePredicate = viewrewrite::BakePredicate;

  ViewManager(const Schema& schema, PrivacyPolicy policy,
              SynopsisOptions options = {})
      : schema_(schema), policy_(std::move(policy)), options_(options) {}

  /// Registers one scalar aggregate query (a combination term or a chain
  /// link): locates/creates its view, contributes attributes and measures.
  Result<BoundQuery> RegisterScalar(const SelectStmt& query,
                                    const BakePredicate& bake);

  /// Registers a full rewritten query (chain + combination).
  Result<BoundRewrittenQuery> RegisterRewritten(const RewrittenQuery& rq,
                                                const BakePredicate& bake);

  size_t NumViews() const { return views_.size(); }
  const std::vector<std::unique_ptr<ViewDef>>& views() const { return views_; }

  /// Publishes one synopsis per view (sequential composition across
  /// views), each view running the §9 pipeline. Must be called after all
  /// registrations. `allocation` picks the budget split.
  ///
  /// With `degraded` set, a view whose publication fails (injected fault,
  /// SVT abort, non-finite noise, ...) does not abort the batch: its
  /// budget slice is refunded (all of its outputs are discarded before
  /// anything is published, so the spend composes as if it never
  /// happened), the failure is recorded in failed_views(), and the
  /// remaining views still publish. Without `degraded` the first failure
  /// is returned immediately (the pre-robustness contract).
  ///
  /// `lifetime_epsilon`, when positive, is the accountant's total across
  /// the whole synopsis lifetime: the initial publication still splits
  /// only `total_epsilon` across views, and the difference is the reserve
  /// later RepublishViews generations draw from under sequential
  /// composition (cross-epoch composition: initial + every generation sum
  /// against one ledger). Zero (the default) keeps the single-epoch
  /// contract: the lifetime budget equals `total_epsilon` and any
  /// republish hard-fails immediately.
  Status Publish(const Database& db, double total_epsilon, Random* rng,
                 BudgetAllocation allocation = BudgetAllocation::kUniform,
                 bool degraded = false, double lifetime_epsilon = 0);

  /// Outcome of one delta-republish generation (RepublishViews).
  struct RepublishOutcome {
    uint64_t generation = 0;
    /// Views whose BaseRelations() intersect the changed set.
    std::vector<std::string> affected;
    /// Affected views rebuilt successfully this generation.
    std::vector<std::string> rebuilt;
    /// Affected views whose rebuild failed: budget refunded, old synopsis
    /// (if any) kept serving, view flagged outdated.
    std::vector<std::string> failed;
    /// Net epsilon consumed by this generation (spends minus refunds).
    double epsilon_spent = 0;
    /// Per-rebuilt-view slice, for a caller-side discard refund (see
    /// RefundGeneration).
    double epsilon_per_view = 0;
  };

  /// Delta republish (synopsis lifecycle, generation `generation` >= 1):
  /// rebuilds only the views whose base relations intersect
  /// `changed_relations`, spending `generation_epsilon` split uniformly
  /// across them under sequential composition against the lifetime ledger
  /// (labels "gen<N>:synopsis:<sig>"). Hard-fails with PrivacyError
  /// before touching any view when the remaining lifetime budget cannot
  /// cover the generation. A per-view rebuild failure refunds that slice
  /// ("refund:gen<N>:synopsis:<sig>"), keeps the old synopsis serving and
  /// records the view outdated-since this generation; a successful
  /// rebuild replaces the synopsis, stamps view_data_generation() and
  /// clears any outdated flag (a view that failed its initial publication
  /// heals if its rebuild succeeds). Requires a prior Publish.
  ///
  /// Not thread-safe against itself or concurrent readers of synopses();
  /// the serve-layer Republisher serializes all lifecycle mutations.
  Result<RepublishOutcome> RepublishViews(
      const Database& db, const std::vector<std::string>& changed_relations,
      double generation_epsilon, Random* rng, uint64_t generation);

  /// Caller-side discard: a generation that rebuilt successfully but was
  /// never published anywhere observable (e.g. the bundle save failed and
  /// the next generation will overwrite the cells) refunds its rebuilt
  /// views' slices. Must not be called once the generation's outputs were
  /// persisted or served.
  Status RefundGeneration(const RepublishOutcome& outcome);

  /// Views whose synopsis publication failed in a degraded Publish:
  /// signature -> recorded failure. Answering a query bound to one of
  /// these views returns that status.
  const std::map<std::string, Status>& failed_views() const {
    return failed_views_;
  }

  /// Failure status of the first failed view `q` is bound to, or nullptr
  /// when every view it needs was published.
  const Status* BindingFailure(const BoundRewrittenQuery& q) const;

  size_t NumPublished() const { return synopses_.size(); }

  /// Number of registered scalar queries (terms + chain links) answered
  /// by view `signature`.
  size_t ViewUsage(const std::string& signature) const;

  /// Answers a bound scalar query from its synopsis. With `exact`, the
  /// pre-noise cell totals are used (benchmark ground truth).
  Result<double> AnswerScalar(const BoundQuery& q, const ParamMap& params,
                              bool exact = false) const;

  /// Answers a full bound rewritten query: chain links first (binding
  /// parameters), then the signed combination.
  Result<double> Answer(const BoundRewrittenQuery& q,
                        bool exact = false) const;

  /// Registers and answers a grouped aggregate in one step: `query` must
  /// be a rewritten (subquery-free) statement whose GROUP BY columns are
  /// view attributes. Returns one noisy row per group cell. Call after
  /// Publish.
  Result<ResultSet> AnswerGrouped(const BoundQuery& q, const ParamMap& params,
                                  bool exact = false) const;

  /// Row-carrying grouped answer: group keys, per-row noisy counts (the
  /// suppression input) and per-column aggregate flags, with HAVING
  /// evaluated post-noise. The serve layer and the chaos baselines both
  /// consume this form.
  Result<aggregate::GroupedData> AnswerGroupedData(const BoundQuery& q,
                                                   const ParamMap& params,
                                                   bool exact = false) const;

  /// Registration variant for grouped queries: group-by columns become
  /// view attributes alongside the filter columns.
  Result<BoundQuery> RegisterGrouped(const SelectStmt& query,
                                     const BakePredicate& bake);

  /// Per-view build stats after Publish.
  std::vector<Synopsis::BuildStats> BuildStatsList() const;

  /// Published synopses by view signature — the export hook the serve
  /// layer snapshots into a persistable SynopsisStore.
  const std::map<std::string, Synopsis>& synopses() const {
    return synopses_;
  }

  const BudgetAccountant* accountant() const { return accountant_.get(); }

  /// Attaches a crash-durable write-ahead budget ledger (see
  /// dp/budget_wal.h). Publish then (a) seeds the accountant with the
  /// spent epsilon the WAL replayed from previous process lives, so a
  /// restart composes against everything already durably recorded, and
  /// (b) routes every subsequent Spend/Refund through the WAL ahead of
  /// the in-memory mutation. Must be attached before Publish; the WAL is
  /// not owned and must outlive the manager.
  void AttachBudgetWal(BudgetWal* wal) { budget_wal_ = wal; }

  // ---- Synopsis lifecycle metadata. ----------------------------------------

  /// Generation whose rebuild last refreshed each view's cells (0 = the
  /// initial publication; views never republished stay at 0).
  const std::map<std::string, uint64_t>& view_data_generation() const {
    return view_data_generation_;
  }
  /// First generation at which a view's base data changed without a
  /// successful rebuild; erased again when a later rebuild succeeds. A
  /// view present here is answerable but outdated.
  const std::map<std::string, uint64_t>& view_outdated_since() const {
    return view_outdated_since_;
  }

 private:
  const Schema& schema_;
  PrivacyPolicy policy_;
  SynopsisOptions options_;
  std::vector<std::unique_ptr<ViewDef>> views_;
  std::map<std::string, size_t> view_index_;           // signature -> index
  std::map<std::string, size_t> view_usage_;           // signature -> #queries
  std::map<std::string, Synopsis> synopses_;           // signature -> synopsis
  std::map<std::string, Status> failed_views_;         // signature -> failure
  std::map<std::string, uint64_t> view_data_generation_;
  std::map<std::string, uint64_t> view_outdated_since_;
  std::unique_ptr<BudgetAccountant> accountant_;
  BudgetWal* budget_wal_ = nullptr;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_VIEW_VIEW_MANAGER_H_
