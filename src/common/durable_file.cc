#include "common/durable_file.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <csignal>
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace viewrewrite {

Status WriteFileDurably(const std::string& tmp, const std::string& blob) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot open '" + tmp + "' for writing");
  }
  size_t off = 0;
  while (off < blob.size()) {
    const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::ExecutionError("short write to '" + tmp + "'");
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::ExecutionError("fsync failed for '" + tmp + "'");
  }
  if (::close(fd) != 0) {
    return Status::ExecutionError("close failed for '" + tmp + "'");
  }
#else
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::ExecutionError("cannot open '" + tmp + "' for writing");
  }
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) {
    return Status::ExecutionError("short write to '" + tmp + "'");
  }
#endif
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::ExecutionError("cannot open directory '" + dir +
                                  "' to sync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::ExecutionError("fsync failed for directory '" + dir + "'");
  }
#else
  (void)path;
#endif
  return Status::OK();
}

std::string UniqueTempName(const std::string& path) {
  static std::atomic<uint64_t> temp_seq{0};
  return path + ".tmp." +
#if defined(__unix__) || defined(__APPLE__)
         std::to_string(::getpid()) + "." +
#endif
         std::to_string(temp_seq.fetch_add(1) + 1);
}

namespace {

#if defined(__unix__) || defined(__APPLE__)
// Parses the `<pid>` out of a `<basename>.tmp.<pid>.<seq>` sibling name
// (`name` starts just past the ".tmp" prefix) and reports whether that
// process is still alive. Unparseable names count as dead: old-format or
// foreign temps have no owner to protect.
bool OwnerAlive(const std::string& suffix) {
  if (suffix.size() < 2 || suffix[0] != '.') return false;
  char* end = nullptr;
  const long pid = std::strtol(suffix.c_str() + 1, &end, 10);
  if (pid <= 0 || end == suffix.c_str() + 1) return false;
  // Signal 0 probes existence without delivering anything; EPERM still
  // means "alive, owned by someone else".
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}
#endif

}  // namespace

void SweepOrphanTemps(const std::string& path, bool only_dead_owners) {
#if defined(__unix__) || defined(__APPLE__)
  const size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> orphans;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (only_dead_owners && OwnerAlive(name.substr(prefix.size()))) continue;
    orphans.push_back(dir + "/" + name);
  }
  ::closedir(d);
  for (const std::string& orphan : orphans) std::remove(orphan.c_str());
#else
  (void)path;
  (void)only_dead_owners;
#endif
}

}  // namespace viewrewrite
