#include "common/circuit_breaker.h"

namespace viewrewrite {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, ClockFn clock)
    : options_(options), clock_(std::move(clock)) {
  if (options_.half_open_successes == 0) options_.half_open_successes = 1;
}

std::chrono::steady_clock::time_point CircuitBreaker::Now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

bool CircuitBreaker::Allow() {
  if (options_.failure_threshold == 0) return true;  // breaker disabled
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() - opened_at_ >= options_.open_duration) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        probe_successes_ = 0;
        return true;  // this caller is the probe
      }
      ++rejections_;
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++rejections_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // A straggler from before the trip; its success is stale evidence.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = Now();
        ++trips_;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cooldown.
      state_ = State::kOpen;
      opened_at_ = Now();
      probe_in_flight_ = false;
      ++trips_;
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace viewrewrite
