#ifndef VIEWREWRITE_COMMON_LIMITS_H_
#define VIEWREWRITE_COMMON_LIMITS_H_

#include <cstddef>
#include <cstdint>
#include <ostream>

#include "common/status.h"

namespace viewrewrite {

/// Central resource-governance knobs for every untrusted-input boundary:
/// the SQL front door (tokenizer/parser), the rewrite pipeline (DNF and
/// Rule-7 inclusion-exclusion expansion), synopsis generation (cell-grid
/// size), the `.vrsy` bundle loader (allocation budget), and QueryServer
/// admission control.
///
/// The contract is uniform: a breach surfaces as a typed Status
/// (kResourceExhausted for size/expansion budgets, kInvalidArgument or
/// kCorruption where the input is malformed rather than merely large) —
/// never a stack overflow, OOM kill, integer wrap, or multi-second CPU
/// burn. Hostile input must fail in microseconds with a message naming
/// the limit it hit.
///
/// Defaults are sized so every query in the paper's 31 workloads (and
/// anything a human plausibly writes) passes with orders-of-magnitude
/// headroom; see docs/ROBUSTNESS.md for the limit table.
struct ResourceLimits {
  /// Raw SQL text accepted by the tokenizer (bytes). Checked before any
  /// per-character work.
  size_t max_sql_bytes = size_t{1} << 20;  // 1 MiB
  /// Token count produced by the tokenizer.
  size_t max_tokens = size_t{1} << 17;  // 131072
  /// AST depth, both as parser recursion (nesting: parens, subqueries)
  /// and as post-parse tree height (which left-deep AND/OR chains grow
  /// without parser recursion). Bounding it here makes every downstream
  /// recursive walk — printer, clone, DNF, classifier, executor eval —
  /// stack-safe.
  size_t max_ast_depth = 400;
  /// Total AST nodes in one parsed statement.
  size_t max_ast_nodes = size_t{1} << 18;  // 262144
  /// Hard safety cap on DNF disjuncts. The paper-level knob
  /// (RewriteOptions::max_or_disjuncts, default 6) normally trips first
  /// with kRewriteError; this cap is the governance backstop should the
  /// paper knob be configured high.
  size_t max_dnf_disjuncts = 64;
  /// Rule-7 inclusion-exclusion emits 2^k - 1 cloned AND-only queries for
  /// k disjuncts; this caps the term count (and thus the clone memory).
  size_t max_ie_terms = 4096;
  /// Synopsis cell-grid budget (product of per-dimension sizes). Clamps
  /// SynopsisOptions::max_cells when wired through EngineOptions.
  uint64_t max_view_cells = uint64_t{1} << 21;
  /// Transient allocation budget for one unit of untrusted work: the
  /// `.vrsy` loader charges every array/string/vector it materializes
  /// against this before allocating.
  size_t max_arena_bytes = size_t{256} << 20;  // 256 MiB

  /// Shared default instance (the values above).
  static const ResourceLimits& Defaults();
  /// Effectively-unbounded limits, for benchmarking governance overhead
  /// and for trusted internal replays. Not "disabled": counters still
  /// run, the thresholds are just numeric_limits-sized.
  static ResourceLimits Unbounded();
};

std::ostream& operator<<(std::ostream& os, const ResourceLimits& l);

/// Mutable per-operation accounting against a ResourceLimits, threaded
/// through one parse / one rewrite / one bundle load. Cheap enough for
/// hot paths: each charge is an add + compare. Not thread-safe; one
/// tracker per operation.
class LimitTracker {
 public:
  explicit LimitTracker(const ResourceLimits& limits) : limits_(limits) {}

  const ResourceLimits& limits() const { return limits_; }

  /// Recursion-depth accounting (parser nesting). Pair with LeaveDepth.
  Status EnterDepth(const char* what) {
    if (++depth_ > limits_.max_ast_depth) {
      --depth_;
      return Exhausted(what, "depth", limits_.max_ast_depth);
    }
    return Status::OK();
  }
  void LeaveDepth() { --depth_; }

  /// AST node-count accounting.
  Status AddNodes(size_t n, const char* what) {
    nodes_ += n;
    if (nodes_ > limits_.max_ast_nodes) {
      return Exhausted(what, "node count", limits_.max_ast_nodes);
    }
    return Status::OK();
  }

  /// Allocation accounting (loader arena budget).
  Status AddBytes(size_t n, const char* what) {
    if (n > limits_.max_arena_bytes - bytes_) {  // overflow-safe
      return Exhausted(what, "allocation budget (bytes)",
                       limits_.max_arena_bytes);
    }
    bytes_ += n;
    return Status::OK();
  }

  size_t depth() const { return depth_; }
  size_t nodes() const { return nodes_; }
  size_t bytes() const { return bytes_; }

 private:
  static Status Exhausted(const char* what, const char* which, size_t limit);

  const ResourceLimits& limits_;
  size_t depth_ = 0;
  size_t nodes_ = 0;
  size_t bytes_ = 0;
};

/// `*out = a * b`, or false when the product overflows uint64. Used by
/// synopsis cell counting so the grid-size check trips before the
/// product wraps.
inline bool CheckedMulU64(uint64_t a, uint64_t b, uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
  return !__builtin_mul_overflow(a, b, out);
#else
  if (b != 0 && a > UINT64_MAX / b) return false;
  *out = a * b;
  return true;
#endif
}

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_LIMITS_H_
