#include "common/status.h"

namespace viewrewrite {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kRewriteError:
      return "RewriteError";
    case StatusCode::kPrivacyError:
      return "PrivacyError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace viewrewrite
