#ifndef VIEWREWRITE_COMMON_STATUS_H_
#define VIEWREWRITE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace viewrewrite {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a lightweight status object instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kTypeMismatch,
  kUnsupported,
  kExecutionError,
  kRewriteError,
  kPrivacyError,
  kInternal,
  kCorruption,    // persisted data failed validation (checksum, truncation)
  kUnavailable,   // transient capacity condition (queue full, shutting down)
  kDeadlineExceeded,  // per-request deadline elapsed before the answer
  kResourceExhausted,  // input breached a resource-governance limit
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome for operations that return no value.
///
/// All fallible APIs in this library return `Status` or `Result<T>`;
/// exceptions are not used. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status RewriteError(std::string msg) {
    return Status(StatusCode::kRewriteError, std::move(msg));
  }
  static Status PrivacyError(std::string msg) {
    return Status(StatusCode::kPrivacyError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define VR_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::viewrewrite::Status _st = (expr);         \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_STATUS_H_
