#include "common/retry.h"

#include <algorithm>

namespace viewrewrite {

bool IsRetryableStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
      return true;
    case StatusCode::kResourceExhausted:
      // The overload-shed signal: the server refused the work to protect
      // itself, so an immediate retry re-offers exactly the load being
      // shed. Explicitly non-retryable rather than relying on the
      // default arm — shed amplification is a correctness property of
      // the overload design, not an accident of omission.
      return false;
    default:
      return false;
  }
}

RetryBudget::RetryBudget(RetryBudgetOptions options) : options_(options) {
  options_.ratio = std::max(0.0, options_.ratio);
  options_.max_tokens = std::max(0.0, options_.max_tokens);
  options_.initial_tokens =
      std::clamp(options_.initial_tokens, 0.0, options_.max_tokens);
  tokens_ = options_.initial_tokens;
}

void RetryBudget::RecordRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.ratio);
}

bool RetryBudget::TryRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  // The balance accumulates in ratio-sized float steps (10 x 0.1 sums
  // to 0.99999...), so a strict >= 1.0 would owe the caller a retry it
  // arithmetically earned. The epsilon is far below any ratio in use.
  constexpr double kSlack = 1e-9;
  if (tokens_ < 1.0 - kSlack) {
    ++exhausted_;
    return false;
  }
  tokens_ = std::max(0.0, tokens_ - 1.0);
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

uint64_t RetryBudget::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exhausted_;
}

Backoff::Backoff(const RetryPolicy& policy, uint64_t seed)
    : policy_(policy),
      current_(std::max(policy.initial_backoff, std::chrono::nanoseconds(0))),
      prng_(seed) {
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  policy_.backoff_multiplier = std::max(1.0, policy_.backoff_multiplier);
  if (policy_.max_backoff < policy_.initial_backoff) {
    policy_.max_backoff = policy_.initial_backoff;
  }
}

std::chrono::nanoseconds Backoff::Next() {
  const std::chrono::nanoseconds base = current_;
  const double grown =
      static_cast<double>(base.count()) * policy_.backoff_multiplier;
  const double cap = static_cast<double>(policy_.max_backoff.count());
  current_ = std::chrono::nanoseconds(
      static_cast<int64_t>(std::min(grown, cap)));
  double factor = 1.0;
  if (policy_.jitter > 0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    factor = 1.0 - policy_.jitter * dist(prng_);
  }
  return std::chrono::nanoseconds(
      static_cast<int64_t>(static_cast<double>(base.count()) * factor));
}

}  // namespace viewrewrite
