#include "common/retry.h"

#include <algorithm>

namespace viewrewrite {

bool IsRetryableStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

Backoff::Backoff(const RetryPolicy& policy, uint64_t seed)
    : policy_(policy),
      current_(std::max(policy.initial_backoff, std::chrono::nanoseconds(0))),
      prng_(seed) {
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  policy_.backoff_multiplier = std::max(1.0, policy_.backoff_multiplier);
  if (policy_.max_backoff < policy_.initial_backoff) {
    policy_.max_backoff = policy_.initial_backoff;
  }
}

std::chrono::nanoseconds Backoff::Next() {
  const std::chrono::nanoseconds base = current_;
  const double grown =
      static_cast<double>(base.count()) * policy_.backoff_multiplier;
  const double cap = static_cast<double>(policy_.max_backoff.count());
  current_ = std::chrono::nanoseconds(
      static_cast<int64_t>(std::min(grown, cap)));
  double factor = 1.0;
  if (policy_.jitter > 0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    factor = 1.0 - policy_.jitter * dist(prng_);
  }
  return std::chrono::nanoseconds(
      static_cast<int64_t>(static_cast<double>(base.count()) * factor));
}

}  // namespace viewrewrite
