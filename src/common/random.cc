#include "common/random.h"

#include <cmath>

namespace viewrewrite {

double Random::Laplace(double scale) {
  // Inverse CDF: X = -b * sgn(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
  double u = UniformDouble() - 0.5;
  double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

int64_t Random::Zipf(int64_t n, double s) {
  // Rejection-inversion would be faster; for our data sizes a simple
  // inverse-transform over the normalized harmonic weights is sufficient
  // and exact. Cache-free implementation: O(n) per draw is too slow for
  // large n, so we use the clamped power-law approximation instead.
  double u = UniformDouble();
  // Approximate inverse CDF of a power-law with exponent s on [1, n].
  if (s == 1.0) {
    double h = std::log(static_cast<double>(n) + 1.0);
    return static_cast<int64_t>(std::exp(u * h));
  }
  double one_minus_s = 1.0 - s;
  double top = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
  double x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
  int64_t k = static_cast<int64_t>(x);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

}  // namespace viewrewrite
