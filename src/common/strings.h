#ifndef VIEWREWRITE_COMMON_STRINGS_H_
#define VIEWREWRITE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace viewrewrite {

/// ASCII lower-casing (SQL identifiers/keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_STRINGS_H_
