#ifndef VIEWREWRITE_COMMON_RANDOM_H_
#define VIEWREWRITE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace viewrewrite {

/// Deterministic pseudo-random source used by every randomized component
/// (data generation, workload generation, noise sampling). All behaviour is
/// reproducible from the 64-bit seed.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Laplace(0, scale) sample via inverse-CDF. Requires scale > 0.
  double Laplace(double scale);

  /// Zipf-distributed integer in [1, n] with exponent `s` (s > 0). Used to
  /// create skewed join fan-outs in synthetic data.
  int64_t Zipf(int64_t n, double s);

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream from one master seed.
  Random Fork() { return Random(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_RANDOM_H_
