#ifndef VIEWREWRITE_COMMON_CRC32_H_
#define VIEWREWRITE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace viewrewrite {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum
/// guarding each section of a persisted synopsis bundle. Software
/// table-driven implementation; no hardware dependency.
uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_CRC32_H_
