#ifndef VIEWREWRITE_COMMON_RETRY_H_
#define VIEWREWRITE_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <random>

#include "common/status.h"

namespace viewrewrite {

/// Bounded-attempt retry schedule with exponential backoff and seeded,
/// deterministic jitter. The policy is pure data; `Backoff` turns it into
/// a concrete delay sequence for one request.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  uint32_t max_attempts = 3;
  /// Delay before the second attempt; doubles (by `backoff_multiplier`)
  /// per further attempt, capped at `max_backoff`.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
  /// Fraction of each delay randomized away: the delay is scaled by a
  /// factor drawn uniformly from [1 - jitter, 1]. Zero disables jitter.
  double jitter = 0.5;
};

/// True for codes that may succeed on a later attempt with no semantic
/// change: transient capacity conditions (Unavailable) and internal /
/// injected faults. Semantic failures (parse, not-found, corruption,
/// privacy, deadline) never retry — repeating them cannot change the
/// outcome, only waste the deadline.
bool IsRetryableStatus(StatusCode code);

/// The delay sequence for one request. `Next()` returns the delay to
/// sleep before attempt 2, 3, ... Jitter is drawn from a dedicated
/// generator seeded with `seed`, so a fixed (policy, seed) pair always
/// replays the same schedule — the chaos harness depends on this.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, uint64_t seed);

  std::chrono::nanoseconds Next();

 private:
  RetryPolicy policy_;
  std::chrono::nanoseconds current_;
  std::mt19937_64 prng_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_RETRY_H_
