#ifndef VIEWREWRITE_COMMON_RETRY_H_
#define VIEWREWRITE_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <random>

#include "common/status.h"

namespace viewrewrite {

/// Bounded-attempt retry schedule with exponential backoff and seeded,
/// deterministic jitter. The policy is pure data; `Backoff` turns it into
/// a concrete delay sequence for one request.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  uint32_t max_attempts = 3;
  /// Delay before the second attempt; doubles (by `backoff_multiplier`)
  /// per further attempt, capped at `max_backoff`.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
  /// Fraction of each delay randomized away: the delay is scaled by a
  /// factor drawn uniformly from [1 - jitter, 1]. Zero disables jitter.
  double jitter = 0.5;
};

/// True for codes that may succeed on a later attempt with no semantic
/// change: transient capacity conditions (Unavailable) and internal /
/// injected faults. Semantic failures (parse, not-found, corruption,
/// privacy, deadline) never retry — repeating them cannot change the
/// outcome, only waste the deadline. ResourceExhausted is explicitly
/// non-retryable: it is the overload-shed signal, and retrying a shed
/// re-offers the very load that caused it (retry storms amplify
/// overload instead of riding out a blip).
bool IsRetryableStatus(StatusCode code);

/// Knobs for RetryBudget. The defaults (10 free tokens, then one retry
/// earned per 10 requests) match the classic client-library budget: a
/// few isolated failures retry freely, while a systemic failure — every
/// request failing — caps total attempts at ~1.1x the offered load
/// instead of multiplying it by max_attempts.
struct RetryBudgetOptions {
  /// Tokens deposited per recorded request (fractional).
  double ratio = 0.1;
  /// Token balance at construction (lets a cold server retry at all).
  double initial_tokens = 10;
  /// Balance cap, so a long quiet period cannot bank an unbounded
  /// retry burst.
  double max_tokens = 1000;
};

/// Server-wide retry *budget*: a token bucket that bounds how many
/// retries the retry machinery may add on top of the offered load.
/// Every first attempt deposits `ratio` tokens; every retry withdraws
/// one. When the bucket is empty, TryRetry refuses and the caller
/// surfaces the last error instead of re-attempting — under overload,
/// retries-of-sheds would otherwise multiply the load that caused the
/// shedding. Thread safe.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// Deposits for one logical request (call once per first attempt).
  void RecordRequest();

  /// Withdraws one token; false means the budget is exhausted and the
  /// retry must not happen.
  bool TryRetry();

  double tokens() const;
  /// Retries refused because the bucket was empty.
  uint64_t exhausted() const;

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t exhausted_ = 0;
};

/// The delay sequence for one request. `Next()` returns the delay to
/// sleep before attempt 2, 3, ... Jitter is drawn from a dedicated
/// generator seeded with `seed`, so a fixed (policy, seed) pair always
/// replays the same schedule — the chaos harness depends on this.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, uint64_t seed);

  std::chrono::nanoseconds Next();

 private:
  RetryPolicy policy_;
  std::chrono::nanoseconds current_;
  std::mt19937_64 prng_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_RETRY_H_
