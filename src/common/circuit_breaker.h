#ifndef VIEWREWRITE_COMMON_CIRCUIT_BREAKER_H_
#define VIEWREWRITE_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace viewrewrite {

struct CircuitBreakerOptions {
  /// Consecutive fault-domain failures that trip the breaker open.
  /// 0 disables the breaker entirely (Allow always returns true).
  uint32_t failure_threshold = 8;
  /// How long an open breaker rejects fast before admitting one probe.
  std::chrono::nanoseconds open_duration = std::chrono::milliseconds(100);
  /// Consecutive probe successes in half-open required to close again.
  uint32_t half_open_successes = 1;
};

/// Per-fault-domain circuit breaker (closed → open → half-open → closed).
///
/// When a dependency is failing repeatedly, continuing to hammer it wastes
/// worker time and deadline budget on attempts that will fail anyway. The
/// breaker trips after `failure_threshold` consecutive failures; while
/// open, callers are rejected immediately (cheap, no attempt made). After
/// `open_duration` it admits exactly one probe (half-open): success closes
/// the breaker, failure re-opens it for another cooldown.
///
/// Only fault-domain failures should be recorded — semantic errors like
/// NotFound or ParseError say nothing about the dependency's health and
/// must not trip the breaker (callers filter via IsRetryableStatus).
///
/// Thread safe. The clock is injectable so tests can drive the open →
/// half-open transition deterministically without sleeping.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  /// A null `clock` uses std::chrono::steady_clock::now.
  explicit CircuitBreaker(CircuitBreakerOptions options, ClockFn clock = {});

  /// True when a call may proceed. An open breaker past its cooldown
  /// flips to half-open and admits the caller as the single probe;
  /// otherwise open and half-open-with-probe-in-flight reject (counted
  /// in rejections()). Callers admitted while the breaker is tracking
  /// health must report back via RecordSuccess / RecordFailure.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Closed → open transitions (including half-open probes that failed).
  uint64_t trips() const;
  /// Calls rejected fast by Allow().
  uint64_t rejections() const;

 private:
  std::chrono::steady_clock::time_point Now() const;

  CircuitBreakerOptions options_;
  ClockFn clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t probe_successes_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
  uint64_t trips_ = 0;
  uint64_t rejections_ = 0;
};

const char* CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_CIRCUIT_BREAKER_H_
