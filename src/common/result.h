#ifndef VIEWREWRITE_COMMON_RESULT_H_
#define VIEWREWRITE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace viewrewrite {

/// A value-or-error outcome (Arrow's `Result<T>` idiom).
///
/// Holds either a `T` or a non-OK `Status`. Construction from an OK status
/// is a programming error. Access to the value when an error is held
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
  }
  /// Constructs a success result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the contained status (OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating an error Status; otherwise
/// move-assigns the value into `lhs` (which must be a declaration or an
/// existing variable).
#define VR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define VR_ASSIGN_OR_RETURN_CONCAT_INNER(x, y) x##y
#define VR_ASSIGN_OR_RETURN_CONCAT(x, y) VR_ASSIGN_OR_RETURN_CONCAT_INNER(x, y)

#define VR_ASSIGN_OR_RETURN(lhs, rexpr) \
  VR_ASSIGN_OR_RETURN_IMPL(             \
      VR_ASSIGN_OR_RETURN_CONCAT(_vr_result_, __LINE__), lhs, rexpr)

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_RESULT_H_
