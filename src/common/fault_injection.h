#ifndef VIEWREWRITE_COMMON_FAULT_INJECTION_H_
#define VIEWREWRITE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>

#include "common/status.h"

namespace viewrewrite {

/// Canonical fault-point names threaded through the pipeline. Each is a
/// cheap check (one relaxed atomic load when nothing is armed) at which
/// tests can deterministically force a failure.
namespace faults {
inline constexpr const char kParse[] = "parse";
inline constexpr const char kRewrite[] = "rewrite";
inline constexpr const char kViewRegister[] = "view.register";
inline constexpr const char kViewPublish[] = "view.publish";
inline constexpr const char kDpMechanism[] = "dp.mechanism";
inline constexpr const char kStorageCsv[] = "storage.csv";
inline constexpr const char kServeLoad[] = "serve.load";
inline constexpr const char kServeSave[] = "serve.save";
inline constexpr const char kServeAnswer[] = "serve.answer";
inline constexpr const char kServeReload[] = "serve.reload";
/// Overload-control admission gate: a firing fault forces the shed path
/// (brownout probe, then typed ResourceExhausted) for the request being
/// submitted, regardless of the limiter's state.
inline constexpr const char kServeOverload[] = "serve.overload";
/// Synopsis lifecycle (republisher): entry into a republish generation,
/// the per-view delta rebuild, and the final bundle swap into the server.
inline constexpr const char kServeRepublish[] = "serve.republish";
inline constexpr const char kRepublishBuild[] = "republish.build";
inline constexpr const char kRepublishSwap[] = "republish.swap";
/// Budget write-ahead ledger (budget_wal.h): entry into a record append,
/// the fsync that makes the record durable, and the checkpoint-compaction
/// rewrite. The kill-nine harness draws its SIGKILL sites from these.
inline constexpr const char kBudgetWalAppend[] = "budget.wal.append";
inline constexpr const char kBudgetWalFsync[] = "budget.wal.fsync";
inline constexpr const char kBudgetWalCheckpoint[] = "budget.wal.checkpoint";

/// Every registered point, for sweeps that arm the whole registry (the
/// chaos harness). Keep in sync with the constants above.
inline constexpr const char* kAllPoints[] = {
    kParse,          kRewrite,        kViewRegister,   kViewPublish,
    kDpMechanism,    kStorageCsv,     kServeLoad,      kServeSave,
    kServeAnswer,    kServeReload,    kServeOverload,  kServeRepublish,
    kRepublishBuild, kRepublishSwap,  kBudgetWalAppend,
    kBudgetWalFsync, kBudgetWalCheckpoint,
};
}  // namespace faults

/// Process-wide registry of armed fault points with deterministic
/// triggers: fail exactly once on the Nth hit, fail on every Nth hit, or
/// fail each hit with a seeded probability. Disabled points cost a single
/// relaxed atomic load at the call site (see VR_FAULT_POINT), so fault
/// points can stay compiled into release binaries.
///
/// Hit counts accumulate only while the point is armed; arming resets
/// them. All methods are thread-safe.
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// Arms `point` to fail exactly once, on its `nth` hit (1-based).
  /// Passing an OK `status` injects Status::Internal("injected fault...").
  void FailOnNth(const std::string& point, uint64_t nth,
                 Status status = Status());

  /// Arms `point` to fail on every `n`th hit (hits n, 2n, 3n, ...).
  void FailEveryN(const std::string& point, uint64_t n,
                  Status status = Status());

  /// Arms `point` to fail each hit independently with probability `p`,
  /// sampled from a dedicated generator seeded with `seed` so the firing
  /// pattern is reproducible.
  void FailWithProbability(const std::string& point, double p, uint64_t seed,
                           Status status = Status());

  /// Arms `point` to deliver SIGKILL to this process on its `nth` hit —
  /// the kill-nine harness's deterministic crash site. The process dies
  /// inside Check with no unwinding, no destructors and no flushes,
  /// exactly like an external `kill -9`. On platforms without raise(),
  /// falls back to injecting an Internal status.
  void KillOnNth(const std::string& point, uint64_t nth);

  void Disable(const std::string& point);
  void DisableAll();

  /// Hits observed at `point` since it was armed (0 if not armed).
  uint64_t HitCount(const std::string& point) const;

  /// True when at least one point is armed (lock-free fast path).
  static bool Armed() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Records a hit at `point` and returns the injected status when the
  /// trigger fires, OK otherwise. Call via VR_FAULT_POINT so disabled
  /// builds skip the lock entirely.
  Status Check(const std::string& point);

 private:
  FaultInjection() = default;

  enum class Trigger { kNth, kEveryN, kProbability };
  struct Point {
    Trigger trigger = Trigger::kNth;
    uint64_t n = 1;
    double probability = 0;
    std::mt19937_64 prng{0};
    Status status;
    uint64_t hits = 0;
    bool fired = false;  // kNth fires at most once
    bool kill = false;   // firing raises SIGKILL instead of returning status
  };

  void Arm(const std::string& point, Point p);

  static std::atomic<int> armed_points_;
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// RAII enablement for tests: arms a fault point on construction and
/// disarms it on destruction, so a failing test cannot leak an armed
/// fault into later tests.
class ScopedFault {
 public:
  static ScopedFault OnNth(const std::string& point, uint64_t nth,
                           Status status = Status());
  static ScopedFault EveryN(const std::string& point, uint64_t n,
                            Status status = Status());
  static ScopedFault WithProbability(const std::string& point, double p,
                                     uint64_t seed, Status status = Status());

  ScopedFault(ScopedFault&& other) noexcept;
  ScopedFault& operator=(ScopedFault&&) = delete;
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault();

 private:
  explicit ScopedFault(std::string point) : point_(std::move(point)) {}
  std::string point_;
};

/// Fault-point check: returns the injected Status out of the enclosing
/// function when the point fires. Works in functions returning Status or
/// Result<T> (Result converts implicitly from Status). Near-zero overhead
/// when nothing is armed: one relaxed atomic load, no lock, no string.
#define VR_FAULT_POINT(point)                                     \
  do {                                                            \
    if (::viewrewrite::FaultInjection::Armed()) {                 \
      ::viewrewrite::Status _vr_fault_status =                    \
          ::viewrewrite::FaultInjection::Instance().Check(point); \
      if (!_vr_fault_status.ok()) return _vr_fault_status;        \
    }                                                             \
  } while (false)

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_FAULT_INJECTION_H_
