#ifndef VIEWREWRITE_COMMON_DURABLE_FILE_H_
#define VIEWREWRITE_COMMON_DURABLE_FILE_H_

#include <string>

#include "common/status.h"

namespace viewrewrite {

/// Crash-safe file publication primitives shared by the synopsis store
/// and the budget WAL. The discipline is the classic one: write the
/// payload to a uniquely named temp file, fsync it, rename it over the
/// target, and fsync the parent directory so the rename itself is
/// durable. A crash at any point leaves either the previous file intact
/// or the new one fully durable — never a torn target.

/// Writes `blob` to `tmp` and forces it to stable storage before
/// returning. On POSIX this is open/write/fsync/close; elsewhere it falls
/// back to a plain stream write (no durability guarantee beyond the OS).
Status WriteFileDurably(const std::string& tmp, const std::string& blob);

/// Makes a rename of `path` itself durable by fsyncing its parent
/// directory — without this, a crash after rename can roll the directory
/// entry back to the old file (or to nothing). Best-effort no-op on
/// platforms without directory fds.
Status SyncParentDir(const std::string& path);

/// A temp name no other save (concurrent or crashed) can collide with:
/// `<path>.tmp.<pid>.<seq>`, with a process-wide monotonically increasing
/// sequence number.
std::string UniqueTempName(const std::string& path);

/// Sweeps `<basename>.tmp*` siblings of `path` left behind by crashed
/// saves. Best-effort (a sibling appearing or vanishing mid-scan is
/// fine), and a no-op off POSIX.
///
/// With `only_dead_owners`, temps whose name embeds the pid of a live
/// process (including this one) are kept: that is the safe mode for
/// load/startup-time sweeps, where another writer may legitimately have a
/// temp in flight. Without it, every temp sibling is removed — only
/// correct immediately after this process's own successful rename, when
/// it is the sole writer of `path`.
void SweepOrphanTemps(const std::string& path, bool only_dead_owners = false);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_DURABLE_FILE_H_
