#ifndef VIEWREWRITE_COMMON_DEADLINE_H_
#define VIEWREWRITE_COMMON_DEADLINE_H_

#include <chrono>

namespace viewrewrite {

/// A point in monotonic time after which work on one request should stop.
///
/// A default-constructed Deadline never expires; `After(timeout)` builds
/// one relative to now. Deadlines are plain values — copy them into a
/// request and check `expired()` at stage boundaries (parse, rewrite,
/// match, answer, between retry attempts). Cancellation is cooperative:
/// a stage runs to its next check, so the granularity of enforcement is
/// one pipeline stage, never a torn half-answer.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `timeout` from now. A zero or negative timeout is already
  /// expired — useful for deterministic tests of the timeout path.
  static Deadline After(Clock::duration timeout) {
    return Deadline(Clock::now() + timeout);
  }

  static Deadline At(Clock::time_point at) { return Deadline(at); }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// The absolute expiry instant (Clock::time_point::max() when
  /// infinite), for callers that combine deadlines — e.g. a coalesced
  /// flight tracking the latest deadline among its waiters.
  Clock::time_point when() const { return at_; }

  /// Time left: zero once expired, Clock::duration::max() when infinite.
  Clock::duration remaining() const {
    if (infinite()) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_COMMON_DEADLINE_H_
