#include "common/limits.h"

#include <limits>
#include <string>

namespace viewrewrite {

const ResourceLimits& ResourceLimits::Defaults() {
  static const ResourceLimits* kDefaults = new ResourceLimits();
  return *kDefaults;
}

ResourceLimits ResourceLimits::Unbounded() {
  ResourceLimits l;
  l.max_sql_bytes = std::numeric_limits<size_t>::max();
  l.max_tokens = std::numeric_limits<size_t>::max();
  // Depth stays bounded even in "unbounded" mode: machine stack is a hard
  // physical resource, and callers asking for no governance still must
  // not segfault. 1<<20 frames would already overflow any default stack,
  // so cap at a value that is generous yet survivable for the iterative
  // checks while keeping recursion guards meaningful.
  l.max_ast_depth = 100000;
  l.max_ast_nodes = std::numeric_limits<size_t>::max();
  l.max_dnf_disjuncts = std::numeric_limits<size_t>::max();
  l.max_ie_terms = std::numeric_limits<size_t>::max();
  l.max_view_cells = std::numeric_limits<uint64_t>::max();
  l.max_arena_bytes = std::numeric_limits<size_t>::max();
  return l;
}

std::ostream& operator<<(std::ostream& os, const ResourceLimits& l) {
  return os << "limits: sql_bytes=" << l.max_sql_bytes
            << " tokens=" << l.max_tokens << " ast_depth=" << l.max_ast_depth
            << " ast_nodes=" << l.max_ast_nodes
            << " dnf_disjuncts=" << l.max_dnf_disjuncts
            << " ie_terms=" << l.max_ie_terms
            << " view_cells=" << l.max_view_cells
            << " arena_bytes=" << l.max_arena_bytes;
}

Status LimitTracker::Exhausted(const char* what, const char* which,
                               size_t limit) {
  return Status::ResourceExhausted(std::string(what) + " exceeds the " +
                                   which + " limit (" +
                                   std::to_string(limit) + ")");
}

}  // namespace viewrewrite
