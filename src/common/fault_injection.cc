#include "common/fault_injection.h"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

namespace viewrewrite {

std::atomic<int> FaultInjection::armed_points_{0};

FaultInjection& FaultInjection::Instance() {
  // Leaked singleton: fault points may be checked during static
  // destruction of other objects.
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

namespace {

Status InjectedStatus(const std::string& point, Status status) {
  if (!status.ok()) return status;
  return Status::Internal("injected fault at '" + point + "'");
}

}  // namespace

void FaultInjection::Arm(const std::string& point, Point p) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(point, std::move(p));
  (void)it;
  if (inserted) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjection::FailOnNth(const std::string& point, uint64_t nth,
                               Status status) {
  Point p;
  p.trigger = Trigger::kNth;
  p.n = std::max<uint64_t>(1, nth);
  p.status = InjectedStatus(point, std::move(status));
  Arm(point, std::move(p));
}

void FaultInjection::FailEveryN(const std::string& point, uint64_t n,
                                Status status) {
  Point p;
  p.trigger = Trigger::kEveryN;
  p.n = std::max<uint64_t>(1, n);
  p.status = InjectedStatus(point, std::move(status));
  Arm(point, std::move(p));
}

void FaultInjection::FailWithProbability(const std::string& point, double p,
                                         uint64_t seed, Status status) {
  Point pt;
  pt.trigger = Trigger::kProbability;
  pt.probability = std::clamp(p, 0.0, 1.0);
  pt.prng.seed(seed);
  pt.status = InjectedStatus(point, std::move(status));
  Arm(point, std::move(pt));
}

void FaultInjection::KillOnNth(const std::string& point, uint64_t nth) {
  Point p;
  p.trigger = Trigger::kNth;
  p.n = std::max<uint64_t>(1, nth);
  p.kill = true;
  p.status = InjectedStatus(point, Status());
  Arm(point, std::move(p));
}

void FaultInjection::Disable(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

uint64_t FaultInjection::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

Status FaultInjection::Check(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  Point& p = it->second;
  ++p.hits;
  switch (p.trigger) {
    case Trigger::kNth:
      if (!p.fired && p.hits == p.n) {
        p.fired = true;
#if defined(__unix__) || defined(__APPLE__)
        // Kill mode: die here, mid-operation, with no unwinding — the
        // kill-nine harness recovers in the parent process.
        if (p.kill) ::raise(SIGKILL);
#endif
        return p.status;
      }
      return Status::OK();
    case Trigger::kEveryN:
      return p.hits % p.n == 0 ? p.status : Status::OK();
    case Trigger::kProbability: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      return dist(p.prng) < p.probability ? p.status : Status::OK();
    }
  }
  return Status::OK();
}

ScopedFault ScopedFault::OnNth(const std::string& point, uint64_t nth,
                               Status status) {
  FaultInjection::Instance().FailOnNth(point, nth, std::move(status));
  return ScopedFault(point);
}

ScopedFault ScopedFault::EveryN(const std::string& point, uint64_t n,
                                Status status) {
  FaultInjection::Instance().FailEveryN(point, n, std::move(status));
  return ScopedFault(point);
}

ScopedFault ScopedFault::WithProbability(const std::string& point, double p,
                                         uint64_t seed, Status status) {
  FaultInjection::Instance().FailWithProbability(point, p, seed,
                                                 std::move(status));
  return ScopedFault(point);
}

ScopedFault::ScopedFault(ScopedFault&& other) noexcept
    : point_(std::move(other.point_)) {
  other.point_.clear();
}

ScopedFault::~ScopedFault() {
  if (!point_.empty()) FaultInjection::Instance().Disable(point_);
}

}  // namespace viewrewrite
