#ifndef VIEWREWRITE_STORAGE_CSV_H_
#define VIEWREWRITE_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "exec/result_set.h"
#include "storage/table.h"

namespace viewrewrite {

/// CSV bridge so users can run the engine over their own data.
///
/// Format: RFC-4180-style — comma separator, double-quote quoting with ""
/// escapes, one record per line. Empty unquoted fields load as NULL;
/// numeric fields are parsed according to the target column type.

/// Appends rows from `csv_text` into `table` (types checked against the
/// table schema). `has_header` skips the first record.
Status LoadCsv(Table* table, const std::string& csv_text, bool has_header);

/// Loads a CSV file from disk into `table`.
Status LoadCsvFile(Table* table, const std::string& path, bool has_header);

/// Serializes a table (header + rows) as CSV text.
std::string TableToCsv(const Table& table);

/// Serializes a query result as CSV text.
std::string ResultSetToCsv(const ResultSet& rs);

/// Writes CSV text for `table` to `path`.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_STORAGE_CSV_H_
