#include "storage/table.h"

namespace viewrewrite {

Status Table::Insert(Row row) {
  const auto& cols = schema_.columns();
  if (row.size() != cols.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table '" +
        schema_.name() + "' arity " + std::to_string(cols.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Value& v = row[i];
    if (v.is_null()) continue;
    switch (cols[i].type) {
      case DataType::kInt:
        if (!v.is_int()) {
          return Status::TypeMismatch("column '" + cols[i].name +
                                      "' expects INT, got " +
                                      DataTypeName(v.type()));
        }
        break;
      case DataType::kDouble:
        if (v.is_int()) {
          v = Value::Double(static_cast<double>(v.AsInt()));
        } else if (!v.is_double()) {
          return Status::TypeMismatch("column '" + cols[i].name +
                                      "' expects DOUBLE, got " +
                                      DataTypeName(v.type()));
        }
        break;
      case DataType::kString:
        if (!v.is_string()) {
          return Status::TypeMismatch("column '" + cols[i].name +
                                      "' expects STRING, got " +
                                      DataTypeName(v.type()));
        }
        break;
      case DataType::kNull:
        break;
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) {
    return Status::NotFound("no table instance named '" + name + "'");
  }
  return t;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, t] : tables_) n += t.NumRows();
  return n;
}

}  // namespace viewrewrite
