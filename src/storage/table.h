#ifndef VIEWREWRITE_STORAGE_TABLE_H_
#define VIEWREWRITE_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "sql/value.h"

namespace viewrewrite {

using Row = std::vector<Value>;

/// An in-memory row-store relation instance.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Appends a row after arity/type checking (NULLs always allowed;
  /// ints widen to double columns).
  Status Insert(Row row);

  /// Appends without checking; used by bulk generators that construct
  /// rows schema-correct by design.
  void InsertUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
};

/// A database instance: a schema plus one Table per relation.
class Database {
 public:
  explicit Database(Schema schema) : schema_(std::move(schema)) {
    for (const std::string& name : schema_.TableNames()) {
      tables_.emplace(name, Table(*schema_.FindTable(name)));
    }
  }

  const Schema& schema() const { return schema_; }

  const Table* FindTable(const std::string& name) const;
  Table* MutableTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Total row count across all relations (used to report "database size").
  size_t TotalRows() const;

 private:
  Schema schema_;
  std::map<std::string, Table> tables_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_STORAGE_TABLE_H_
