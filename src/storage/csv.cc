#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace viewrewrite {

namespace {

/// Splits one CSV record honouring quotes. Returns false on a dangling
/// quote.
bool SplitRecord(const std::string& line, std::vector<std::string>* fields,
                 std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      was_quoted = true;
      continue;
    }
    if (c == ',') {
      fields->push_back(cur);
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
      continue;
    }
    if (c == '\r') continue;
    cur += c;
  }
  if (in_quotes) return false;
  fields->push_back(cur);
  quoted->push_back(was_quoted);
  return true;
}

Result<Value> ParseField(const std::string& field, bool was_quoted,
                         DataType type) {
  if (field.empty() && !was_quoted) return Value::Null();
  switch (type) {
    case DataType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeMismatch("'" + field + "' is not an integer");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeMismatch("'" + field + "' is not a number");
      }
      return Value::Double(v);
    }
    case DataType::kString:
    case DataType::kNull:
      return Value::String(field);
  }
  return Status::Internal("unknown column type");
}

std::string EscapeField(const Value& v) {
  if (v.is_null()) return "";
  std::string raw;
  if (v.is_string()) {
    raw = v.AsString();
  } else if (v.is_int()) {
    raw = std::to_string(v.AsInt());
  } else {
    std::ostringstream os;
    os << v.AsDoubleExact();
    raw = os.str();
  }
  bool needs_quotes = raw.find_first_of(",\"\n") != std::string::npos ||
                      (v.is_string() && raw.empty());
  if (!needs_quotes) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Status LoadCsv(Table* table, const std::string& csv_text, bool has_header) {
  VR_FAULT_POINT(faults::kStorageCsv);
  std::istringstream in(csv_text);
  std::string line;
  size_t line_no = 0;
  const auto& cols = table->schema().columns();
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && has_header) continue;
    if (line.empty()) continue;
    if (!SplitRecord(line, &fields, &quoted)) {
      return Status::ParseError("unterminated quote on line " +
                                std::to_string(line_no));
    }
    if (fields.size() != cols.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, table '" +
          table->schema().name() + "' expects " +
          std::to_string(cols.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      VR_ASSIGN_OR_RETURN(Value v,
                          ParseField(fields[i], quoted[i], cols[i].type));
      row.push_back(std::move(v));
    }
    VR_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  return Status::OK();
}

Status LoadCsvFile(Table* table, const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(table, buffer.str(), has_header);
}

std::string TableToCsv(const Table& table) {
  std::string out;
  const auto& cols = table.schema().columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += cols[i].name;
  }
  out += "\n";
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += EscapeField(row[i]);
    }
    out += "\n";
  }
  return out;
}

std::string ResultSetToCsv(const ResultSet& rs) {
  std::string out;
  for (size_t i = 0; i < rs.columns.size(); ++i) {
    if (i > 0) out += ",";
    out += rs.columns[i];
  }
  out += "\n";
  for (const Row& row : rs.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += EscapeField(row[i]);
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out << TableToCsv(table);
  return Status::OK();
}

}  // namespace viewrewrite
