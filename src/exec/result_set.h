#ifndef VIEWREWRITE_EXEC_RESULT_SET_H_
#define VIEWREWRITE_EXEC_RESULT_SET_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace viewrewrite {

/// Materialized query output: named columns plus rows.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return columns.size(); }

  /// Index of `name` in columns, or -1.
  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_EXEC_RESULT_SET_H_
