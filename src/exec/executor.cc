#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "sql/printer.h"

namespace viewrewrite {

namespace {

// --------------------------------------------------------------------------
// Three-valued logic
// --------------------------------------------------------------------------

enum class Tri { kFalse, kTrue, kNull };

Tri ValueToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_numeric()) return v.ToDouble() != 0.0 ? Tri::kTrue : Tri::kFalse;
  return v.AsString().empty() ? Tri::kFalse : Tri::kTrue;
}

Value TriToValue(Tri t) {
  switch (t) {
    case Tri::kFalse: return Value::Int(0);
    case Tri::kTrue: return Value::Int(1);
    case Tri::kNull: return Value::Null();
  }
  return Value::Null();
}

// --------------------------------------------------------------------------
// Intermediate relations
// --------------------------------------------------------------------------

/// A materialized intermediate relation whose columns carry their binding
/// qualifier (table alias / CTE name / derived-table alias).
struct Rel {
  std::vector<std::pair<std::string, std::string>> cols;  // (binding, name)
  std::vector<Row> rows;

  int FindQualified(const std::string& binding, const std::string& col) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].first == binding && cols[i].second == col) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  /// Returns column index; -1 if absent, -2 if ambiguous.
  int FindUnqualified(const std::string& col) const {
    int found = -1;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].second == col) {
        if (found >= 0) return -2;
        found = static_cast<int>(i);
      }
    }
    return found;
  }

  int Find(const ColumnRefExpr& ref) const {
    if (!ref.table.empty()) return FindQualified(ref.table, ref.column);
    return FindUnqualified(ref.column);
  }
};

/// Evaluation scope: the current tuple of a Rel plus the enclosing query's
/// scope for correlated subqueries.
struct Scope {
  const Rel* rel = nullptr;
  const Row* row = nullptr;
  const Scope* parent = nullptr;
};

/// CTE visibility frame (WITH clauses are lexically scoped).
struct CteFrame {
  std::map<std::string, const ResultSet*> ctes;
  const CteFrame* parent = nullptr;

  const ResultSet* Find(const std::string& name) const {
    for (const CteFrame* f = this; f != nullptr; f = f->parent) {
      auto it = f->ctes.find(name);
      if (it != f->ctes.end()) return it->second;
    }
    return nullptr;
  }
};

bool IsAggregateCall(const Expr& e) {
  return e.kind == ExprKind::kFuncCall &&
         static_cast<const FuncCallExpr&>(e).IsAggregate();
}

/// Collects aggregate calls in `e` without descending into subqueries or
/// into aggregate arguments.
void CollectAggregates(const Expr* e, std::vector<const FuncCallExpr*>* out) {
  if (e == nullptr) return;
  if (IsAggregateCall(*e)) {
    out->push_back(static_cast<const FuncCallExpr*>(e));
    return;
  }
  switch (e->kind) {
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      CollectAggregates(b->left.get(), out);
      CollectAggregates(b->right.get(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(static_cast<const UnaryExpr*>(e)->operand.get(), out);
      return;
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) CollectAggregates(a.get(), out);
      return;
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const InExpr*>(e);
      CollectAggregates(in->lhs.get(), out);
      for (const auto& v : in->value_list) CollectAggregates(v.get(), out);
      return;
    }
    case ExprKind::kQuantifiedCmp:
      CollectAggregates(
          static_cast<const QuantifiedCmpExpr*>(e)->lhs.get(), out);
      return;
    default:
      return;
  }
}

/// True if evaluating `e` needs no subquery machinery (safe for pushdown).
bool IsPureScalar(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kParam:
      return true;
    case ExprKind::kStar:
      return false;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return IsPureScalar(*b.left) && IsPureScalar(*b.right);
    }
    case ExprKind::kUnary:
      return IsPureScalar(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(e);
      if (f.IsAggregate()) return false;
      for (const auto& a : f.args) {
        if (!IsPureScalar(*a)) return false;
      }
      return true;
    }
    default:
      return false;  // subqueries
  }
}

/// Collects all column refs in a pure-scalar expression.
void CollectColumnRefs(const Expr* e, std::vector<const ColumnRefExpr*>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::kColumnRef:
      out->push_back(static_cast<const ColumnRefExpr*>(e));
      return;
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      CollectColumnRefs(b->left.get(), out);
      CollectColumnRefs(b->right.get(), out);
      return;
    }
    case ExprKind::kUnary:
      CollectColumnRefs(static_cast<const UnaryExpr*>(e)->operand.get(), out);
      return;
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) CollectColumnRefs(a.get(), out);
      return;
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const InExpr*>(e);
      CollectColumnRefs(in->lhs.get(), out);
      for (const auto& v : in->value_list) CollectColumnRefs(v.get(), out);
      return;
    }
    default:
      return;
  }
}

// --------------------------------------------------------------------------
// Engine
// --------------------------------------------------------------------------

class Engine {
 public:
  Engine(const Database& db, const ParamMap& params)
      : db_(db), params_(params) {}

  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, const CteFrame* ctes,
                                  const Scope* outer);

 private:
  // Table references -------------------------------------------------------

  Result<Rel> EvalTableRef(const TableRef& ref, const CteFrame* ctes,
                           const Scope* outer);

  Result<Rel> JoinRels(JoinType type, Rel left, Rel right, const Expr* cond,
                       const CteFrame* ctes, const Scope* outer);

  // Expressions -------------------------------------------------------------

  /// Aggregate overlay consulted during grouped evaluation: serialized
  /// expression -> per-group value.
  using ExprEnv = std::map<std::string, Value>;

  Result<Value> Eval(const Expr& e, const Scope& scope, const CteFrame* ctes,
                     const ExprEnv* env);

  Result<Tri> EvalPredicate(const Expr& e, const Scope& scope,
                            const CteFrame* ctes, const ExprEnv* env) {
    VR_ASSIGN_OR_RETURN(Value v, Eval(e, scope, ctes, env));
    return ValueToTri(v);
  }

  Result<Value> EvalFuncCall(const FuncCallExpr& f, const Scope& scope,
                             const CteFrame* ctes, const ExprEnv* env);
  Result<Value> EvalBinary(const BinaryExpr& b, const Scope& scope,
                           const CteFrame* ctes, const ExprEnv* env);
  Result<Value> EvalIn(const InExpr& in, const Scope& scope,
                       const CteFrame* ctes, const ExprEnv* env);
  Result<Value> EvalQuantified(const QuantifiedCmpExpr& q, const Scope& scope,
                               const CteFrame* ctes, const ExprEnv* env);

  /// Runs `sub` as a subquery with `outer` as the correlation scope.
  Result<ResultSet> RunSubquery(const SelectStmt& sub, const Scope& outer,
                                const CteFrame* ctes) {
    return ExecuteSelect(sub, ctes, &outer);
  }

  // Aggregation -------------------------------------------------------------

  Result<Value> ComputeAggregate(const FuncCallExpr& agg,
                                 const Rel& rel,
                                 const std::vector<size_t>& group_rows,
                                 const CteFrame* ctes, const Scope* outer);

  const Database& db_;
  const ParamMap& params_;
};

Result<Rel> Engine::EvalTableRef(const TableRef& ref, const CteFrame* ctes,
                                 const Scope* outer) {
  switch (ref.kind) {
    case TableRefKind::kBase: {
      const auto& base = static_cast<const BaseTableRef&>(ref);
      Rel rel;
      const std::string binding = base.BindingName();
      // A WITH name shadows a base table of the same name.
      if (ctes != nullptr) {
        const ResultSet* cte = ctes->Find(base.name);
        if (cte != nullptr) {
          for (const auto& c : cte->columns) rel.cols.emplace_back(binding, c);
          rel.rows = cte->rows;
          return rel;
        }
      }
      VR_ASSIGN_OR_RETURN(const Table* table, db_.GetTable(base.name));
      for (const auto& c : table->schema().columns()) {
        rel.cols.emplace_back(binding, c.name);
      }
      rel.rows = table->rows();
      return rel;
    }
    case TableRefKind::kDerived: {
      const auto& d = static_cast<const DerivedTableRef&>(ref);
      VR_ASSIGN_OR_RETURN(ResultSet rs,
                          ExecuteSelect(*d.subquery, ctes, outer));
      Rel rel;
      for (const auto& c : rs.columns) rel.cols.emplace_back(d.alias, c);
      rel.rows = std::move(rs.rows);
      return rel;
    }
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      VR_ASSIGN_OR_RETURN(Rel left, EvalTableRef(*j.left, ctes, outer));
      VR_ASSIGN_OR_RETURN(Rel right, EvalTableRef(*j.right, ctes, outer));
      return JoinRels(j.join_type, std::move(left), std::move(right),
                      j.condition.get(), ctes, outer);
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<Rel> Engine::JoinRels(JoinType type, Rel left, Rel right,
                             const Expr* cond, const CteFrame* ctes,
                             const Scope* outer) {
  Rel out;
  out.cols = left.cols;

  // NATURAL JOIN: derive the equality condition from common column names and
  // drop the right-hand duplicates from the output.
  std::vector<int> natural_right_keep;  // right col indices kept in output
  std::vector<std::pair<int, int>> equi;  // (left idx, right idx)
  std::vector<const Expr*> residual;

  if (type == JoinType::kNatural) {
    std::set<int> dropped;
    for (size_t li = 0; li < left.cols.size(); ++li) {
      for (size_t ri = 0; ri < right.cols.size(); ++ri) {
        if (left.cols[li].second == right.cols[ri].second) {
          equi.emplace_back(static_cast<int>(li), static_cast<int>(ri));
          dropped.insert(static_cast<int>(ri));
        }
      }
    }
    for (size_t ri = 0; ri < right.cols.size(); ++ri) {
      if (dropped.count(static_cast<int>(ri)) == 0) {
        natural_right_keep.push_back(static_cast<int>(ri));
        out.cols.push_back(right.cols[ri]);
      }
    }
    if (equi.empty()) {
      return Status::ExecutionError("NATURAL JOIN with no common columns");
    }
  } else {
    for (const auto& c : right.cols) out.cols.push_back(c);
    for (size_t ri = 0; ri < right.cols.size(); ++ri) {
      natural_right_keep.push_back(static_cast<int>(ri));
    }
    // Extract equi-join conjuncts `l.col = r.col` from the ON condition.
    for (const Expr* c : CollectConjuncts(cond)) {
      bool matched = false;
      if (c->kind == ExprKind::kBinary) {
        const auto* b = static_cast<const BinaryExpr*>(c);
        if (b->op == BinaryOp::kEq &&
            b->left->kind == ExprKind::kColumnRef &&
            b->right->kind == ExprKind::kColumnRef) {
          const auto& lc = static_cast<const ColumnRefExpr&>(*b->left);
          const auto& rc = static_cast<const ColumnRefExpr&>(*b->right);
          int li = left.Find(lc);
          int ri = right.Find(rc);
          if (li >= 0 && ri >= 0) {
            equi.emplace_back(li, ri);
            matched = true;
          } else {
            li = left.Find(rc);
            ri = right.Find(lc);
            if (li >= 0 && ri >= 0) {
              equi.emplace_back(li, ri);
              matched = true;
            }
          }
        }
      }
      if (!matched) residual.push_back(c);
    }
  }

  const size_t right_width = natural_right_keep.size();

  // Scope for residual evaluation over the combined row.
  auto eval_residual = [&](const Row& combined) -> Result<bool> {
    Scope scope{&out, &combined, outer};
    for (const Expr* r : residual) {
      VR_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*r, scope, ctes, nullptr));
      if (t != Tri::kTrue) return false;
    }
    return true;
  };

  auto combine = [&](const Row& l, const Row& r) {
    Row combined;
    combined.reserve(l.size() + right_width);
    combined.insert(combined.end(), l.begin(), l.end());
    for (int ri : natural_right_keep) combined.push_back(r[ri]);
    return combined;
  };

  if (!equi.empty()) {
    // Hash join: build on right, probe with left.
    std::unordered_map<std::vector<Value>, std::vector<size_t>,
                       ValueVectorHash>
        index;
    index.reserve(right.rows.size());
    for (size_t i = 0; i < right.rows.size(); ++i) {
      std::vector<Value> key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& [li, ri] : equi) {
        const Value& v = right.rows[i][ri];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;  // NULL never equi-matches
      index[std::move(key)].push_back(i);
    }
    for (const Row& lrow : left.rows) {
      std::vector<Value> key;
      key.reserve(equi.size());
      bool has_null = false;
      for (const auto& [li, ri] : equi) {
        const Value& v = lrow[li];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      bool matched = false;
      if (!has_null) {
        auto it = index.find(key);
        if (it != index.end()) {
          for (size_t ri_row : it->second) {
            Row combined = combine(lrow, right.rows[ri_row]);
            VR_ASSIGN_OR_RETURN(bool pass, eval_residual(combined));
            if (pass) {
              matched = true;
              out.rows.push_back(std::move(combined));
            }
          }
        }
      }
      if (!matched && type == JoinType::kLeft) {
        Row combined = lrow;
        combined.resize(lrow.size() + right_width, Value::Null());
        out.rows.push_back(std::move(combined));
      }
    }
    return out;
  }

  // Nested-loop join (cross / non-equi conditions).
  for (const Row& lrow : left.rows) {
    bool matched = false;
    for (const Row& rrow : right.rows) {
      Row combined = combine(lrow, rrow);
      VR_ASSIGN_OR_RETURN(bool pass, eval_residual(combined));
      if (pass) {
        matched = true;
        out.rows.push_back(std::move(combined));
      }
    }
    if (!matched && type == JoinType::kLeft) {
      Row combined = lrow;
      combined.resize(lrow.size() + right_width, Value::Null());
      out.rows.push_back(std::move(combined));
    }
  }
  return out;
}

Result<Value> Engine::EvalBinary(const BinaryExpr& b, const Scope& scope,
                                 const CteFrame* ctes, const ExprEnv* env) {
  if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
    VR_ASSIGN_OR_RETURN(Tri l, EvalPredicate(*b.left, scope, ctes, env));
    // Short-circuit where three-valued logic allows it.
    if (b.op == BinaryOp::kAnd && l == Tri::kFalse) {
      return TriToValue(Tri::kFalse);
    }
    if (b.op == BinaryOp::kOr && l == Tri::kTrue) {
      return TriToValue(Tri::kTrue);
    }
    VR_ASSIGN_OR_RETURN(Tri r, EvalPredicate(*b.right, scope, ctes, env));
    if (b.op == BinaryOp::kAnd) {
      if (r == Tri::kFalse) return TriToValue(Tri::kFalse);
      if (l == Tri::kNull || r == Tri::kNull) return TriToValue(Tri::kNull);
      return TriToValue(Tri::kTrue);
    }
    if (r == Tri::kTrue) return TriToValue(Tri::kTrue);
    if (l == Tri::kNull || r == Tri::kNull) return TriToValue(Tri::kNull);
    return TriToValue(Tri::kFalse);
  }

  VR_ASSIGN_OR_RETURN(Value l, Eval(*b.left, scope, ctes, env));
  VR_ASSIGN_OR_RETURN(Value r, Eval(*b.right, scope, ctes, env));

  if (IsComparisonOp(b.op)) {
    VR_ASSIGN_OR_RETURN(Value::TriCompare c, l.CompareSql(r));
    if (c.is_null) return Value::Null();
    bool res = false;
    switch (b.op) {
      case BinaryOp::kEq: res = (c.cmp == 0); break;
      case BinaryOp::kNe: res = (c.cmp != 0); break;
      case BinaryOp::kLt: res = (c.cmp < 0); break;
      case BinaryOp::kLe: res = (c.cmp <= 0); break;
      case BinaryOp::kGt: res = (c.cmp > 0); break;
      case BinaryOp::kGe: res = (c.cmp >= 0); break;
      default: break;
    }
    return Value::Int(res ? 1 : 0);
  }

  // Arithmetic.
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeMismatch("arithmetic on non-numeric operands");
  }
  if (b.op == BinaryOp::kDiv) {
    double divisor = r.ToDouble();
    if (divisor == 0.0) {
      return Status::ExecutionError("division by zero");
    }
    return Value::Double(l.ToDouble() / divisor);
  }
  if (l.is_int() && r.is_int()) {
    int64_t a = l.AsInt();
    int64_t c = r.AsInt();
    switch (b.op) {
      case BinaryOp::kAdd: return Value::Int(a + c);
      case BinaryOp::kSub: return Value::Int(a - c);
      case BinaryOp::kMul: return Value::Int(a * c);
      default: break;
    }
  }
  double a = l.ToDouble();
  double c = r.ToDouble();
  switch (b.op) {
    case BinaryOp::kAdd: return Value::Double(a + c);
    case BinaryOp::kSub: return Value::Double(a - c);
    case BinaryOp::kMul: return Value::Double(a * c);
    default: break;
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> Engine::EvalFuncCall(const FuncCallExpr& f, const Scope& scope,
                                   const CteFrame* ctes, const ExprEnv* env) {
  if (f.IsAggregate()) {
    // Inside a grouped evaluation the value is supplied via the overlay.
    if (env != nullptr) {
      auto it = env->find(ToSql(f));
      if (it != env->end()) return it->second;
    }
    return Status::ExecutionError("aggregate '" + f.name +
                                  "' used outside a grouped context");
  }
  if (f.name == "coalesce") {
    for (const auto& a : f.args) {
      VR_ASSIGN_OR_RETURN(Value v, Eval(*a, scope, ctes, env));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (f.name == "isnull" || f.name == "isnotnull") {
    if (f.args.size() != 1) {
      return Status::InvalidArgument(f.name + " takes one argument");
    }
    VR_ASSIGN_OR_RETURN(Value v, Eval(*f.args[0], scope, ctes, env));
    bool is_null = v.is_null();
    return Value::Int((f.name == "isnull") == is_null ? 1 : 0);
  }
  if (f.name == "ifpos") {
    // Internal CASE-WHEN equivalent used by the rewriter: returns the
    // second argument when the first is TRUE, NULL otherwise.
    if (f.args.size() != 2) {
      return Status::InvalidArgument("ifpos takes two arguments");
    }
    VR_ASSIGN_OR_RETURN(Tri cond, EvalPredicate(*f.args[0], scope, ctes, env));
    if (cond != Tri::kTrue) return Value::Null();
    return Eval(*f.args[1], scope, ctes, env);
  }
  if (f.name == "abs") {
    if (f.args.size() != 1) {
      return Status::InvalidArgument("abs takes one argument");
    }
    VR_ASSIGN_OR_RETURN(Value v, Eval(*f.args[0], scope, ctes, env));
    if (v.is_null()) return Value::Null();
    if (v.is_int()) return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
    if (v.is_double()) {
      double d = v.AsDoubleExact();
      return Value::Double(d < 0 ? -d : d);
    }
    return Status::TypeMismatch("abs of non-numeric value");
  }
  return Status::Unsupported("unknown function '" + f.name + "'");
}

Result<Value> Engine::EvalIn(const InExpr& in, const Scope& scope,
                             const CteFrame* ctes, const ExprEnv* env) {
  VR_ASSIGN_OR_RETURN(Value lhs, Eval(*in.lhs, scope, ctes, env));
  if (lhs.is_null()) return Value::Null();

  bool any_match = false;
  bool any_null = false;
  auto consider = [&](const Value& v) -> Status {
    if (v.is_null()) {
      any_null = true;
      return Status::OK();
    }
    VR_ASSIGN_OR_RETURN(Value::TriCompare c, lhs.CompareSql(v));
    if (!c.is_null && c.cmp == 0) any_match = true;
    return Status::OK();
  };

  if (in.subquery != nullptr) {
    VR_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(*in.subquery, scope, ctes));
    if (rs.NumColumns() != 1) {
      return Status::ExecutionError("IN subquery must produce one column");
    }
    for (const Row& r : rs.rows) {
      VR_RETURN_NOT_OK(consider(r[0]));
      if (any_match) break;
    }
  } else {
    for (const auto& item : in.value_list) {
      VR_ASSIGN_OR_RETURN(Value v, Eval(*item, scope, ctes, env));
      VR_RETURN_NOT_OK(consider(v));
      if (any_match) break;
    }
  }

  Tri result;
  if (any_match) {
    result = Tri::kTrue;
  } else if (any_null) {
    result = Tri::kNull;
  } else {
    result = Tri::kFalse;
  }
  if (in.negated) {
    if (result == Tri::kTrue) result = Tri::kFalse;
    else if (result == Tri::kFalse) result = Tri::kTrue;
  }
  return TriToValue(result);
}

Result<Value> Engine::EvalQuantified(const QuantifiedCmpExpr& q,
                                     const Scope& scope, const CteFrame* ctes,
                                     const ExprEnv* env) {
  VR_ASSIGN_OR_RETURN(Value lhs, Eval(*q.lhs, scope, ctes, env));
  VR_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(*q.subquery, scope, ctes));
  if (rs.NumColumns() != 1) {
    return Status::ExecutionError(
        "quantified subquery must produce one column");
  }
  if (q.quantifier == Quantifier::kAny) {
    // x op ANY S: TRUE if some comparison is TRUE; NULL if none TRUE but
    // some NULL; FALSE otherwise (including empty S).
    bool any_null = false;
    for (const Row& r : rs.rows) {
      if (lhs.is_null() || r[0].is_null()) {
        any_null = true;
        continue;
      }
      VR_ASSIGN_OR_RETURN(Value::TriCompare c, lhs.CompareSql(r[0]));
      bool res = false;
      switch (q.op) {
        case BinaryOp::kEq: res = (c.cmp == 0); break;
        case BinaryOp::kNe: res = (c.cmp != 0); break;
        case BinaryOp::kLt: res = (c.cmp < 0); break;
        case BinaryOp::kLe: res = (c.cmp <= 0); break;
        case BinaryOp::kGt: res = (c.cmp > 0); break;
        case BinaryOp::kGe: res = (c.cmp >= 0); break;
        default: break;
      }
      if (res) return TriToValue(Tri::kTrue);
    }
    return TriToValue(any_null ? Tri::kNull : Tri::kFalse);
  }
  // ALL: TRUE if every comparison is TRUE (empty S -> TRUE); FALSE if some
  // comparison is FALSE; NULL otherwise.
  bool any_null = false;
  for (const Row& r : rs.rows) {
    if (lhs.is_null() || r[0].is_null()) {
      any_null = true;
      continue;
    }
    VR_ASSIGN_OR_RETURN(Value::TriCompare c, lhs.CompareSql(r[0]));
    bool res = false;
    switch (q.op) {
      case BinaryOp::kEq: res = (c.cmp == 0); break;
      case BinaryOp::kNe: res = (c.cmp != 0); break;
      case BinaryOp::kLt: res = (c.cmp < 0); break;
      case BinaryOp::kLe: res = (c.cmp <= 0); break;
      case BinaryOp::kGt: res = (c.cmp > 0); break;
      case BinaryOp::kGe: res = (c.cmp >= 0); break;
      default: break;
    }
    if (!res) return TriToValue(Tri::kFalse);
  }
  return TriToValue(any_null ? Tri::kNull : Tri::kTrue);
}

Result<Value> Engine::Eval(const Expr& e, const Scope& scope,
                           const CteFrame* ctes, const ExprEnv* env) {
  // The grouped-evaluation overlay may pin any subexpression's value
  // (aggregates and select aliases).
  if (env != nullptr && e.kind == ExprKind::kColumnRef) {
    const auto& c = static_cast<const ColumnRefExpr&>(e);
    auto it = env->find(c.FullName());
    if (it != env->end()) return it->second;
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value;
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      for (const Scope* s = &scope; s != nullptr; s = s->parent) {
        if (s->rel == nullptr) continue;
        int idx = s->rel->Find(c);
        if (idx == -2) {
          return Status::ExecutionError("ambiguous column '" + c.FullName() +
                                        "'");
        }
        if (idx >= 0) return (*s->row)[idx];
      }
      return Status::NotFound("unresolved column '" + c.FullName() + "'");
    }
    case ExprKind::kStar:
      return Status::ExecutionError("'*' is only valid inside COUNT(*)");
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e), scope, ctes, env);
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnaryOp::kNot) {
        VR_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*u.operand, scope, ctes, env));
        if (t == Tri::kNull) return Value::Null();
        return Value::Int(t == Tri::kTrue ? 0 : 1);
      }
      VR_ASSIGN_OR_RETURN(Value v, Eval(*u.operand, scope, ctes, env));
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Double(-v.AsDoubleExact());
      return Status::TypeMismatch("negation of non-numeric value");
    }
    case ExprKind::kFuncCall:
      return EvalFuncCall(static_cast<const FuncCallExpr&>(e), scope, ctes,
                          env);
    case ExprKind::kScalarSubquery: {
      const auto& sq = static_cast<const ScalarSubqueryExpr&>(e);
      VR_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(*sq.subquery, scope, ctes));
      if (rs.NumColumns() != 1) {
        return Status::ExecutionError("scalar subquery must yield one column");
      }
      if (rs.NumRows() == 0) return Value::Null();
      if (rs.NumRows() > 1) {
        return Status::ExecutionError(
            "scalar subquery produced more than one row");
      }
      return rs.rows[0][0];
    }
    case ExprKind::kIn:
      return EvalIn(static_cast<const InExpr&>(e), scope, ctes, env);
    case ExprKind::kExists: {
      const auto& ex = static_cast<const ExistsExpr&>(e);
      VR_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(*ex.subquery, scope, ctes));
      bool exists = rs.NumRows() > 0;
      return Value::Int((exists != ex.negated) ? 1 : 0);
    }
    case ExprKind::kQuantifiedCmp:
      return EvalQuantified(static_cast<const QuantifiedCmpExpr&>(e), scope,
                            ctes, env);
    case ExprKind::kParam: {
      const auto& p = static_cast<const ParamExpr&>(e);
      auto it = params_.find(p.name);
      if (it == params_.end()) {
        return Status::NotFound("unbound parameter '$" + p.name + "'");
      }
      return it->second;
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Engine::ComputeAggregate(const FuncCallExpr& agg, const Rel& rel,
                                       const std::vector<size_t>& group_rows,
                                       const CteFrame* ctes,
                                       const Scope* outer) {
  const bool is_star =
      agg.args.size() == 1 && agg.args[0]->kind == ExprKind::kStar;
  if (agg.name == "count" && is_star) {
    return Value::Int(static_cast<int64_t>(group_rows.size()));
  }
  if (agg.args.size() != 1) {
    return Status::InvalidArgument("aggregate '" + agg.name +
                                   "' takes one argument");
  }

  const bool wants_moments = agg.name == "sum" || agg.name == "avg" ||
                             agg.name == "variance" || agg.name == "stddev";
  std::set<Value> distinct_seen;
  int64_t count = 0;
  double sum = 0;
  double sumsq = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min_v, max_v;
  for (size_t row_idx : group_rows) {
    Scope scope{&rel, &rel.rows[row_idx], outer};
    VR_ASSIGN_OR_RETURN(Value v, Eval(*agg.args[0], scope, ctes, nullptr));
    if (v.is_null()) continue;
    if (agg.distinct) {
      if (!distinct_seen.insert(v).second) continue;
    }
    ++count;
    if (wants_moments) {
      if (!v.is_numeric()) {
        return Status::TypeMismatch("SUM/AVG/VARIANCE of non-numeric value");
      }
      if (v.is_int()) {
        isum += v.AsInt();
      } else {
        sum_is_int = false;
      }
      sum += v.ToDouble();
      sumsq += v.ToDouble() * v.ToDouble();
    } else if (agg.name == "min") {
      if (min_v.is_null() || v < min_v) min_v = v;
    } else if (agg.name == "max") {
      if (max_v.is_null() || max_v < v) max_v = v;
    }
  }

  if (agg.name == "count") return Value::Int(count);
  if (count == 0) return Value::Null();  // SUM/AVG/MIN/MAX over empty input
  if (agg.name == "sum") {
    if (sum_is_int) return Value::Int(isum);
    return Value::Double(sum);
  }
  if (agg.name == "avg") return Value::Double(sum / static_cast<double>(count));
  if (agg.name == "variance" || agg.name == "stddev") {
    // Population moments, matching the (sum, sum-of-squares, count)
    // derivation the synopsis path uses.
    const double n = static_cast<double>(count);
    const double mean = sum / n;
    const double variance = std::max(sumsq / n - mean * mean, 0.0);
    return Value::Double(agg.name == "variance" ? variance
                                                : std::sqrt(variance));
  }
  if (agg.name == "min") return min_v;
  if (agg.name == "max") return max_v;
  return Status::Unsupported("unknown aggregate '" + agg.name + "'");
}

Result<ResultSet> Engine::ExecuteSelect(const SelectStmt& stmt,
                                        const CteFrame* parent_ctes,
                                        const Scope* outer) {
  // WITH clauses: materialize in order; later clauses can see earlier ones.
  std::vector<std::unique_ptr<ResultSet>> cte_storage;
  CteFrame frame;
  frame.parent = parent_ctes;
  const CteFrame* ctes = parent_ctes;
  if (!stmt.with.empty()) {
    for (const WithItem& w : stmt.with) {
      VR_ASSIGN_OR_RETURN(ResultSet rs, ExecuteSelect(*w.query, &frame, outer));
      cte_storage.push_back(std::make_unique<ResultSet>(std::move(rs)));
      frame.ctes[w.name] = cte_storage.back().get();
    }
    ctes = &frame;
  }

  if (stmt.from.empty()) {
    // SELECT of constant expressions.
    ResultSet rs;
    Row row;
    Rel empty_rel;
    Row empty_row;
    Scope scope{&empty_rel, &empty_row, outer};
    for (const auto& item : stmt.items) {
      if (item.is_star) {
        return Status::ExecutionError("SELECT * requires a FROM clause");
      }
      VR_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, scope, ctes, nullptr));
      row.push_back(std::move(v));
      rs.columns.push_back(item.alias.empty() ? "expr" : item.alias);
    }
    rs.rows.push_back(std::move(row));
    return rs;
  }

  // ---- FROM: materialize each item. -------------------------------------
  std::vector<Rel> rels;
  rels.reserve(stmt.from.size());
  for (const auto& f : stmt.from) {
    VR_ASSIGN_OR_RETURN(Rel r, EvalTableRef(*f, ctes, outer));
    rels.push_back(std::move(r));
  }

  // ---- WHERE analysis: split conjuncts into single-rel filters, ----------
  // equi-join conditions between rels, and residual predicates.
  std::vector<const Expr*> conjuncts = CollectConjuncts(stmt.where.get());
  std::vector<const Expr*> residual;
  struct EquiCond {
    size_t rel_a, rel_b;
    const ColumnRefExpr* col_a;
    const ColumnRefExpr* col_b;
    bool used = false;
  };
  std::vector<EquiCond> equi_conds;

  // Which single rel (if any) resolves every column of a pure conjunct?
  auto owning_rels = [&](const Expr* c,
                         std::set<size_t>* rel_set) -> bool {
    std::vector<const ColumnRefExpr*> refs;
    CollectColumnRefs(c, &refs);
    for (const ColumnRefExpr* ref : refs) {
      int found_rel = -1;
      for (size_t i = 0; i < rels.size(); ++i) {
        int idx = rels[i].Find(*ref);
        if (idx == -2) return false;  // ambiguous within one rel
        if (idx >= 0) {
          if (found_rel >= 0) return false;  // ambiguous across rels
          found_rel = static_cast<int>(i);
        }
      }
      if (found_rel < 0) return false;  // outer-scope or unresolved
      rel_set->insert(static_cast<size_t>(found_rel));
    }
    return true;
  };

  for (const Expr* c : conjuncts) {
    if (!IsPureScalar(*c)) {
      residual.push_back(c);
      continue;
    }
    std::set<size_t> owners;
    if (!owning_rels(c, &owners)) {
      residual.push_back(c);
      continue;
    }
    if (owners.size() == 1) {
      // Apply the filter to that rel immediately.
      size_t idx = *owners.begin();
      Rel& rel = rels[idx];
      std::vector<Row> kept;
      kept.reserve(rel.rows.size());
      for (Row& row : rel.rows) {
        Scope scope{&rel, &row, outer};
        VR_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*c, scope, ctes, nullptr));
        if (t == Tri::kTrue) kept.push_back(std::move(row));
      }
      rel.rows = std::move(kept);
      continue;
    }
    if (owners.size() == 2 && c->kind == ExprKind::kBinary) {
      const auto* b = static_cast<const BinaryExpr*>(c);
      if (b->op == BinaryOp::kEq && b->left->kind == ExprKind::kColumnRef &&
          b->right->kind == ExprKind::kColumnRef) {
        const auto* lc = static_cast<const ColumnRefExpr*>(b->left.get());
        const auto* rc = static_cast<const ColumnRefExpr*>(b->right.get());
        auto it = owners.begin();
        size_t a = *it++;
        size_t bidx = *it;
        // Determine which ref belongs to which rel.
        if (rels[a].Find(*lc) >= 0 && rels[bidx].Find(*rc) >= 0) {
          equi_conds.push_back({a, bidx, lc, rc, false});
          continue;
        }
        if (rels[a].Find(*rc) >= 0 && rels[bidx].Find(*lc) >= 0) {
          equi_conds.push_back({a, bidx, rc, lc, false});
          continue;
        }
      }
    }
    residual.push_back(c);
  }

  // ---- Fold-join the rels, preferring equi-connected pairs. --------------
  std::vector<bool> joined(rels.size(), false);
  std::vector<size_t> rel_of;  // original index -> merged? we track membership
  // `current` holds the joined relation; `members` the original rel indices
  // already merged into it.
  Rel current = std::move(rels[0]);
  joined[0] = true;
  std::set<size_t> members = {0};
  for (size_t step = 1; step < rels.size(); ++step) {
    // Prefer a rel connected to `members` by an unused equi condition.
    int next = -1;
    for (const EquiCond& ec : equi_conds) {
      if (ec.used) continue;
      bool a_in = members.count(ec.rel_a) > 0;
      bool b_in = members.count(ec.rel_b) > 0;
      if (a_in != b_in) {
        next = static_cast<int>(a_in ? ec.rel_b : ec.rel_a);
        break;
      }
    }
    if (next < 0) {
      for (size_t i = 0; i < rels.size(); ++i) {
        if (!joined[i]) {
          next = static_cast<int>(i);
          break;
        }
      }
    }
    size_t ni = static_cast<size_t>(next);
    // Build the ON condition from every unused equi cond bridging members
    // and ni.
    ExprPtr on;
    for (EquiCond& ec : equi_conds) {
      if (ec.used) continue;
      bool bridges = (members.count(ec.rel_a) > 0 && ec.rel_b == ni) ||
                     (members.count(ec.rel_b) > 0 && ec.rel_a == ni);
      if (bridges) {
        ec.used = true;
        on = MakeAnd(std::move(on),
                     MakeBinary(BinaryOp::kEq, ec.col_a->Clone(),
                                ec.col_b->Clone()));
      }
    }
    VR_ASSIGN_OR_RETURN(
        current, JoinRels(JoinType::kInner, std::move(current),
                          std::move(rels[ni]), on.get(), ctes, outer));
    joined[ni] = true;
    members.insert(ni);
  }
  // Any unused equi conds (both sides already merged) become residual-style
  // filters on the joined relation.
  for (const EquiCond& ec : equi_conds) {
    if (ec.used) continue;
    std::vector<Row> kept;
    kept.reserve(current.rows.size());
    for (Row& row : current.rows) {
      Scope scope{&current, &row, outer};
      ExprPtr cond = MakeBinary(BinaryOp::kEq, ec.col_a->Clone(),
                                ec.col_b->Clone());
      VR_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*cond, scope, ctes, nullptr));
      if (t == Tri::kTrue) kept.push_back(std::move(row));
    }
    current.rows = std::move(kept);
  }

  // ---- Residual WHERE (subqueries, OR trees, outer references). ----------
  if (!residual.empty()) {
    std::vector<Row> kept;
    kept.reserve(current.rows.size());
    for (Row& row : current.rows) {
      Scope scope{&current, &row, outer};
      bool pass = true;
      for (const Expr* c : residual) {
        VR_ASSIGN_OR_RETURN(Tri t, EvalPredicate(*c, scope, ctes, nullptr));
        if (t != Tri::kTrue) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    current.rows = std::move(kept);
  }

  // ---- Grouping / aggregation / projection. ------------------------------
  std::vector<const FuncCallExpr*> agg_calls;
  for (const auto& item : stmt.items) {
    CollectAggregates(item.expr.get(), &agg_calls);
  }
  CollectAggregates(stmt.having.get(), &agg_calls);
  const bool grouped = !stmt.group_by.empty() || !agg_calls.empty();

  ResultSet rs;
  auto column_name = [](const SelectItem& item, size_t idx) -> std::string {
    if (!item.alias.empty()) return item.alias;
    if (item.expr->kind == ExprKind::kColumnRef) {
      return static_cast<const ColumnRefExpr&>(*item.expr).column;
    }
    if (item.expr->kind == ExprKind::kFuncCall) {
      return static_cast<const FuncCallExpr&>(*item.expr).name;
    }
    return "expr" + std::to_string(idx);
  };

  if (!grouped) {
    // Plain projection.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.is_star) {
        for (const auto& [binding, col] : current.cols) {
          (void)binding;
          rs.columns.push_back(col);
        }
      } else {
        rs.columns.push_back(column_name(item, i));
      }
    }
    for (Row& row : current.rows) {
      Scope scope{&current, &row, outer};
      Row out_row;
      for (const auto& item : stmt.items) {
        if (item.is_star) {
          out_row.insert(out_row.end(), row.begin(), row.end());
        } else {
          VR_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, scope, ctes, nullptr));
          out_row.push_back(std::move(v));
        }
      }
      rs.rows.push_back(std::move(out_row));
    }
    if (stmt.having) {
      return Status::ExecutionError("HAVING requires GROUP BY or aggregates");
    }
  } else {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (stmt.items[i].is_star) {
        return Status::ExecutionError("SELECT * in a grouped query");
      }
      rs.columns.push_back(column_name(stmt.items[i], i));
    }
    // Partition rows into groups by the GROUP BY key.
    std::unordered_map<std::vector<Value>, std::vector<size_t>,
                       ValueVectorHash>
        groups;
    if (stmt.group_by.empty()) {
      // Single group over all rows (even if empty, aggregates apply once).
      std::vector<size_t> all(current.rows.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      groups[{}] = std::move(all);
    } else {
      for (size_t i = 0; i < current.rows.size(); ++i) {
        Scope scope{&current, &current.rows[i], outer};
        std::vector<Value> key;
        key.reserve(stmt.group_by.size());
        for (const auto& g : stmt.group_by) {
          VR_ASSIGN_OR_RETURN(Value v, Eval(*g, scope, ctes, nullptr));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(i);
      }
    }
    // Deterministic group order (sorted by key) for reproducible output.
    std::vector<const std::vector<Value>*> keys;
    keys.reserve(groups.size());
    for (const auto& [k, _] : groups) keys.push_back(&k);
    std::sort(keys.begin(), keys.end(),
              [](const std::vector<Value>* a, const std::vector<Value>* b) {
                return *a < *b;
              });

    Row dummy_row(current.cols.size(), Value::Null());
    for (const std::vector<Value>* key : keys) {
      const std::vector<size_t>& rows_in_group = groups[*key];
      // Representative row for group-by column references.
      const Row& rep =
          rows_in_group.empty() ? dummy_row : current.rows[rows_in_group[0]];
      Scope scope{&current, &rep, outer};
      ExprEnv env;
      for (const FuncCallExpr* agg : agg_calls) {
        VR_ASSIGN_OR_RETURN(
            Value v, ComputeAggregate(*agg, current, rows_in_group, ctes,
                                      outer));
        env[ToSql(*agg)] = std::move(v);
      }
      Row out_row;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        VR_ASSIGN_OR_RETURN(Value v,
                            Eval(*stmt.items[i].expr, scope, ctes, &env));
        // Expose select aliases to HAVING via the overlay.
        if (!stmt.items[i].alias.empty()) {
          env[stmt.items[i].alias] = v;
        }
        out_row.push_back(std::move(v));
      }
      if (stmt.having) {
        VR_ASSIGN_OR_RETURN(Tri t,
                            EvalPredicate(*stmt.having, scope, ctes, &env));
        if (t != Tri::kTrue) continue;
      }
      rs.rows.push_back(std::move(out_row));
    }
  }

  if (stmt.distinct) {
    std::set<Row> seen;
    std::vector<Row> unique_rows;
    for (Row& r : rs.rows) {
      if (seen.insert(r).second) unique_rows.push_back(std::move(r));
    }
    rs.rows = std::move(unique_rows);
  }

  // ORDER BY: output columns (alias/name or 1-based position), or — for
  // plain non-DISTINCT projections — arbitrary source expressions.
  if (!stmt.order_by.empty()) {
    // keys: (output index, -1 if source expression) per order item.
    std::vector<std::pair<int, bool>> keys;
    std::vector<const Expr*> source_exprs(stmt.order_by.size(), nullptr);
    bool any_source = false;
    for (size_t oi = 0; oi < stmt.order_by.size(); ++oi) {
      const OrderItem& o = stmt.order_by[oi];
      int idx = -1;
      if (o.expr->kind == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const ColumnRefExpr&>(*o.expr);
        if (ref.table.empty()) idx = rs.ColumnIndex(ref.column);
      } else if (o.expr->kind == ExprKind::kLiteral) {
        const Value& v = static_cast<const LiteralExpr&>(*o.expr).value;
        if (v.is_int() && v.AsInt() >= 1 &&
            v.AsInt() <= static_cast<int64_t>(rs.NumColumns())) {
          idx = static_cast<int>(v.AsInt()) - 1;
        }
      }
      if (idx < 0) {
        if (grouped || stmt.distinct || !IsPureScalar(*o.expr)) {
          return Status::Unsupported(
              "ORDER BY here supports output columns (by name) or 1-based "
              "positions");
        }
        source_exprs[oi] = o.expr.get();
        any_source = true;
      }
      keys.emplace_back(idx, o.descending);
    }
    // Hidden sort keys for source expressions (plain projections keep a
    // 1:1 row correspondence with `current`).
    std::vector<std::vector<Value>> hidden(rs.rows.size());
    if (any_source) {
      if (current.rows.size() != rs.rows.size()) {
        return Status::Internal("row correspondence lost before ORDER BY");
      }
      for (size_t r = 0; r < current.rows.size(); ++r) {
        Scope scope{&current, &current.rows[r], outer};
        for (size_t oi = 0; oi < source_exprs.size(); ++oi) {
          if (source_exprs[oi] == nullptr) continue;
          VR_ASSIGN_OR_RETURN(
              Value v, Eval(*source_exprs[oi], scope, ctes, nullptr));
          hidden[r].push_back(std::move(v));
        }
      }
    }
    std::vector<size_t> perm(rs.rows.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(
        perm.begin(), perm.end(), [&](size_t a, size_t b) {
          size_t ha = 0, hb = 0;
          for (size_t oi = 0; oi < keys.size(); ++oi) {
            const auto& [idx, desc] = keys[oi];
            const Value* va;
            const Value* vb;
            if (idx >= 0) {
              va = &rs.rows[a][static_cast<size_t>(idx)];
              vb = &rs.rows[b][static_cast<size_t>(idx)];
            } else {
              va = &hidden[a][ha++];
              vb = &hidden[b][hb++];
            }
            if (*va < *vb) return !desc;
            if (*vb < *va) return desc;
          }
          return false;
        });
    std::vector<Row> sorted;
    sorted.reserve(rs.rows.size());
    for (size_t i : perm) sorted.push_back(std::move(rs.rows[i]));
    rs.rows = std::move(sorted);
  }
  if (stmt.limit >= 0 &&
      rs.rows.size() > static_cast<size_t>(stmt.limit)) {
    rs.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return rs;
}

}  // namespace

Result<ResultSet> Executor::Execute(const SelectStmt& stmt,
                                    const ParamMap& params) const {
  Engine engine(db_, params);
  return engine.ExecuteSelect(stmt, nullptr, nullptr);
}

Result<double> Executor::ExecuteScalar(const SelectStmt& stmt,
                                       const ParamMap& params) const {
  VR_ASSIGN_OR_RETURN(ResultSet rs, Execute(stmt, params));
  if (rs.NumColumns() != 1) {
    return Status::ExecutionError("scalar query must yield one column, got " +
                                  std::to_string(rs.NumColumns()));
  }
  if (rs.NumRows() == 0) return 0.0;
  if (rs.NumRows() > 1) {
    return Status::ExecutionError("scalar query yielded " +
                                  std::to_string(rs.NumRows()) + " rows");
  }
  const Value& v = rs.rows[0][0];
  if (v.is_null()) return 0.0;
  if (!v.is_numeric()) {
    return Status::TypeMismatch("scalar query yielded a non-numeric value");
  }
  return v.ToDouble();
}

Result<double> Executor::ExecuteRewritten(const RewrittenQuery& rq) const {
  ParamMap params;
  for (const ChainLink& link : rq.chain) {
    VR_ASSIGN_OR_RETURN(ResultSet rs, Execute(*link.query, params));
    if (rs.NumColumns() != 1 || rs.NumRows() > 1) {
      return Status::ExecutionError("chain link '" + link.var +
                                    "' must yield a single scalar");
    }
    // An empty or NULL chain scalar binds as 0, exactly like the noisy
    // chain path (and ExecuteScalar): SUM over zero rows is SQL NULL,
    // but a rewritten query's $var is always a number.
    Value v = rs.NumRows() == 0 ? Value::Double(0) : rs.rows[0][0];
    if (v.is_null()) v = Value::Double(0);
    params[link.var] = std::move(v);
  }
  double total = 0;
  for (const auto& term : rq.combination.terms) {
    VR_ASSIGN_OR_RETURN(double v, ExecuteScalar(*term.query, params));
    total += term.coeff * v;
  }
  return total;
}

}  // namespace viewrewrite
