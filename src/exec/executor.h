#ifndef VIEWREWRITE_EXEC_EXECUTOR_H_
#define VIEWREWRITE_EXEC_EXECUTOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "exec/result_set.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace viewrewrite {

/// Scalar bindings for `$name` parameters (chained queries, Rule 15).
using ParamMap = std::map<std::string, Value>;

/// Executes SELECT statements against an in-memory Database.
///
/// Supports the full query surface the paper's workloads use: multi-table
/// joins (hash joins on equi-predicates, nested loops otherwise), LEFT and
/// NATURAL joins, WHERE/GROUP BY/HAVING, aggregates (COUNT/SUM/AVG/MIN/MAX/
/// VARIANCE/STDDEV, DISTINCT), derived tables, WITH, correlated and
/// non-correlated
/// subqueries (scalar, EXISTS, IN, ANY/SOME/ALL), COALESCE, and SQL
/// three-valued NULL logic.
///
/// The executor is an exact evaluator: it computes true answers for
/// equivalence testing and view materialization; all differential privacy
/// happens downstream in the dp/view modules.
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  /// Runs one SELECT and materializes the result.
  Result<ResultSet> Execute(const SelectStmt& stmt,
                            const ParamMap& params = {}) const;

  /// Runs a query expected to yield a single numeric cell (aggregate
  /// without GROUP BY). Execute preserves SQL NULL semantics (SUM over
  /// zero rows is NULL); this scalar wrapper maps that NULL — and an
  /// empty result — to 0, mirroring the synopsis answer path.
  Result<double> ExecuteScalar(const SelectStmt& stmt,
                               const ParamMap& params = {}) const;

  /// Evaluates a rewritten query: executes chain links in order, binding
  /// each `$var`, then returns the signed combination of the final terms.
  /// Chain scalars follow the same NULL-maps-to-0 rule as ExecuteScalar,
  /// keeping the exact path consistent with the noisy one.
  Result<double> ExecuteRewritten(const RewrittenQuery& rq) const;

 private:
  const Database& db_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_EXEC_EXECUTOR_H_
