#include "aggregate/aggregate_planner.h"

#include <algorithm>
#include <cmath>

#include "sql/printer.h"

namespace viewrewrite {
namespace aggregate {

std::string SumMeasureKey(const Expr& arg) { return "sum:" + ToSql(arg); }

Result<AggregatePlan> PlanAggregate(const FuncCallExpr& agg) {
  AggregatePlan plan;
  if (agg.distinct) {
    return Status::Unsupported("DISTINCT aggregates cannot be derived from "
                               "published measures");
  }
  const bool is_count_star =
      agg.args.empty() ||
      (agg.args.size() == 1 && agg.args[0]->kind == ExprKind::kStar);
  if (agg.name == "count") {
    plan.derivation = Derivation::kCount;
    plan.needs_count = true;
    if (!is_count_star) plan.arg = agg.args[0]->Clone();
    return plan;
  }
  if (agg.args.size() != 1 || is_count_star) {
    return Status::Unsupported("aggregate " + agg.name +
                               " requires exactly one argument");
  }
  plan.arg = agg.args[0]->Clone();
  if (agg.name == "sum") {
    plan.derivation = Derivation::kSum;
    plan.sum_key = SumMeasureKey(*plan.arg);
    return plan;
  }
  if (agg.name == "avg") {
    plan.derivation = Derivation::kAvg;
    plan.sum_key = SumMeasureKey(*plan.arg);
    plan.needs_count = true;
    return plan;
  }
  if (agg.name == "variance" || agg.name == "stddev") {
    plan.derivation = agg.name == "variance" ? Derivation::kVariance
                                             : Derivation::kStddev;
    plan.sum_key = SumMeasureKey(*plan.arg);
    plan.square =
        MakeBinary(BinaryOp::kMul, plan.arg->Clone(), plan.arg->Clone());
    plan.sumsq_key = SumMeasureKey(*plan.square);
    plan.needs_count = true;
    return plan;
  }
  if (agg.name == "min" || agg.name == "max") {
    if (plan.arg->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("MIN/MAX over non-column expressions is not "
                                 "supported on synopses");
    }
    plan.derivation = Derivation::kExtremum;
    plan.is_extremum = true;
    return plan;
  }
  return Status::Unsupported("aggregate function not supported: " + agg.name);
}

double EvaluateDerived(Derivation derivation, double count, double sum,
                       double sumsq) {
  switch (derivation) {
    case Derivation::kCount:
      return count;
    case Derivation::kSum:
      return sum;
    case Derivation::kAvg:
      return sum / std::max(count, 1.0);
    case Derivation::kVariance:
    case Derivation::kStddev: {
      const double n = std::max(count, 1.0);
      const double mean = sum / n;
      const double variance = std::max(sumsq / n - mean * mean, 0.0);
      return derivation == Derivation::kVariance ? variance
                                                 : std::sqrt(variance);
    }
    case Derivation::kExtremum:
      return 0;  // extremum values never flow through EvaluateDerived
  }
  return 0;
}

namespace {

// SQL three-valued truth from a Value: NULL stays unknown, numerics are
// truthy when non-zero.
enum class Tri { kFalse, kTrue, kNull };

Result<Tri> Truth(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (!v.is_numeric()) {
    return Status::TypeMismatch("expected boolean condition");
  }
  return v.ToDouble() != 0 ? Tri::kTrue : Tri::kFalse;
}

Value FromTri(Tri t) {
  switch (t) {
    case Tri::kTrue: return Value::Int(1);
    case Tri::kFalse: return Value::Int(0);
    case Tri::kNull: return Value::Null();
  }
  return Value::Null();
}

Result<Value> EvalBinary(const BinaryExpr& bin, const EvalContext& ctx);

Result<Value> EvalImpl(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (ctx.columns != nullptr) {
        auto it = ctx.columns->find(ref.FullName());
        if (it == ctx.columns->end()) it = ctx.columns->find(ref.column);
        if (it != ctx.columns->end()) return it->second;
      }
      return Status::ExecutionError("column not available in aggregate "
                                    "context: " +
                                    ref.FullName());
    }
    case ExprKind::kFuncCall: {
      const auto& call = static_cast<const FuncCallExpr&>(expr);
      if (!call.IsAggregate()) {
        return Status::Unsupported("scalar function in aggregate context: " +
                                   call.name);
      }
      if (ctx.aggregates != nullptr) {
        auto it = ctx.aggregates->find(ToSql(call));
        if (it != ctx.aggregates->end()) return Value::Double(it->second);
      }
      return Status::ExecutionError("aggregate not answered for this group: " +
                                    ToSql(call));
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(expr), ctx);
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      VR_ASSIGN_OR_RETURN(Value v, EvalImpl(*un.operand, ctx));
      if (un.op == UnaryOp::kNot) {
        VR_ASSIGN_OR_RETURN(Tri t, Truth(v));
        if (t == Tri::kNull) return Value::Null();
        return FromTri(t == Tri::kTrue ? Tri::kFalse : Tri::kTrue);
      }
      if (v.is_null()) return Value::Null();
      if (!v.is_numeric()) {
        return Status::TypeMismatch("cannot negate a non-numeric value");
      }
      return Value::Double(-v.ToDouble());
    }
    default:
      return Status::Unsupported(
          "expression not supported over noisy aggregates");
  }
}

Result<Value> EvalBinary(const BinaryExpr& bin, const EvalContext& ctx) {
  if (bin.op == BinaryOp::kAnd || bin.op == BinaryOp::kOr) {
    VR_ASSIGN_OR_RETURN(Value lv, EvalImpl(*bin.left, ctx));
    VR_ASSIGN_OR_RETURN(Tri lt, Truth(lv));
    // Three-valued short circuit: AND with a false side is false, OR
    // with a true side is true, regardless of NULL on the other side.
    if (bin.op == BinaryOp::kAnd && lt == Tri::kFalse) return Value::Int(0);
    if (bin.op == BinaryOp::kOr && lt == Tri::kTrue) return Value::Int(1);
    VR_ASSIGN_OR_RETURN(Value rv, EvalImpl(*bin.right, ctx));
    VR_ASSIGN_OR_RETURN(Tri rt, Truth(rv));
    if (bin.op == BinaryOp::kAnd) {
      if (rt == Tri::kFalse) return Value::Int(0);
      if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
      return Value::Int(1);
    }
    if (rt == Tri::kTrue) return Value::Int(1);
    if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
    return Value::Int(0);
  }

  VR_ASSIGN_OR_RETURN(Value lv, EvalImpl(*bin.left, ctx));
  VR_ASSIGN_OR_RETURN(Value rv, EvalImpl(*bin.right, ctx));
  if (IsComparisonOp(bin.op)) {
    VR_ASSIGN_OR_RETURN(Value::TriCompare cmp, lv.CompareSql(rv));
    if (cmp.is_null) return Value::Null();
    bool result = false;
    switch (bin.op) {
      case BinaryOp::kEq: result = cmp.cmp == 0; break;
      case BinaryOp::kNe: result = cmp.cmp != 0; break;
      case BinaryOp::kLt: result = cmp.cmp < 0; break;
      case BinaryOp::kLe: result = cmp.cmp <= 0; break;
      case BinaryOp::kGt: result = cmp.cmp > 0; break;
      case BinaryOp::kGe: result = cmp.cmp >= 0; break;
      default: break;
    }
    return Value::Int(result ? 1 : 0);
  }

  if (lv.is_null() || rv.is_null()) return Value::Null();
  if (!lv.is_numeric() || !rv.is_numeric()) {
    return Status::TypeMismatch("arithmetic over non-numeric values");
  }
  const double l = lv.ToDouble();
  const double r = rv.ToDouble();
  switch (bin.op) {
    case BinaryOp::kAdd: return Value::Double(l + r);
    case BinaryOp::kSub: return Value::Double(l - r);
    case BinaryOp::kMul: return Value::Double(l * r);
    case BinaryOp::kDiv:
      if (r == 0) return Status::ExecutionError("division by zero");
      return Value::Double(l / r);
    default:
      return Status::Unsupported("operator not supported over aggregates");
  }
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx) {
  return EvalImpl(expr, ctx);
}

Result<bool> EvaluateHaving(const Expr& having, const EvalContext& ctx) {
  VR_ASSIGN_OR_RETURN(Value v, EvalImpl(having, ctx));
  VR_ASSIGN_OR_RETURN(Tri t, Truth(v));
  return t == Tri::kTrue;  // NULL drops the group, like WHERE
}

}  // namespace aggregate
}  // namespace viewrewrite
