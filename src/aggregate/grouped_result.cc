#include "aggregate/grouped_result.h"

namespace viewrewrite {
namespace aggregate {

namespace {

size_t ValueBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  if (v.is_string()) bytes += v.AsString().capacity();
  return bytes;
}

}  // namespace

size_t GroupedData::ByteSize() const {
  size_t bytes = sizeof(GroupedData);
  for (const std::string& c : columns) bytes += sizeof(std::string) + c.capacity();
  bytes += is_aggregate.capacity() / 8 + sizeof(size_t);
  for (const GroupedRow& r : rows) {
    bytes += sizeof(GroupedRow);
    for (const Value& v : r.values) bytes += ValueBytes(v);
  }
  return bytes;
}

ResultSet GroupedData::ToResultSet() const {
  ResultSet rs;
  rs.columns = columns;
  rs.rows.reserve(rows.size());
  for (const GroupedRow& r : rows) rs.rows.push_back(r.values);
  return rs;
}

}  // namespace aggregate
}  // namespace viewrewrite
