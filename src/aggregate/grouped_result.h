#ifndef VIEWREWRITE_AGGREGATE_GROUPED_RESULT_H_
#define VIEWREWRITE_AGGREGATE_GROUPED_RESULT_H_

// Grouped served results: the row-carrying counterpart of the scalar
// answer. A GroupedData is immutable once built and shared by pointer
// between the flight table, the answer cache, and every coalesced
// waiter, so identical in-flight queries always observe the identical
// row set.

#include <cstddef>
#include <string>
#include <vector>

#include "exec/result_set.h"
#include "sql/value.h"

namespace viewrewrite {
namespace aggregate {

/// One served group. `values` holds one entry per output column (group
/// keys and aggregates interleaved in select-list order). `noisy_count`
/// is the noisy COUNT(*) of the group — the input to the minimum-
/// frequency suppression rule — and `suppressed` marks rows whose
/// aggregates were withheld by that rule (their aggregate values are
/// NULL but the group keys, which come from the public column domain,
/// remain).
struct GroupedRow {
  Row values;
  double noisy_count = 0;
  bool suppressed = false;
};

/// A grouped answer: named columns, a per-column aggregate/key flag,
/// and rows. The flag drives suppression (only aggregate outputs are
/// withheld) and lets the chaos invariants compare key columns exactly.
struct GroupedData {
  std::vector<std::string> columns;
  std::vector<bool> is_aggregate;  // per column: aggregate output vs group key
  std::vector<GroupedRow> rows;

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return columns.size(); }

  /// Approximate heap footprint, used for byte-aware cache accounting.
  size_t ByteSize() const;

  /// Flattens to a plain ResultSet (flags dropped; suppressed rows keep
  /// their NULLed aggregates).
  ResultSet ToResultSet() const;
};

}  // namespace aggregate
}  // namespace viewrewrite

#endif  // VIEWREWRITE_AGGREGATE_GROUPED_RESULT_H_
