#include "aggregate/suppression.h"

namespace viewrewrite {
namespace aggregate {

size_t ApplySuppression(const SuppressionPolicy& policy, GroupedData* data) {
  if (policy.min_group_count <= 0 || data == nullptr) return 0;
  size_t suppressed = 0;
  for (GroupedRow& row : data->rows) {
    if (row.suppressed) {  // idempotent over already-suppressed rows
      ++suppressed;
      continue;
    }
    if (row.noisy_count >= policy.min_group_count) continue;
    row.suppressed = true;
    for (size_t c = 0; c < row.values.size() && c < data->is_aggregate.size();
         ++c) {
      if (data->is_aggregate[c]) row.values[c] = Value::Null();
    }
    ++suppressed;
  }
  return suppressed;
}

}  // namespace aggregate
}  // namespace viewrewrite
