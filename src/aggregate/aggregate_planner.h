#ifndef VIEWREWRITE_AGGREGATE_AGGREGATE_PLANNER_H_
#define VIEWREWRITE_AGGREGATE_AGGREGATE_PLANNER_H_

// Derived-measure planning, after Cohen & Nutt's aggregate-rewriting
// rules: every requested aggregate resolves to measures that are (or
// can be) materialized in a published view, so answering it later is
// pure post-processing of already-noised cells — no additional budget.
//
//   COUNT(*)        <- count
//   SUM(e)          <- sum:e
//   AVG(e)          <- sum:e / count
//   VARIANCE(e)     <- sum:(e*e)/count - (sum:e/count)^2
//   STDDEV(e)       <- sqrt(VARIANCE(e))
//   MIN/MAX(col)    <- extremum scan over the count grid
//
// PlanAggregate is consulted both at register time (to add the missing
// companion measures, e.g. the sum-of-squares for VARIANCE) and at
// answer time (to combine the published measures), so the two sides can
// never disagree about what a derived aggregate needs.

#include <map>
#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace viewrewrite {
namespace aggregate {

/// How a requested aggregate is derived from published measures.
enum class Derivation {
  kCount,     // read the count measure
  kSum,       // read the sum:<arg> measure
  kAvg,       // sum / count
  kVariance,  // sumsq/count - (sum/count)^2
  kStddev,    // sqrt of variance
  kExtremum,  // min/max estimated from the count grid
};

/// Resolution of one aggregate call to the measures it reads.
struct AggregatePlan {
  Derivation derivation = Derivation::kCount;
  ExprPtr arg;             // cloned argument; null for COUNT(*)
  ExprPtr square;          // cloned arg*arg; variance/stddev only
  std::string sum_key;     // "sum:<sql>" when a sum measure is read
  std::string sumsq_key;   // "sum:<sql>" of the square; variance/stddev only
  bool needs_count = false;  // reads the count measure at answer time
  bool is_extremum = false;  // answered by extremum scan (arg is a column)
};

/// Measure key for SUM over `arg` ("sum:" + canonical SQL of arg).
std::string SumMeasureKey(const Expr& arg);

/// Resolves `agg` (count/sum/avg/min/max/variance/stddev) to a plan.
/// DISTINCT and non-column MIN/MAX arguments are Unsupported.
Result<AggregatePlan> PlanAggregate(const FuncCallExpr& agg);

/// Combines published measure readings into the derived value.
/// `count` is clamped to >= 1 for ratio derivations (matching the
/// scalar AVG path); variance is clamped to >= 0 before sqrt.
double EvaluateDerived(Derivation derivation, double count, double sum,
                       double sumsq);

/// Context for evaluating select-item and HAVING expressions over a
/// (possibly grouped) answer: noisy aggregate readings keyed by the
/// canonical SQL of the aggregate call, plus the group-key column
/// values (empty for scalar answers).
struct EvalContext {
  const std::map<std::string, double>* aggregates = nullptr;
  // Keyed by both "t.c" and bare "c" for each group column.
  const std::map<std::string, Value>* columns = nullptr;
};

/// Evaluates an expression over noisy aggregates and group keys:
/// literals, group-column refs, aggregate calls (by canonical SQL),
/// +-*/ arithmetic (division by zero is ExecutionError), comparisons,
/// AND/OR/NOT with SQL three-valued logic (booleans are Int 0/1, NULL
/// propagates). Anything else is Unsupported.
Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx);

/// Evaluates a HAVING predicate post-noise: true keeps the group,
/// false or NULL drops it (SQL semantics). Pure post-processing — the
/// noisy aggregates are already published, so this costs no budget.
Result<bool> EvaluateHaving(const Expr& having, const EvalContext& ctx);

}  // namespace aggregate
}  // namespace viewrewrite

#endif  // VIEWREWRITE_AGGREGATE_AGGREGATE_PLANNER_H_
