#ifndef VIEWREWRITE_AGGREGATE_SUPPRESSION_H_
#define VIEWREWRITE_AGGREGATE_SUPPRESSION_H_

// Minimum-frequency suppression (after DPSQL+): groups whose *noisy*
// count falls below a configured threshold have their aggregate values
// withheld before release. The decision reads only the already-noised
// count, so it is pure post-processing and costs no additional budget;
// the group keys themselves come from the public column domain (every
// domain cell is enumerated whether or not any tuple falls in it), so
// a suppressed row reveals nothing beyond "the noisy count was small".

#include <cstddef>

#include "aggregate/grouped_result.h"

namespace viewrewrite {
namespace aggregate {

/// Suppression rule configuration. `min_group_count` <= 0 disables the
/// rule (every group is released).
struct SuppressionPolicy {
  double min_group_count = 0;
};

/// Applies the minimum-frequency rule in place: rows whose noisy_count
/// is below the threshold get suppressed=true and their aggregate
/// columns (per data->is_aggregate) set to NULL; group-key columns are
/// kept. Returns the number of rows suppressed. Deterministic given the
/// noisy counts, so serve-side and baseline-side applications agree.
size_t ApplySuppression(const SuppressionPolicy& policy, GroupedData* data);

}  // namespace aggregate
}  // namespace viewrewrite

#endif  // VIEWREWRITE_AGGREGATE_SUPPRESSION_H_
