#ifndef VIEWREWRITE_ENGINE_PRIVATE_SQL_ENGINE_H_
#define VIEWREWRITE_ENGINE_PRIVATE_SQL_ENGINE_H_

#include <string>
#include <vector>

#include "engine/viewrewrite_engine.h"

namespace viewrewrite {

/// Reimplementation of the PrivateSQL baseline (Kotsogiannis et al., VLDB
/// 2019) as the paper describes its behaviour on nested / derived-table
/// workloads: every predicate that originates in a subquery — constants
/// included — is part of the view definition, so the number of views grows
/// with the number of distinct subquery filter conditions in the workload
/// (§4, Fig. 6e). Main-query predicates over base attributes are answered
/// from the view histogram, exactly as in ViewRewrite.
///
/// Internally the baseline reuses the rewriter for *materialization only*
/// (with key-filter promotion and derived-filter hoisting disabled, so
/// subquery constants stay inside the view body); this computes the same
/// view contents PrivateSQL would, just faster than naive correlated
/// evaluation.
class PrivateSqlEngine {
 public:
  PrivateSqlEngine(const Database& db, PrivacyPolicy policy,
                   EngineOptions options = {});

  /// Same degraded/strict contract as ViewRewriteEngine::Prepare, so
  /// baseline comparisons stay apples-to-apples under injected faults.
  Status Prepare(const std::vector<std::string>& workload_sql);

  const PrepareReport& report() const { return report_; }
  const ViewManager& views() const { return views_; }

  size_t NumQueries() const { return bound_.size(); }
  size_t NumViews() const { return views_.NumViews(); }

  Result<double> NoisyAnswer(size_t i);
  Result<double> TrueAnswer(size_t i) const;
  Result<double> ExactViewAnswer(size_t i) const;
  Result<double> RelativeError(size_t i);

  const EngineStats& stats() const { return stats_; }

 private:
  const Database& db_;
  PrivacyPolicy policy_;
  EngineOptions options_;
  Rewriter rewriter_;
  ViewManager views_;
  Executor executor_;
  Random rng_;
  std::vector<RewrittenQuery> rewritten_;
  std::vector<BoundRewrittenQuery> bound_;
  EngineStats stats_;
  PrepareReport report_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_ENGINE_PRIVATE_SQL_ENGINE_H_
