#ifndef VIEWREWRITE_ENGINE_VIEWREWRITE_ENGINE_H_
#define VIEWREWRITE_ENGINE_VIEWREWRITE_ENGINE_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/random.h"
#include "common/result.h"
#include "dp/budget_wal.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "view/view_manager.h"

namespace viewrewrite {

struct EngineOptions {
  double epsilon = 8.0;
  /// Lifetime privacy budget for the synopsis lifecycle. When greater
  /// than `epsilon`, the initial publication still splits only `epsilon`
  /// across views and the surplus is the reserve later RepublishChanged
  /// generations draw from (sequential composition across epochs on one
  /// ledger). Zero (default) means no reserve: the lifetime budget is
  /// `epsilon` and every republish hard-fails before over-spending.
  double lifetime_epsilon = 0;
  uint64_t seed = 42;
  /// Resource governance for untrusted workload input (see
  /// docs/ROBUSTNESS.md for the limit table). The engine parses every
  /// workload query under these limits, copies them into
  /// `rewrite.limits` at construction (set them here, not there), and
  /// clamps `synopsis.max_cells` to `limits.max_view_cells` — so one knob
  /// governs the whole parse -> rewrite -> publish pipeline.
  ResourceLimits limits;
  RewriteOptions rewrite;
  SynopsisOptions synopsis;
  /// Budget split across views (kByUsage is the paper's future-work
  /// extension: weight views by the number of queries they answer).
  BudgetAllocation budget_allocation = BudgetAllocation::kUniform;
  /// Crash-durable privacy accounting: when non-empty, Prepare opens (or
  /// replays) a write-ahead budget ledger at this path (dp/budget_wal.h).
  /// Every spend is fsync'd there before any noisy value is computed, and
  /// a restarted process pointed at the same path composes its spends on
  /// top of everything previous lives durably recorded — so a crash
  /// mid-publish can never silently re-spend the lifetime epsilon. Empty
  /// (default) keeps the accountant purely in-memory.
  std::string budget_wal_path;
  /// WAL size past which appending a generation checkpoint compacts the
  /// log down to header + total + checkpoint. 0 disables compaction.
  uint64_t budget_wal_compact_bytes = 256 * 1024;
  /// Fail-fast preparation: any per-query or per-view failure aborts
  /// Prepare immediately (the pre-robustness contract, kept for the
  /// benchmarks). The default is degraded mode: failing queries are
  /// quarantined, failing views are recovered per-view, and the healthy
  /// remainder of the workload is still served.
  bool strict = false;
};

/// Per-query outcome of Prepare in degraded mode. `query_status` is
/// index-aligned with the workload: OK means the query is answerable from
/// the published synopses; a non-OK entry is the quarantined query's
/// recorded failure, returned verbatim by NoisyAnswer / TrueAnswer /
/// RelativeError for that index.
struct PrepareReport {
  std::vector<Status> query_status;
  size_t num_prepared = 0;      // answerable queries
  size_t num_quarantined = 0;   // queries held out of the batch
  size_t num_views_failed = 0;  // views whose publication failed
  bool AllHealthy() const {
    return num_quarantined == 0 && num_views_failed == 0;
  }
};

/// One-line health summary, plus the first few quarantine reasons when
/// anything failed (examples and benches print this after Prepare).
std::ostream& operator<<(std::ostream& os, const PrepareReport& report);

struct EngineStats {
  size_t num_queries = 0;
  size_t num_views = 0;
  double rewrite_seconds = 0;
  double view_generation_seconds = 0;
  double publish_seconds = 0;
  double answer_seconds = 0;

  /// Budget ledger summary after Publish: the privacy budget the workload
  /// was prepared under, what publication actually consumed (refunds from
  /// failed degraded-mode views already netted out), and how many refunds
  /// the ledger recorded. spent <= total is the core DP invariant the
  /// chaos harness asserts under injected publish failures.
  double budget_total_epsilon = 0;
  double budget_spent_epsilon = 0;
  size_t budget_refunds = 0;
  /// True when the accountant was poisoned (constructed with a non-finite
  /// or negative epsilon, or seeded with garbage recovery state): every
  /// spend is refused, and the totals above report 0 rather than echoing
  /// the garbage value.
  bool budget_poisoned = false;

  /// Synopsis generation time in the paper's sense: rewriting + view
  /// generation + view publication.
  double SynopsisSeconds() const {
    return rewrite_seconds + view_generation_seconds + publish_seconds;
  }
};

std::ostream& operator<<(std::ostream& os, const EngineStats& stats);

/// The paper's system: rewrite every workload query (Rules 1-20), derive
/// and merge views, publish one DP synopsis per view, then answer all
/// queries from the synopses with no further privacy cost.
class ViewRewriteEngine {
 public:
  ViewRewriteEngine(const Database& db, PrivacyPolicy policy,
                    EngineOptions options = {});

  /// Rewrites + registers + publishes. Call once.
  ///
  /// Degraded mode (default): per-query failures quarantine the query,
  /// per-view publication failures refund that view's budget slice and
  /// quarantine only the queries bound to it; returns OK as long as at
  /// least one query survives (inspect report() for details). Strict
  /// mode (options.strict): the first failure aborts, as before.
  Status Prepare(const std::vector<std::string>& workload_sql);

  /// Per-query outcomes of the last Prepare.
  const PrepareReport& report() const { return report_; }

  /// The underlying view manager (budget accountant, failed views, ...).
  const ViewManager& views() const { return views_; }

  /// Delta publication for the synopsis lifecycle: rebuilds only the
  /// views whose definitions read one of `changed_relations`, spending
  /// `generation_epsilon` from the lifetime reserve (see
  /// EngineOptions::lifetime_epsilon) under per-generation ledger labels.
  /// Returns the per-view outcome; per-view rebuild failures refund and
  /// flag the view outdated instead of aborting. Call after a successful
  /// Prepare. Not thread-safe against NoisyAnswer or itself — the
  /// serve-layer Republisher serializes lifecycle mutations.
  Result<ViewManager::RepublishOutcome> RepublishChanged(
      const std::vector<std::string>& changed_relations,
      double generation_epsilon, uint64_t generation);

  /// Discards a generation that was never published anywhere observable
  /// (save failed before the bundle landed): refunds its rebuilt views'
  /// slices so the failed generation composes as if it never ran.
  Status RefundGeneration(const ViewManager::RepublishOutcome& outcome);

  /// Appends a generation checkpoint to the budget WAL (and compacts the
  /// log past EngineOptions::budget_wal_compact_bytes). The Republisher
  /// calls this after a generation's bundle is durably published and
  /// swapped; a no-op without a WAL.
  Status CheckpointBudgetWal(uint64_t generation);

  /// The write-ahead budget ledger Prepare opened, or nullptr when
  /// EngineOptions::budget_wal_path is empty.
  const BudgetWal* budget_wal() const { return budget_wal_.get(); }

  size_t NumQueries() const { return bound_.size(); }
  size_t NumViews() const { return views_.NumViews(); }

  /// Whether prepared workload query `i` is a grouped aggregate (GROUP
  /// BY): such queries are answered row-wise via GroupedAnswer; the
  /// scalar answer paths return Unsupported for them.
  bool IsGrouped(size_t i) const;

  /// Row-carrying answer for a grouped workload query: one row per group
  /// cell, derived aggregates computed from published measures, HAVING
  /// evaluated post-noise. With `exact`, uses pre-noise cell totals (the
  /// chaos/benchmark baseline). Pure post-processing: no privacy cost.
  Result<aggregate::GroupedData> GroupedAnswer(size_t i, bool exact = false);

  /// Differentially private answer for workload query `i`.
  Result<double> NoisyAnswer(size_t i);

  /// Exact answer (via the executor, on the rewritten form).
  Result<double> TrueAnswer(size_t i) const;

  /// Exact answer computed from the noiseless view cells — the paper's
  /// systems answer workload queries exactly from view tuples, so this is
  /// the benchmark ground truth (the executor path cross-checks it in the
  /// tests but is too slow for 12000-query sweeps).
  Result<double> ExactViewAnswer(size_t i) const;

  /// Relative error per the paper's metric: |y - ŷ| / max(50, y), with
  /// the exact view answer as y.
  Result<double> RelativeError(size_t i);

  const EngineStats& stats() const { return stats_; }
  const RewrittenQuery& rewritten(size_t i) const { return rewritten_[i]; }

 private:
  const Database& db_;
  PrivacyPolicy policy_;
  EngineOptions options_;
  Rewriter rewriter_;
  ViewManager views_;
  Executor executor_;
  Random rng_;
  std::vector<RewrittenQuery> rewritten_;
  std::vector<BoundRewrittenQuery> bound_;
  std::unique_ptr<BudgetWal> budget_wal_;
  EngineStats stats_;
  PrepareReport report_;
};

/// The paper's relative-error metric.
double RelativeErrorMetric(double true_answer, double noisy_answer);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_ENGINE_VIEWREWRITE_ENGINE_H_
