#include "engine/viewrewrite_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sql/parser.h"

namespace viewrewrite {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// EngineOptions::limits is the single governance knob: stamp it into the
/// sub-option structs the pipeline components actually consume.
RewriteOptions RewriteWithLimits(RewriteOptions rewrite,
                                 const ResourceLimits& l) {
  rewrite.limits = l;
  return rewrite;
}

SynopsisOptions SynopsisWithLimits(SynopsisOptions synopsis,
                                   const ResourceLimits& l) {
  synopsis.max_cells = static_cast<size_t>(
      std::min<uint64_t>(synopsis.max_cells, l.max_view_cells));
  return synopsis;
}

/// One snapshot of the accountant into the stats block, shared by every
/// path that mutates the ledger. A poisoned accountant already reports 0
/// from total()/remaining(); the flag makes the poisoning visible instead
/// of looking like an untouched budget.
void SnapshotBudget(const ViewManager& views, EngineStats* stats) {
  const BudgetAccountant* budget = views.accountant();
  if (budget == nullptr) return;
  stats->budget_total_epsilon = budget->total();
  stats->budget_spent_epsilon = budget->spent();
  stats->budget_poisoned = budget->poisoned();
  stats->budget_refunds = 0;
  for (const BudgetAccountant::Entry& entry : budget->ledger()) {
    if (entry.refund) ++stats->budget_refunds;
  }
}

}  // namespace

std::ostream& operator<<(std::ostream& os, const PrepareReport& report) {
  os << "prepared " << report.num_prepared << "/"
     << report.query_status.size() << " queries";
  if (report.AllHealthy()) return os << " (all healthy)";
  os << ", " << report.num_quarantined << " quarantined, "
     << report.num_views_failed << " views failed";
  size_t shown = 0;
  for (size_t i = 0; i < report.query_status.size() && shown < 3; ++i) {
    if (report.query_status[i].ok()) continue;
    os << "\n  query " << i << ": " << report.query_status[i].ToString();
    ++shown;
  }
  return os;
}

std::ostream& operator<<(std::ostream& os, const EngineStats& stats) {
  os << "queries=" << stats.num_queries << " views=" << stats.num_views
     << " | rewrite=" << stats.rewrite_seconds
     << "s viewgen=" << stats.view_generation_seconds
     << "s publish=" << stats.publish_seconds
     << "s (synopsis total " << stats.SynopsisSeconds()
     << "s) | answer=" << stats.answer_seconds
     << "s | budget: spent=" << stats.budget_spent_epsilon << " of "
     << stats.budget_total_epsilon
     << " eps, refunds=" << stats.budget_refunds;
  if (stats.budget_poisoned) os << " (POISONED)";
  return os;
}

double RelativeErrorMetric(double true_answer, double noisy_answer) {
  return std::fabs(true_answer - noisy_answer) /
         std::max(50.0, std::fabs(true_answer));
}

ViewRewriteEngine::ViewRewriteEngine(const Database& db, PrivacyPolicy policy,
                                     EngineOptions options)
    : db_(db),
      policy_(std::move(policy)),
      options_(options),
      rewriter_(db.schema(), RewriteWithLimits(options.rewrite,
                                               options.limits)),
      views_(db.schema(), policy_,
             SynopsisWithLimits(options.synopsis, options.limits)),
      executor_(db),
      rng_(options.seed) {
  options_.rewrite.limits = options_.limits;
  options_.synopsis = SynopsisWithLimits(options_.synopsis, options_.limits);
}

Status ViewRewriteEngine::Prepare(const std::vector<std::string>& workload) {
  stats_ = EngineStats{};
  stats_.num_queries = workload.size();
  report_ = PrepareReport{};
  report_.query_status.assign(workload.size(), Status::OK());
  const bool strict = options_.strict;
  auto quarantine = [&](size_t i, Status st) {
    report_.query_status[i] = std::move(st);
    ++report_.num_quarantined;
  };

  // ---- Durable budget ledger (before anything can spend). ------------------
  if (!options_.budget_wal_path.empty() && budget_wal_ == nullptr) {
    BudgetWal::Options wal_options;
    wal_options.compact_threshold_bytes = options_.budget_wal_compact_bytes;
    // Same lifetime-total rule as ViewManager::Publish: the WAL's total is
    // the budget the whole synopsis lifetime composes against.
    const double lifetime_total =
        options_.lifetime_epsilon > options_.epsilon ? options_.lifetime_epsilon
                                                     : options_.epsilon;
    VR_ASSIGN_OR_RETURN(
        budget_wal_,
        BudgetWal::Open(options_.budget_wal_path, lifetime_total,
                        wal_options));
    views_.AttachBudgetWal(budget_wal_.get());
  }

  // ---- Query rewriting. ----------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  rewritten_.clear();
  rewritten_.resize(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto rewrite_one = [&]() -> Result<RewrittenQuery> {
      VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt,
                          ParseSelect(workload[i], options_.limits));
      return rewriter_.Rewrite(*stmt);
    };
    Result<RewrittenQuery> rq = rewrite_one();
    if (!rq.ok()) {
      if (strict) return rq.status();
      quarantine(i, rq.status());
      continue;
    }
    rewritten_[i] = std::move(rq).value();
  }
  stats_.rewrite_seconds = SecondsSince(t0);

  // ---- View generation (registration + merging by signature). --------------
  t0 = std::chrono::steady_clock::now();
  bound_.clear();
  bound_.resize(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!report_.query_status[i].ok()) continue;
    Result<BoundRewrittenQuery> bq =
        views_.RegisterRewritten(rewritten_[i], nullptr);
    if (!bq.ok()) {
      if (strict) return bq.status();
      quarantine(i, bq.status());
      continue;
    }
    bound_[i] = std::move(bq).value();
  }
  stats_.view_generation_seconds = SecondsSince(t0);
  stats_.num_views = views_.NumViews();

  // ---- View publication (the only budget-consuming stage). -----------------
  t0 = std::chrono::steady_clock::now();
  if (strict || views_.NumViews() > 0) {
    VR_RETURN_NOT_OK(views_.Publish(db_, options_.epsilon, &rng_,
                                    options_.budget_allocation,
                                    /*degraded=*/!strict,
                                    options_.lifetime_epsilon));
    report_.num_views_failed = views_.failed_views().size();
    if (report_.num_views_failed > 0) {
      for (size_t i = 0; i < bound_.size(); ++i) {
        if (!report_.query_status[i].ok()) continue;
        if (const Status* failure = views_.BindingFailure(bound_[i])) {
          quarantine(i, *failure);
        }
      }
    }
  }
  stats_.publish_seconds = SecondsSince(t0);
  SnapshotBudget(views_, &stats_);

  report_.num_prepared = workload.size() - report_.num_quarantined;
  if (!workload.empty() && report_.num_prepared == 0) {
    return Status::ExecutionError(
        "all " + std::to_string(workload.size()) +
        " workload queries failed to prepare; first error: " +
        report_.query_status.front().ToString());
  }
  return Status::OK();
}

Result<ViewManager::RepublishOutcome> ViewRewriteEngine::RepublishChanged(
    const std::vector<std::string>& changed_relations,
    double generation_epsilon, uint64_t generation) {
  auto t0 = std::chrono::steady_clock::now();
  Result<ViewManager::RepublishOutcome> outcome = views_.RepublishViews(
      db_, changed_relations, generation_epsilon, &rng_, generation);
  stats_.publish_seconds += SecondsSince(t0);
  SnapshotBudget(views_, &stats_);
  return outcome;
}

Status ViewRewriteEngine::RefundGeneration(
    const ViewManager::RepublishOutcome& outcome) {
  Status st = views_.RefundGeneration(outcome);
  SnapshotBudget(views_, &stats_);
  return st;
}

Status ViewRewriteEngine::CheckpointBudgetWal(uint64_t generation) {
  if (budget_wal_ == nullptr) return Status::OK();
  return budget_wal_->AppendCheckpoint(generation);
}

bool ViewRewriteEngine::IsGrouped(size_t i) const {
  if (i >= bound_.size()) return false;
  const BoundRewrittenQuery& q = bound_[i];
  return q.chain.empty() && q.terms.size() == 1 &&
         q.terms[0].query.cell_query != nullptr &&
         !q.terms[0].query.cell_query->group_by.empty();
}

Result<aggregate::GroupedData> ViewRewriteEngine::GroupedAnswer(size_t i,
                                                                bool exact) {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  if (!IsGrouped(i)) {
    return Status::Unsupported("query " + std::to_string(i) +
                               " is scalar; use NoisyAnswer/TrueAnswer");
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<aggregate::GroupedData> out =
      views_.AnswerGroupedData(bound_[i].terms[0].query, /*params=*/{}, exact);
  stats_.answer_seconds += SecondsSince(t0);
  return out;
}

Result<double> ViewRewriteEngine::NoisyAnswer(size_t i) {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  if (IsGrouped(i)) {
    return Status::Unsupported("query " + std::to_string(i) +
                               " is grouped; use GroupedAnswer");
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<double> out = views_.Answer(bound_[i]);
  stats_.answer_seconds += SecondsSince(t0);
  return out;
}

Result<double> ViewRewriteEngine::TrueAnswer(size_t i) const {
  if (i >= rewritten_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  if (IsGrouped(i)) {
    return Status::Unsupported("query " + std::to_string(i) +
                               " is grouped; use GroupedAnswer");
  }
  return executor_.ExecuteRewritten(rewritten_[i]);
}

Result<double> ViewRewriteEngine::ExactViewAnswer(size_t i) const {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  if (IsGrouped(i)) {
    return Status::Unsupported("query " + std::to_string(i) +
                               " is grouped; use GroupedAnswer");
  }
  return views_.Answer(bound_[i], /*exact=*/true);
}

Result<double> ViewRewriteEngine::RelativeError(size_t i) {
  VR_ASSIGN_OR_RETURN(double truth, ExactViewAnswer(i));
  VR_ASSIGN_OR_RETURN(double noisy, NoisyAnswer(i));
  return RelativeErrorMetric(truth, noisy);
}

}  // namespace viewrewrite
