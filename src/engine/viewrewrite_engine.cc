#include "engine/viewrewrite_engine.h"

#include <chrono>
#include <cmath>

#include "sql/parser.h"

namespace viewrewrite {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

double RelativeErrorMetric(double true_answer, double noisy_answer) {
  return std::fabs(true_answer - noisy_answer) /
         std::max(50.0, std::fabs(true_answer));
}

ViewRewriteEngine::ViewRewriteEngine(const Database& db, PrivacyPolicy policy,
                                     EngineOptions options)
    : db_(db),
      policy_(std::move(policy)),
      options_(options),
      rewriter_(db.schema(), options.rewrite),
      views_(db.schema(), policy_, options.synopsis),
      executor_(db),
      rng_(options.seed) {}

Status ViewRewriteEngine::Prepare(const std::vector<std::string>& workload) {
  stats_ = EngineStats{};
  stats_.num_queries = workload.size();

  // ---- Query rewriting. ----------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  rewritten_.clear();
  rewritten_.reserve(workload.size());
  for (const std::string& sql : workload) {
    VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
    VR_ASSIGN_OR_RETURN(RewrittenQuery rq, rewriter_.Rewrite(*stmt));
    rewritten_.push_back(std::move(rq));
  }
  stats_.rewrite_seconds = SecondsSince(t0);

  // ---- View generation (registration + merging by signature). --------------
  t0 = std::chrono::steady_clock::now();
  bound_.clear();
  bound_.reserve(rewritten_.size());
  for (const RewrittenQuery& rq : rewritten_) {
    VR_ASSIGN_OR_RETURN(BoundRewrittenQuery bq,
                        views_.RegisterRewritten(rq, nullptr));
    bound_.push_back(std::move(bq));
  }
  stats_.view_generation_seconds = SecondsSince(t0);
  stats_.num_views = views_.NumViews();

  // ---- View publication (the only budget-consuming stage). -----------------
  t0 = std::chrono::steady_clock::now();
  VR_RETURN_NOT_OK(views_.Publish(db_, options_.epsilon, &rng_,
                                  options_.budget_allocation));
  stats_.publish_seconds = SecondsSince(t0);
  return Status::OK();
}

Result<double> ViewRewriteEngine::NoisyAnswer(size_t i) {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<double> out = views_.Answer(bound_[i]);
  stats_.answer_seconds += SecondsSince(t0);
  return out;
}

Result<double> ViewRewriteEngine::TrueAnswer(size_t i) const {
  if (i >= rewritten_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  return executor_.ExecuteRewritten(rewritten_[i]);
}

Result<double> ViewRewriteEngine::ExactViewAnswer(size_t i) const {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  return views_.Answer(bound_[i], /*exact=*/true);
}

Result<double> ViewRewriteEngine::RelativeError(size_t i) {
  VR_ASSIGN_OR_RETURN(double truth, ExactViewAnswer(i));
  VR_ASSIGN_OR_RETURN(double noisy, NoisyAnswer(i));
  return RelativeErrorMetric(truth, noisy);
}

}  // namespace viewrewrite
