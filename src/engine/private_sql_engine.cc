#include "engine/private_sql_engine.h"

#include <chrono>
#include <set>

#include "rewrite/analysis.h"
#include "sql/parser.h"

namespace viewrewrite {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

RewriteOptions BaselineRewriteOptions(RewriteOptions base) {
  // Materialization-only rewriting: keep subquery constants inside the
  // view body so they end up in the view signature.
  base.enable_hoist = false;
  base.enable_merge = false;
  base.enable_key_filter_promotion = false;
  return base;
}

void CollectDerivedAliases(const TableRef& ref, std::set<std::string>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      return;
    case TableRefKind::kDerived:
      out->insert(static_cast<const DerivedTableRef&>(ref).alias);
      return;
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      CollectDerivedAliases(*j.left, out);
      CollectDerivedAliases(*j.right, out);
      return;
    }
  }
}

}  // namespace

PrivateSqlEngine::PrivateSqlEngine(const Database& db, PrivacyPolicy policy,
                                   EngineOptions options)
    : db_(db),
      policy_(std::move(policy)),
      options_(options),
      rewriter_(db.schema(), BaselineRewriteOptions(options.rewrite)),
      views_(db.schema(), policy_, options.synopsis),
      executor_(db),
      rng_(options.seed) {}

Status PrivateSqlEngine::Prepare(const std::vector<std::string>& workload) {
  stats_ = EngineStats{};
  stats_.num_queries = workload.size();
  report_ = PrepareReport{};
  report_.query_status.assign(workload.size(), Status::OK());
  const bool strict = options_.strict;
  auto quarantine = [&](size_t i, Status st) {
    report_.query_status[i] = std::move(st);
    ++report_.num_quarantined;
  };

  auto t0 = std::chrono::steady_clock::now();
  rewritten_.clear();
  rewritten_.resize(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto rewrite_one = [&]() -> Result<RewrittenQuery> {
      VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(workload[i]));
      return rewriter_.Rewrite(*stmt);
    };
    Result<RewrittenQuery> rq = rewrite_one();
    if (!rq.ok()) {
      if (strict) return rq.status();
      quarantine(i, rq.status());
      continue;
    }
    rewritten_[i] = std::move(rq).value();
  }
  stats_.rewrite_seconds = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  bound_.clear();
  bound_.resize(workload.size());
  // Subquery-derived predicates (anything touching a derived table, i.e.
  // a rewritten subquery) are baked into the view; chain-link queries —
  // PrivateSQL's per-subquery views — bake all their predicates.
  ViewManager::BakePredicate bake_all = [](const Expr&) { return true; };
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!report_.query_status[i].ok()) continue;
    const RewrittenQuery& rq = rewritten_[i];
    auto bind_one = [&]() -> Result<BoundRewrittenQuery> {
      BoundRewrittenQuery bq;
      for (const ChainLink& link : rq.chain) {
        VR_ASSIGN_OR_RETURN(BoundQuery b,
                            views_.RegisterScalar(*link.query, bake_all));
        BoundRewrittenQuery::Link l;
        l.var = link.var;
        l.query = std::move(b);
        bq.chain.push_back(std::move(l));
      }
      for (const auto& term : rq.combination.terms) {
        std::set<std::string> derived_aliases;
        for (const auto& f : term.query->from) {
          CollectDerivedAliases(*f, &derived_aliases);
        }
        ViewManager::BakePredicate bake =
            [&derived_aliases](const Expr& conjunct) {
              std::vector<const ColumnRefExpr*> refs;
              CollectColumnRefsShallow(&conjunct, &refs);
              for (const ColumnRefExpr* r : refs) {
                if (derived_aliases.count(r->table) > 0) return true;
              }
              return false;
            };
        VR_ASSIGN_OR_RETURN(BoundQuery b,
                            views_.RegisterScalar(*term.query, bake));
        BoundRewrittenQuery::Term t;
        t.coeff = term.coeff;
        t.query = std::move(b);
        bq.terms.push_back(std::move(t));
      }
      return bq;
    };
    Result<BoundRewrittenQuery> bq = bind_one();
    if (!bq.ok()) {
      if (strict) return bq.status();
      quarantine(i, bq.status());
      continue;
    }
    bound_[i] = std::move(bq).value();
  }
  stats_.view_generation_seconds = SecondsSince(t0);
  stats_.num_views = views_.NumViews();

  t0 = std::chrono::steady_clock::now();
  if (strict || views_.NumViews() > 0) {
    VR_RETURN_NOT_OK(views_.Publish(db_, options_.epsilon, &rng_,
                                    options_.budget_allocation,
                                    /*degraded=*/!strict));
    report_.num_views_failed = views_.failed_views().size();
    if (report_.num_views_failed > 0) {
      for (size_t i = 0; i < bound_.size(); ++i) {
        if (!report_.query_status[i].ok()) continue;
        if (const Status* failure = views_.BindingFailure(bound_[i])) {
          quarantine(i, *failure);
        }
      }
    }
  }
  stats_.publish_seconds = SecondsSince(t0);
  if (const BudgetAccountant* budget = views_.accountant()) {
    stats_.budget_total_epsilon = budget->total();
    stats_.budget_spent_epsilon = budget->spent();
    for (const BudgetAccountant::Entry& entry : budget->ledger()) {
      if (entry.refund) ++stats_.budget_refunds;
    }
  }

  report_.num_prepared = workload.size() - report_.num_quarantined;
  if (!workload.empty() && report_.num_prepared == 0) {
    return Status::ExecutionError(
        "all " + std::to_string(workload.size()) +
        " workload queries failed to prepare; first error: " +
        report_.query_status.front().ToString());
  }
  return Status::OK();
}

Result<double> PrivateSqlEngine::NoisyAnswer(size_t i) {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  auto t0 = std::chrono::steady_clock::now();
  Result<double> out = views_.Answer(bound_[i]);
  stats_.answer_seconds += SecondsSince(t0);
  return out;
}

Result<double> PrivateSqlEngine::TrueAnswer(size_t i) const {
  if (i >= rewritten_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  return executor_.ExecuteRewritten(rewritten_[i]);
}

Result<double> PrivateSqlEngine::ExactViewAnswer(size_t i) const {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  if (!report_.query_status[i].ok()) return report_.query_status[i];
  return views_.Answer(bound_[i], /*exact=*/true);
}

Result<double> PrivateSqlEngine::RelativeError(size_t i) {
  VR_ASSIGN_OR_RETURN(double truth, ExactViewAnswer(i));
  VR_ASSIGN_OR_RETURN(double noisy, NoisyAnswer(i));
  return RelativeErrorMetric(truth, noisy);
}

}  // namespace viewrewrite
