#include "engine/private_sql_engine.h"

#include <chrono>
#include <set>

#include "rewrite/analysis.h"
#include "sql/parser.h"

namespace viewrewrite {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

RewriteOptions BaselineRewriteOptions(RewriteOptions base) {
  // Materialization-only rewriting: keep subquery constants inside the
  // view body so they end up in the view signature.
  base.enable_hoist = false;
  base.enable_merge = false;
  base.enable_key_filter_promotion = false;
  return base;
}

void CollectDerivedAliases(const TableRef& ref, std::set<std::string>* out) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      return;
    case TableRefKind::kDerived:
      out->insert(static_cast<const DerivedTableRef&>(ref).alias);
      return;
    case TableRefKind::kJoin: {
      const auto& j = static_cast<const JoinTableRef&>(ref);
      CollectDerivedAliases(*j.left, out);
      CollectDerivedAliases(*j.right, out);
      return;
    }
  }
}

}  // namespace

PrivateSqlEngine::PrivateSqlEngine(const Database& db, PrivacyPolicy policy,
                                   EngineOptions options)
    : db_(db),
      policy_(std::move(policy)),
      options_(options),
      rewriter_(db.schema(), BaselineRewriteOptions(options.rewrite)),
      views_(db.schema(), policy_, options.synopsis),
      executor_(db),
      rng_(options.seed) {}

Status PrivateSqlEngine::Prepare(const std::vector<std::string>& workload) {
  stats_ = EngineStats{};
  stats_.num_queries = workload.size();

  auto t0 = std::chrono::steady_clock::now();
  rewritten_.clear();
  rewritten_.reserve(workload.size());
  for (const std::string& sql : workload) {
    VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
    VR_ASSIGN_OR_RETURN(RewrittenQuery rq, rewriter_.Rewrite(*stmt));
    rewritten_.push_back(std::move(rq));
  }
  stats_.rewrite_seconds = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  bound_.clear();
  bound_.reserve(rewritten_.size());
  // Subquery-derived predicates (anything touching a derived table, i.e.
  // a rewritten subquery) are baked into the view; chain-link queries —
  // PrivateSQL's per-subquery views — bake all their predicates.
  ViewManager::BakePredicate bake_all = [](const Expr&) { return true; };
  for (const RewrittenQuery& rq : rewritten_) {
    BoundRewrittenQuery bq;
    for (const ChainLink& link : rq.chain) {
      VR_ASSIGN_OR_RETURN(BoundQuery b,
                          views_.RegisterScalar(*link.query, bake_all));
      BoundRewrittenQuery::Link l;
      l.var = link.var;
      l.query = std::move(b);
      bq.chain.push_back(std::move(l));
    }
    for (const auto& term : rq.combination.terms) {
      std::set<std::string> derived_aliases;
      for (const auto& f : term.query->from) {
        CollectDerivedAliases(*f, &derived_aliases);
      }
      ViewManager::BakePredicate bake =
          [&derived_aliases](const Expr& conjunct) {
            std::vector<const ColumnRefExpr*> refs;
            CollectColumnRefsShallow(&conjunct, &refs);
            for (const ColumnRefExpr* r : refs) {
              if (derived_aliases.count(r->table) > 0) return true;
            }
            return false;
          };
      VR_ASSIGN_OR_RETURN(BoundQuery b,
                          views_.RegisterScalar(*term.query, bake));
      BoundRewrittenQuery::Term t;
      t.coeff = term.coeff;
      t.query = std::move(b);
      bq.terms.push_back(std::move(t));
    }
    bound_.push_back(std::move(bq));
  }
  stats_.view_generation_seconds = SecondsSince(t0);
  stats_.num_views = views_.NumViews();

  t0 = std::chrono::steady_clock::now();
  VR_RETURN_NOT_OK(views_.Publish(db_, options_.epsilon, &rng_,
                                  options_.budget_allocation));
  stats_.publish_seconds = SecondsSince(t0);
  return Status::OK();
}

Result<double> PrivateSqlEngine::NoisyAnswer(size_t i) {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<double> out = views_.Answer(bound_[i]);
  stats_.answer_seconds += SecondsSince(t0);
  return out;
}

Result<double> PrivateSqlEngine::TrueAnswer(size_t i) const {
  if (i >= rewritten_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  return executor_.ExecuteRewritten(rewritten_[i]);
}

Result<double> PrivateSqlEngine::ExactViewAnswer(size_t i) const {
  if (i >= bound_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  return views_.Answer(bound_[i], /*exact=*/true);
}

Result<double> PrivateSqlEngine::RelativeError(size_t i) {
  VR_ASSIGN_OR_RETURN(double truth, ExactViewAnswer(i));
  VR_ASSIGN_OR_RETURN(double noisy, NoisyAnswer(i));
  return RelativeErrorMetric(truth, noisy);
}

}  // namespace viewrewrite
