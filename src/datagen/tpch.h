#ifndef VIEWREWRITE_DATAGEN_TPCH_H_
#define VIEWREWRITE_DATAGEN_TPCH_H_

#include <memory>

#include "common/random.h"
#include "storage/table.h"

namespace viewrewrite {

/// Configuration for the deterministic TPC-H-schema generator.
///
/// `scale` plays the role of the paper's 10M/20M/40M/80M database sizes:
/// scale 1 corresponds to the 10M setting, with row counts reduced ~1000x
/// relative to real TPC-H while keeping the 8-relation schema, key
/// structure, cardinality ratios, and skewed join fan-outs.
struct TpchConfig {
  int scale = 1;
  uint64_t seed = 20250704;

  // Base cardinalities at scale 1.
  int64_t customers = 750;
  int64_t parts = 500;
  int64_t suppliers = 50;

  /// Per-customer order fan-out is Zipf-skewed, capped below the synopsis
  /// count bound (64) so derived COUNT attributes stay in-domain.
  int64_t max_orders_per_customer = 40;
  /// TPC-H lineitems per order: 1..7.
  int64_t max_lines_per_order = 7;
};

/// The 8-relation TPC-H schema with bounded domains on every filterable
/// attribute (domains are sized so that their spans divide evenly into
/// the registered bucket counts; workload predicates then align exactly
/// with synopsis cells):
///
///   region(r_regionkey)                                  5 rows
///   nation(n_nationkey, n_regionkey)                    25 rows
///   supplier(s_suppkey, s_nationkey, s_acctbal)
///   part(p_partkey, p_brand, p_size, p_retailprice)
///   partsupp(ps_id, ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)
///   customer(c_custkey, c_nationkey, c_mktsegment, c_acctbal)
///   orders(o_orderkey, o_custkey, o_orderstatus, o_orderpriority,
///          o_orderyear, o_totalprice)
///   lineitem(l_linenumber, l_orderkey, l_partkey, l_suppkey, l_quantity,
///            l_extendedprice, l_discount, l_returnflag, l_shipyear)
Schema MakeTpchSchema(const TpchConfig& config = {});

/// Generates a database instance. Deterministic in `config.seed`.
std::unique_ptr<Database> GenerateTpch(const TpchConfig& config);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DATAGEN_TPCH_H_
