#ifndef VIEWREWRITE_DATAGEN_CENSUS_H_
#define VIEWREWRITE_DATAGEN_CENSUS_H_

#include <memory>

#include "common/random.h"
#include "storage/table.h"

namespace viewrewrite {

/// Synthetic U.S. Census-style data (the paper's second dataset):
///   household(h_id, h_state, h_income, h_size)
///   person(p_id, p_hid -> household, p_age, p_sex, p_income)
/// Households are the primary privacy relation in the paper's policy.
struct CensusConfig {
  int scale = 1;
  uint64_t seed = 19370101;
  int64_t households = 2000;  // at scale 1
  int64_t max_persons_per_household = 8;
};

Schema MakeCensusSchema(const CensusConfig& config = {});

std::unique_ptr<Database> GenerateCensus(const CensusConfig& config);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DATAGEN_CENSUS_H_
