#include "datagen/census.h"

namespace viewrewrite {

namespace {

ColumnDomain IntCats(int64_t n) {
  std::vector<Value> cats;
  cats.reserve(n);
  for (int64_t i = 0; i < n; ++i) cats.push_back(Value::Int(i));
  return ColumnDomain::Categorical(std::move(cats));
}

}  // namespace

Schema MakeCensusSchema(const CensusConfig& config) {
  Schema schema;
  const int64_t hkey_hi = 2048 * config.scale - 1;
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"h_id", DataType::kInt,
                    ColumnDomain::IntBuckets(0, hkey_hi, 8)});
    cols.push_back({"h_state", DataType::kInt, IntCats(10)});
    cols.push_back(
        {"h_income", DataType::kInt, ColumnDomain::IntBuckets(0, 8191, 16)});
    cols.push_back(
        {"h_size", DataType::kInt, ColumnDomain::IntBuckets(0, 7, 8)});
    (void)schema.AddTable(TableSchema("household", std::move(cols), "h_id"));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"p_id", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"p_hid", DataType::kInt,
                    ColumnDomain::IntBuckets(0, hkey_hi, 8)});
    cols.push_back(
        {"p_age", DataType::kInt, ColumnDomain::IntBuckets(0, 95, 16)});
    cols.push_back({"p_sex", DataType::kInt, IntCats(2)});
    cols.push_back(
        {"p_income", DataType::kInt, ColumnDomain::IntBuckets(0, 8191, 16)});
    (void)schema.AddTable(TableSchema("person", std::move(cols), "p_id",
                                      {{"p_hid", "household", "h_id"}}));
  }
  return schema;
}

std::unique_ptr<Database> GenerateCensus(const CensusConfig& config) {
  auto db = std::make_unique<Database>(MakeCensusSchema(config));
  Random rng(config.seed);
  Table* household = db->MutableTable("household");
  Table* person = db->MutableTable("person");
  const int64_t n_households = config.households * config.scale;
  household->Reserve(n_households);
  int64_t next_person = 1;
  for (int64_t h = 1; h <= n_households; ++h) {
    int64_t size = rng.UniformInt(1, config.max_persons_per_household);
    household->InsertUnchecked({Value::Int(h),
                                Value::Int(rng.UniformInt(0, 9)),
                                Value::Int(rng.UniformInt(0, 8191)),
                                Value::Int(size)});
    for (int64_t p = 0; p < size; ++p) {
      person->InsertUnchecked({Value::Int(next_person++), Value::Int(h),
                               Value::Int(rng.UniformInt(0, 95)),
                               Value::Int(rng.UniformInt(0, 1)),
                               Value::Int(rng.UniformInt(0, 8191))});
    }
  }
  return db;
}

}  // namespace viewrewrite
