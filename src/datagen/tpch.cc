#include "datagen/tpch.h"

#include <algorithm>

namespace viewrewrite {

namespace {

ColumnDomain IntCats(int64_t n) {
  std::vector<Value> cats;
  cats.reserve(n);
  for (int64_t i = 0; i < n; ++i) cats.push_back(Value::Int(i));
  return ColumnDomain::Categorical(std::move(cats));
}

ColumnDomain StrCats(std::vector<const char*> values) {
  std::vector<Value> cats;
  cats.reserve(values.size());
  for (const char* v : values) cats.push_back(Value::String(v));
  return ColumnDomain::Categorical(std::move(cats));
}

}  // namespace

Schema MakeTpchSchema(const TpchConfig& config) {
  Schema schema;
  // Key domains are sized to the generated instance (rounded up to a
  // power-of-two multiple so bucket boundaries stay integral); they are
  // needed when promoted key filters become view dimensions.
  const int64_t cust_hi = 1024 * config.scale - 1;
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"r_regionkey", DataType::kInt, IntCats(5)});
    (void)schema.AddTable(TableSchema("region", std::move(cols),
                                      "r_regionkey"));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"n_nationkey", DataType::kInt, IntCats(25)});
    cols.push_back({"n_regionkey", DataType::kInt, IntCats(5)});
    (void)schema.AddTable(
        TableSchema("nation", std::move(cols), "n_nationkey",
                    {{"n_regionkey", "region", "r_regionkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"s_suppkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"s_nationkey", DataType::kInt, IntCats(25)});
    cols.push_back(
        {"s_acctbal", DataType::kInt, ColumnDomain::IntBuckets(0, 8191, 16)});
    (void)schema.AddTable(
        TableSchema("supplier", std::move(cols), "s_suppkey",
                    {{"s_nationkey", "nation", "n_nationkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"p_partkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"p_brand", DataType::kInt, IntCats(10)});
    cols.push_back(
        {"p_size", DataType::kInt, ColumnDomain::IntBuckets(0, 63, 16)});
    cols.push_back({"p_retailprice", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 2047, 16)});
    (void)schema.AddTable(TableSchema("part", std::move(cols), "p_partkey"));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"ps_id", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"ps_partkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"ps_suppkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back(
        {"ps_availqty", DataType::kInt, ColumnDomain::IntBuckets(0, 1023, 16)});
    cols.push_back({"ps_supplycost", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 1023, 16)});
    (void)schema.AddTable(
        TableSchema("partsupp", std::move(cols), "ps_id",
                    {{"ps_partkey", "part", "p_partkey"},
                     {"ps_suppkey", "supplier", "s_suppkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"c_custkey", DataType::kInt,
                    ColumnDomain::IntBuckets(0, cust_hi, 8)});
    cols.push_back({"c_nationkey", DataType::kInt, IntCats(25)});
    cols.push_back({"c_mktsegment", DataType::kInt, IntCats(5)});
    cols.push_back(
        {"c_acctbal", DataType::kInt, ColumnDomain::IntBuckets(0, 8191, 16)});
    (void)schema.AddTable(
        TableSchema("customer", std::move(cols), "c_custkey",
                    {{"c_nationkey", "nation", "n_nationkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"o_orderkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"o_custkey", DataType::kInt,
                    ColumnDomain::IntBuckets(0, cust_hi, 8)});
    cols.push_back(
        {"o_orderstatus", DataType::kString, StrCats({"f", "o", "p"})});
    cols.push_back({"o_orderpriority", DataType::kInt, IntCats(5)});
    cols.push_back({"o_orderyear", DataType::kInt,
                    ColumnDomain::Categorical(
                        {Value::Int(1992), Value::Int(1993), Value::Int(1994),
                         Value::Int(1995), Value::Int(1996), Value::Int(1997),
                         Value::Int(1998)})});
    cols.push_back({"o_totalprice", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 65535, 16)});
    (void)schema.AddTable(
        TableSchema("orders", std::move(cols), "o_orderkey",
                    {{"o_custkey", "customer", "c_custkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"l_linenumber", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"l_orderkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"l_partkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"l_suppkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back(
        {"l_quantity", DataType::kInt, ColumnDomain::IntBuckets(0, 63, 16)});
    cols.push_back({"l_extendedprice", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 16383, 16)});
    cols.push_back(
        {"l_discount", DataType::kInt, ColumnDomain::IntBuckets(0, 7, 8)});
    cols.push_back(
        {"l_returnflag", DataType::kString, StrCats({"a", "n", "r"})});
    cols.push_back({"l_shipyear", DataType::kInt,
                    ColumnDomain::Categorical(
                        {Value::Int(1992), Value::Int(1993), Value::Int(1994),
                         Value::Int(1995), Value::Int(1996), Value::Int(1997),
                         Value::Int(1998)})});
    (void)schema.AddTable(
        TableSchema("lineitem", std::move(cols), "l_linenumber",
                    {{"l_orderkey", "orders", "o_orderkey"},
                     {"l_partkey", "part", "p_partkey"},
                     {"l_suppkey", "supplier", "s_suppkey"}}));
  }
  return schema;
}

std::unique_ptr<Database> GenerateTpch(const TpchConfig& config) {
  auto db = std::make_unique<Database>(MakeTpchSchema(config));
  Random rng(config.seed);

  Table* region = db->MutableTable("region");
  for (int64_t r = 0; r < 5; ++r) {
    region->InsertUnchecked({Value::Int(r)});
  }
  Table* nation = db->MutableTable("nation");
  for (int64_t n = 0; n < 25; ++n) {
    nation->InsertUnchecked({Value::Int(n), Value::Int(n % 5)});
  }

  const int64_t n_suppliers = config.suppliers * config.scale;
  Table* supplier = db->MutableTable("supplier");
  supplier->Reserve(n_suppliers);
  for (int64_t sk = 1; sk <= n_suppliers; ++sk) {
    supplier->InsertUnchecked({Value::Int(sk),
                               Value::Int(rng.UniformInt(0, 24)),
                               Value::Int(rng.UniformInt(0, 8191))});
  }

  const int64_t n_parts = config.parts * config.scale;
  Table* part = db->MutableTable("part");
  part->Reserve(n_parts);
  for (int64_t pk = 1; pk <= n_parts; ++pk) {
    part->InsertUnchecked({Value::Int(pk), Value::Int(rng.UniformInt(0, 9)),
                           Value::Int(rng.UniformInt(0, 63)),
                           Value::Int(rng.UniformInt(0, 2047))});
  }

  // partsupp: 4 suppliers per part (TPC-H convention).
  Table* partsupp = db->MutableTable("partsupp");
  partsupp->Reserve(n_parts * 4);
  int64_t ps_id = 1;
  for (int64_t pk = 1; pk <= n_parts; ++pk) {
    for (int64_t i = 0; i < 4; ++i) {
      partsupp->InsertUnchecked({Value::Int(ps_id++), Value::Int(pk),
                                 Value::Int(rng.UniformInt(1, n_suppliers)),
                                 Value::Int(rng.UniformInt(0, 1023)),
                                 Value::Int(rng.UniformInt(0, 1023))});
    }
  }

  const int64_t n_customers = config.customers * config.scale;
  Table* customer = db->MutableTable("customer");
  Table* orders = db->MutableTable("orders");
  Table* lineitem = db->MutableTable("lineitem");
  customer->Reserve(n_customers);
  int64_t next_order = 1;
  int64_t next_line = 1;
  for (int64_t ck = 1; ck <= n_customers; ++ck) {
    customer->InsertUnchecked({Value::Int(ck),
                               Value::Int(rng.UniformInt(0, 24)),
                               Value::Int(rng.UniformInt(0, 4)),
                               Value::Int(rng.UniformInt(0, 8191))});
    // Skewed order fan-out: most customers have a few orders, some many.
    int64_t n_orders =
        std::min(config.max_orders_per_customer,
                 rng.Zipf(config.max_orders_per_customer, 1.2) + 2);
    if (rng.Bernoulli(0.1)) n_orders = 0;  // customers with no orders
    const char* statuses[] = {"f", "o", "p"};
    for (int64_t o = 0; o < n_orders; ++o) {
      int64_t okey = next_order++;
      orders->InsertUnchecked(
          {Value::Int(okey), Value::Int(ck),
           Value::String(statuses[rng.UniformInt(0, 2)]),
           Value::Int(rng.UniformInt(0, 4)),
           Value::Int(rng.UniformInt(1992, 1998)),
           Value::Int(rng.UniformInt(0, 65535))});
      int64_t n_lines = rng.UniformInt(1, config.max_lines_per_order);
      const char* flags[] = {"a", "n", "r"};
      for (int64_t l = 0; l < n_lines; ++l) {
        lineitem->InsertUnchecked(
            {Value::Int(next_line++), Value::Int(okey),
             Value::Int(rng.Zipf(n_parts, 1.1)),
             Value::Int(rng.UniformInt(1, n_suppliers)),
             Value::Int(rng.UniformInt(0, 63)),
             Value::Int(rng.UniformInt(0, 16383)),
             Value::Int(rng.UniformInt(0, 7)),
             Value::String(flags[rng.UniformInt(0, 2)]),
             Value::Int(rng.UniformInt(1992, 1998))});
      }
    }
  }
  return db;
}

}  // namespace viewrewrite
