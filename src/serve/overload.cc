#include "serve/overload.h"

#include <algorithm>

namespace viewrewrite {

namespace {

std::chrono::steady_clock::time_point DefaultNow() {
  return std::chrono::steady_clock::now();
}

}  // namespace

const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "unknown";
}

AdaptiveLimiter::AdaptiveLimiter(AdaptiveLimiterOptions options, ClockFn clock)
    : options_(options), clock_(clock ? std::move(clock) : DefaultNow) {
  options_.min_limit = std::max(1.0, options_.min_limit);
  options_.max_limit = std::max(options_.min_limit, options_.max_limit);
  options_.initial_limit =
      std::clamp(options_.initial_limit, options_.min_limit,
                 options_.max_limit);
  options_.decrease_factor = std::clamp(options_.decrease_factor, 0.01, 0.99);
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 0.01, 1.0);
  options_.batch_fraction = std::clamp(options_.batch_fraction, 0.0, 1.0);
  options_.background_fraction =
      std::clamp(options_.background_fraction, 0.0, 1.0);
  limit_ = options_.initial_limit;
  // Start the cooldown fully elapsed so the first over-target sample may
  // decrease immediately.
  last_decrease_ = clock_() - options_.decrease_cooldown;
}

double AdaptiveLimiter::CapFor(Priority p) const {
  double fraction = 1.0;
  switch (p) {
    case Priority::kInteractive:
      fraction = 1.0;
      break;
    case Priority::kBatch:
      fraction = options_.batch_fraction;
      break;
    case Priority::kBackground:
      fraction = options_.background_fraction;
      break;
  }
  return std::max(options_.min_limit * fraction, limit_ * fraction);
}

bool AdaptiveLimiter::TryAcquire(Priority p) {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<double>(in_flight_) >= CapFor(p)) return false;
  ++in_flight_;
  return true;
}

void AdaptiveLimiter::Release() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
}

void AdaptiveLimiter::OnQueueLatency(std::chrono::nanoseconds queued) {
  if (!options_.enabled) return;
  const double sample = static_cast<double>(
      std::max<int64_t>(0, queued.count()));
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_sample_) {
    ewma_ns_ = sample;
    have_sample_ = true;
  } else {
    ewma_ns_ += options_.ewma_alpha * (sample - ewma_ns_);
  }
  const double target =
      static_cast<double>(options_.target_queue_latency.count());
  if (ewma_ns_ > target) {
    const auto now = clock_();
    if (now - last_decrease_ >= options_.decrease_cooldown) {
      limit_ = std::max(options_.min_limit, limit_ * options_.decrease_factor);
      last_decrease_ = now;
      ++decreases_;
    }
  } else {
    const double step = options_.increase / std::max(1.0, limit_);
    limit_ = std::min(options_.max_limit, limit_ + step);
    ++increases_;
  }
}

double AdaptiveLimiter::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

uint64_t AdaptiveLimiter::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::chrono::nanoseconds AdaptiveLimiter::smoothed_latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::nanoseconds(static_cast<int64_t>(ewma_ns_));
}

uint64_t AdaptiveLimiter::increases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return increases_;
}

uint64_t AdaptiveLimiter::decreases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decreases_;
}

OverloadController::OverloadController(OverloadOptions options, ClockFn clock)
    : options_(options),
      clock_(clock ? std::move(clock) : DefaultNow),
      limiter_(options.limiter, clock_) {
  options_.hopeless_factor = std::max(0.0, options_.hopeless_factor);
  options_.service_ewma_alpha =
      std::clamp(options_.service_ewma_alpha, 0.01, 1.0);
  if (options_.brownout_window <= std::chrono::nanoseconds(0)) {
    options_.brownout_window = std::chrono::milliseconds(100);
  }
  window_start_ = clock_();
}

bool OverloadController::Admit(Priority p) {
  if (limiter_.TryAcquire(p)) return true;
  RecordShed();
  return false;
}

void OverloadController::RecordServiceTime(std::chrono::nanoseconds dt) {
  const double sample = static_cast<double>(std::max<int64_t>(0, dt.count()));
  std::lock_guard<std::mutex> lock(service_mu_);
  if (service_samples_ == 0) {
    service_ewma_ns_ = sample;
  } else {
    service_ewma_ns_ += options_.service_ewma_alpha * (sample - service_ewma_ns_);
  }
  ++service_samples_;
}

bool OverloadController::Hopeless(const Deadline& d) const {
  if (!options_.enable_queue_discipline || d.infinite()) return false;
  double estimate_ns = 0;
  {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (service_samples_ < options_.service_warmup_samples) return false;
    estimate_ns = service_ewma_ns_;
  }
  const double remaining_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d.remaining())
          .count());
  return remaining_ns < estimate_ns * options_.hopeless_factor;
}

void OverloadController::RollWindowLocked(
    std::chrono::steady_clock::time_point now) const {
  if (now - window_start_ < options_.brownout_window) return;
  // The window that just closed decides whether the overload is still
  // "sustained": a quiet window deactivates brownout.
  brownout_ = sheds_in_window_ >= options_.brownout_shed_threshold;
  window_start_ = now;
  sheds_in_window_ = 0;
}

void OverloadController::RecordShed() {
  std::lock_guard<std::mutex> lock(brownout_mu_);
  RollWindowLocked(clock_());
  ++sheds_in_window_;
  if (sheds_in_window_ >= options_.brownout_shed_threshold) brownout_ = true;
}

bool OverloadController::brownout_active() const {
  if (!options_.enable_brownout) return false;
  std::lock_guard<std::mutex> lock(brownout_mu_);
  RollWindowLocked(clock_());
  return brownout_;
}

bool OverloadController::overloaded() const {
  if (brownout_active()) return true;
  if (!limiter_.enabled()) return false;
  return static_cast<double>(limiter_.in_flight()) >= limiter_.limit();
}

std::chrono::nanoseconds OverloadController::service_estimate() const {
  std::lock_guard<std::mutex> lock(service_mu_);
  return std::chrono::nanoseconds(static_cast<int64_t>(service_ewma_ns_));
}

uint64_t OverloadController::service_samples() const {
  std::lock_guard<std::mutex> lock(service_mu_);
  return service_samples_;
}

}  // namespace viewrewrite
