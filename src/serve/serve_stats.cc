#include "serve/serve_stats.h"

namespace viewrewrite {

std::ostream& operator<<(std::ostream& os, const ServeStats& s) {
  os << "serve: submitted=" << s.submitted << " completed=" << s.completed
     << " failed=" << s.failed << " rejected=" << s.rejected;
  if (s.rejected > 0) {
    os << " (queue_full=" << s.rejected_queue_full
       << " shutdown=" << s.rejected_shutdown
       << " oversized=" << s.rejected_oversized << ")";
  }
  os << " unmatched=" << s.unmatched
     << " deadline_exceeded=" << s.deadline_exceeded;
  os << " | resilience: retries=" << s.retries
     << " retry_successes=" << s.retry_successes
     << " breaker_trips=" << s.breaker_trips
     << " breaker_rejected=" << s.breaker_rejected
     << " stale_served=" << s.stale_served << " reloads=" << s.reloads
     << " reload_failures=" << s.reload_failures << " epoch=" << s.epoch;
  const uint64_t lookups = s.cache_hits + s.cache_misses;
  os << " | cache: hits=" << s.cache_hits << " misses=" << s.cache_misses;
  if (lookups > 0) {
    os << " (" << (100.0 * static_cast<double>(s.cache_hits) /
                   static_cast<double>(lookups))
       << "% hit rate)";
  }
  os << " entries=" << s.cache_entries;
  os << " | answer_seconds=" << s.answer_seconds;
  return os;
}

}  // namespace viewrewrite
