#include "serve/serve_stats.h"

namespace viewrewrite {

std::ostream& operator<<(std::ostream& os, const ServeStats& s) {
  os << "serve: submitted=" << s.submitted << " completed=" << s.completed
     << " failed=" << s.failed << " rejected=" << s.rejected
     << " unmatched=" << s.unmatched;
  const uint64_t lookups = s.cache_hits + s.cache_misses;
  os << " | cache: hits=" << s.cache_hits << " misses=" << s.cache_misses;
  if (lookups > 0) {
    os << " (" << (100.0 * static_cast<double>(s.cache_hits) /
                   static_cast<double>(lookups))
       << "% hit rate)";
  }
  os << " entries=" << s.cache_entries;
  os << " | answer_seconds=" << s.answer_seconds;
  return os;
}

}  // namespace viewrewrite
