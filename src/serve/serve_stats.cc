#include "serve/serve_stats.h"

#include <algorithm>

namespace viewrewrite {

std::ostream& operator<<(std::ostream& os, const ServeStats& s) {
  os << "serve: submitted=" << s.submitted << " completed=" << s.completed
     << " failed=" << s.failed << " rejected=" << s.rejected;
  if (s.rejected > 0) {
    os << " (queue_full=" << s.rejected_queue_full
       << " shutdown=" << s.rejected_shutdown
       << " oversized=" << s.rejected_oversized
       << " expired=" << s.rejected_expired << ")";
  }
  os << " unmatched=" << s.unmatched
     << " deadline_exceeded=" << s.deadline_exceeded
     << " expired_in_queue=" << s.expired_in_queue;
  os << " | overload: shed_admission=" << s.shed_admission
     << " shed_hopeless=" << s.shed_hopeless
     << " shed_displaced=" << s.shed_displaced
     << " brownout_served=" << s.brownout_served
     << " brownout_active=" << (s.brownout_active ? 1 : 0)
     << " limiter_limit=" << s.limiter_limit
     << " limiter_in_flight=" << s.limiter_in_flight
     << " service_estimate_seconds=" << s.service_estimate_seconds
     << " retry_budget_exhausted=" << s.retry_budget_exhausted;
  os << " | coalescing: flights=" << s.flights
     << " coalesced_waiters=" << s.coalesced_waiters
     << " merged_flights=" << s.merged_flights
     << " max_flight_group=" << s.max_flight_group
     << " cache_short_circuits=" << s.cache_short_circuits
     << " batch_queries=" << s.batch_queries
     << " batch_deduped=" << s.batch_deduped;
  os << " | resilience: retries=" << s.retries
     << " retry_successes=" << s.retry_successes
     << " breaker_trips=" << s.breaker_trips
     << " breaker_rejected=" << s.breaker_rejected
     << " stale_served=" << s.stale_served
     << " outdated_served=" << s.outdated_served << " reloads=" << s.reloads
     << " reload_failures=" << s.reload_failures << " epoch=" << s.epoch
     << " generation=" << s.generation;
  const uint64_t lookups = s.cache_hits + s.cache_misses;
  os << " | cache: hits=" << s.cache_hits << " misses=" << s.cache_misses;
  if (lookups > 0) {
    os << " (" << (100.0 * static_cast<double>(s.cache_hits) /
                   static_cast<double>(lookups))
       << "% hit rate)";
  }
  os << " entries=" << s.cache_entries << " bytes=" << s.cache_bytes
     << " evictions=" << s.cache_evictions << " stripes=" << s.cache_stripes;
  os << " | grouped: queries=" << s.grouped_queries
     << " suppressed_groups=" << s.suppressed_groups;
  os << " | answer_seconds=" << s.answer_seconds;
  return os;
}

namespace {

/// Process-wide thread slot: each thread that ever touches a
/// ShardedServeCounters gets a stable small integer, assigned on first
/// use. Taken modulo an instance's cell count it spreads concurrent
/// writers across cells while keeping any one thread pinned to one cell.
size_t ThreadSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace

ShardedServeCounters::ShardedServeCounters(size_t cells)
    : num_cells_(std::max<size_t>(1, cells)),
      cells_(new Cell[num_cells_]) {
  for (size_t i = 0; i < num_cells_; ++i) {
    for (auto& c : cells_[i].count) c.store(0, std::memory_order_relaxed);
    cells_[i].max_flight_group.store(0, std::memory_order_relaxed);
  }
}

ShardedServeCounters::Cell& ShardedServeCounters::CellForThisThread() {
  return cells_[ThreadSlot() % num_cells_];
}

void ShardedServeCounters::Add(ServeCounter c, uint64_t n) {
  CellForThisThread().count[static_cast<size_t>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void ShardedServeCounters::NoteFlightGroup(uint64_t size) {
  std::atomic<uint64_t>& cell_max = CellForThisThread().max_flight_group;
  uint64_t seen = cell_max.load(std::memory_order_relaxed);
  while (size > seen &&
         !cell_max.compare_exchange_weak(seen, size,
                                         std::memory_order_relaxed)) {
  }
}

uint64_t ShardedServeCounters::Total(ServeCounter c) const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_cells_; ++i) {
    total += cells_[i].count[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
  }
  return total;
}

uint64_t ShardedServeCounters::MaxFlightGroup() const {
  uint64_t max = 0;
  for (size_t i = 0; i < num_cells_; ++i) {
    max = std::max(max,
                   cells_[i].max_flight_group.load(std::memory_order_relaxed));
  }
  return max;
}

std::vector<uint64_t> ShardedServeCounters::PerCell(ServeCounter c) const {
  std::vector<uint64_t> out(num_cells_);
  for (size_t i = 0; i < num_cells_; ++i) {
    out[i] = cells_[i].count[static_cast<size_t>(c)].load(
        std::memory_order_relaxed);
  }
  return out;
}

}  // namespace viewrewrite
