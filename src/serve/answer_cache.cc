#include "serve/answer_cache.h"

#include <algorithm>

#include "rewrite/canonical.h"

namespace viewrewrite {

AnswerCache::AnswerCache(size_t capacity, size_t shards, size_t max_bytes)
    : per_shard_capacity_(
          std::max<size_t>(1, capacity / std::max<size_t>(1, shards))),
      per_shard_bytes_(max_bytes / std::max<size_t>(1, shards)),
      shards_(std::max<size_t>(1, shards)) {}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return shards_[Fnv1a64(key) % shards_.size()];
}

size_t AnswerCache::EntryBytes(const std::string& key, const Entry& entry) {
  size_t bytes = key.size() + sizeof(Entry);
  if (entry.rows != nullptr) bytes += entry.rows->ByteSize();
  return bytes;
}

void AnswerCache::EvictWhileOver(Shard& shard) {
  while (!shard.lru.empty() &&
         (shard.lru.size() > per_shard_capacity_ ||
          (per_shard_bytes_ > 0 &&
           shard.bytes.load(std::memory_order_relaxed) > per_shard_bytes_))) {
    // The byte budget may evict below one entry: a single grouped row set
    // larger than the whole budget must not pin itself resident.
    auto& victim = shard.lru.back();
    shard.bytes.fetch_sub(EntryBytes(victim.first, victim.second),
                          std::memory_order_relaxed);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<AnswerCache::Entry> AnswerCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void AnswerCache::Put(const std::string& key, double value, uint64_t epoch,
                      bool outdated,
                      std::shared_ptr<const aggregate::GroupedData> rows) {
  Entry entry{value, epoch, outdated, std::move(rows)};
  const size_t bytes = EntryBytes(key, entry);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes.fetch_sub(EntryBytes(key, it->second->second),
                          std::memory_order_relaxed);
    shard.bytes.fetch_add(bytes, std::memory_order_relaxed);
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    EvictWhileOver(shard);
    return;
  }
  shard.bytes.fetch_add(bytes, std::memory_order_relaxed);
  shard.lru.emplace_front(key, std::move(entry));
  shard.index[key] = shard.lru.begin();
  EvictWhileOver(shard);
}

uint64_t AnswerCache::EvictOlderThan(uint64_t min_epoch) {
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->second.epoch < min_epoch) {
        shard.bytes.fetch_sub(EntryBytes(it->first, it->second),
                              std::memory_order_relaxed);
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

uint64_t AnswerCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.hits.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t AnswerCache::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.misses.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t AnswerCache::evictions() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.evictions.load(std::memory_order_relaxed);
  }
  return total;
}

size_t AnswerCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

size_t AnswerCache::byte_size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<CacheStripeStats> AnswerCache::StripeStatsSnapshot() const {
  std::vector<CacheStripeStats> out;
  out.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    CacheStripeStats s;
    s.hits = shard.hits.load(std::memory_order_relaxed);
    s.misses = shard.misses.load(std::memory_order_relaxed);
    s.evictions = shard.evictions.load(std::memory_order_relaxed);
    s.bytes = shard.bytes.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries = shard.lru.size();
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace viewrewrite
