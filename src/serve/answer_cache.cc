#include "serve/answer_cache.h"

#include <algorithm>

#include "rewrite/canonical.h"

namespace viewrewrite {

AnswerCache::AnswerCache(size_t capacity, size_t shards)
    : per_shard_capacity_(
          std::max<size_t>(1, capacity / std::max<size_t>(1, shards))),
      shards_(std::max<size_t>(1, shards)) {}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  return shards_[Fnv1a64(key) % shards_.size()];
}

std::optional<AnswerCache::Entry> AnswerCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void AnswerCache::Put(const std::string& key, double value, uint64_t epoch) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = Entry{value, epoch};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  shard.lru.emplace_front(key, Entry{value, epoch});
  shard.index[key] = shard.lru.begin();
}

size_t AnswerCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace viewrewrite
