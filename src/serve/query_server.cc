#include "serve/query_server.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "aggregate/suppression.h"
#include "common/fault_injection.h"
#include "rewrite/canonical.h"
#include "sql/parser.h"

namespace viewrewrite {

namespace {

/// Rewrite options with the server-level governance limits stamped in, so
/// one ServeOptions::limits knob governs admission, parse and rewrite.
RewriteOptions WithLimits(RewriteOptions rewrite, const ResourceLimits& l) {
  rewrite.limits = l;
  return rewrite;
}

std::string RawCacheKey(const std::string& sql, const ParamMap& params) {
  std::string key = "r|";
  key += sql;
  for (const auto& [name, value] : params) {
    key += "|$";
    key += name;
    key += '=';
    key += value.ToString();
  }
  return key;
}

/// Cells for the sharded counters: enough that the configured workers
/// plus a few caller threads (Answer, Reload, stats) land on distinct
/// cells, capped so an over-threaded config does not waste memory.
size_t StatsCells(const ServeOptions& options) {
  if (options.stats_cells > 0) return options.stats_cells;
  const size_t hw = std::thread::hardware_concurrency();
  const size_t want = std::max(options.num_threads + 2, hw);
  return std::min<size_t>(std::max<size_t>(1, want), 64);
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

/// Staleness policy: an answer is flagged outdated when any view it binds
/// has missed rebuilds for more than `ttl` generations (see
/// ServeOptions::outdated_ttl_generations).
bool TouchesOutdatedView(const SynopsisStore& store,
                         const BoundRewrittenQuery& bound, uint64_t ttl) {
  for (const auto& link : bound.chain) {
    if (store.OutdatedGenerations(link.query.view_signature) > ttl) {
      return true;
    }
  }
  for (const auto& term : bound.terms) {
    if (store.OutdatedGenerations(term.query.view_signature) > ttl) {
      return true;
    }
  }
  return false;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const SynopsisStore> store,
                         const Schema& schema, ServeOptions options)
    : store_(std::move(store)),
      schema_(schema),
      options_(options),
      rewriter_(schema_, WithLimits(options.rewrite, options.limits)),
      answer_breaker_(options.answer_breaker),
      store_breaker_(options.store_breaker),
      overload_(options.overload),
      retry_budget_(options.retry_budget),
      counters_(StatsCells(options)) {
  options_.rewrite.limits = options_.limits;
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.enable_cache) {
    cache_ = std::make_unique<AnswerCache>(options_.cache_capacity,
                                           options_.cache_shards,
                                           options_.cache_max_bytes);
  }
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() {
  Shutdown();
  // Defensive sweep: by the time the workers are joined every flight has
  // resolved its waiters (leaders run to completion during the drain), so
  // this finds nothing in practice — but a promise must never be
  // destroyed unresolved, so any straggler gets a typed Unavailable
  // rather than a broken_promise exception at the caller.
  std::vector<Waiter> orphans;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (auto& [key, flight] : flights_) {
      for (Waiter& w : flight->waiters) orphans.push_back(std::move(w));
      flight->waiters.clear();
    }
    flights_.clear();
  }
  for (Waiter& w : orphans) {
    Result<ServedAnswer> r{Status::Unavailable(
        "query server shut down while the request was coalesced in flight")};
    RecordOutcome(r);
    w.promise.set_value(std::move(r));
  }
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Serialize the join phase: concurrent Shutdown calls (user thread
  // racing the destructor, two explicit callers) each wait here until the
  // workers are down, instead of racing joinable()/join() on the same
  // std::thread objects.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

QueryServer::StoreSnapshot QueryServer::SnapshotStore() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return {store_, epoch_.load(std::memory_order_acquire)};
}

std::shared_ptr<const SynopsisStore> QueryServer::store() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_;
}

Deadline QueryServer::MakeDeadline(std::chrono::nanoseconds timeout) const {
  if (timeout != std::chrono::nanoseconds(0)) {
    // A negative timeout is already expired — deterministic timeout-path
    // testing without sleeping.
    return Deadline::After(timeout);
  }
  if (options_.default_timeout > std::chrono::nanoseconds(0)) {
    return Deadline::After(options_.default_timeout);
  }
  return Deadline::Infinite();
}

int64_t QueryServer::DeadlineNanos(const Deadline& d) {
  if (d.infinite()) return kInfiniteDeadlineNs;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             d.when().time_since_epoch())
      .count();
}

void QueryServer::RelaxFlightDeadline(Flight& flight, const Deadline& d) {
  const int64_t ns = DeadlineNanos(d);
  int64_t seen = flight.deadline_ns.load(std::memory_order_relaxed);
  while (ns > seen && !flight.deadline_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

bool QueryServer::FlightDeadlineExpired(const Flight& flight) {
  const int64_t ns = flight.deadline_ns.load(std::memory_order_relaxed);
  if (ns == kInfiniteDeadlineNs) return false;
  return NowNanos() >= ns;
}

std::chrono::nanoseconds QueryServer::FlightDeadlineRemaining(
    const Flight& flight) {
  const int64_t ns = flight.deadline_ns.load(std::memory_order_relaxed);
  if (ns == kInfiniteDeadlineNs) return std::chrono::nanoseconds::max();
  return std::chrono::nanoseconds(std::max<int64_t>(0, ns - NowNanos()));
}

std::future<Result<ServedAnswer>> QueryServer::Submit(std::string sql,
                                                      ParamMap params) {
  return Submit(std::move(sql), std::move(params), std::chrono::nanoseconds(0));
}

bool QueryServer::AdmitTask(Priority priority) {
  // Injected sheds (serve.overload faults) and the adaptive limiter share
  // one admission gate. A fault-forced shed feeds the brownout window but
  // takes no limiter slot; a limiter shed is recorded inside Admit.
  if (FaultInjection::Armed() &&
      !FaultInjection::Instance().Check(faults::kServeOverload).ok()) {
    overload_.RecordShed();
    return false;
  }
  if (!options_.overload.limiter.enabled) return true;
  return overload_.Admit(priority);
}

std::optional<ServedAnswer> QueryServer::TryBrownout(const std::string& sql,
                                                     const ParamMap& params) {
  if (!options_.overload.enable_brownout || cache_ == nullptr) {
    return std::nullopt;
  }
  if (!overload_.brownout_active()) return std::nullopt;
  std::optional<AnswerCache::Entry> hit = cache_->Get(RawCacheKey(sql, params));
  if (!hit.has_value()) return std::nullopt;
  // Any epoch qualifies: brownout is the degradation path, so the answer
  // is flagged stale even when the entry happens to be current — the
  // caller learns it was served from cache under pressure, not computed.
  const StoreSnapshot snap = SnapshotStore();
  return ServedAnswer{hit->value,  /*stale=*/true,
                      0,           /*coalesced=*/false,
                      /*outdated=*/false, snap.epoch,
                      snap.store->generation(), hit->rows};
}

void QueryServer::ResolveTask(Task& task, const Result<ServedAnswer>& r) {
  for (auto& follower : task.followers) {
    RecordOutcome(r);
    follower.set_value(r);
  }
  RecordOutcome(r);
  task.promise.set_value(r);
}

std::future<Result<ServedAnswer>> QueryServer::Submit(
    std::string sql, ParamMap params, std::chrono::nanoseconds timeout,
    Priority priority) {
  Task task;
  task.sql = std::move(sql);
  task.params = std::move(params);
  task.deadline = MakeDeadline(timeout);
  task.priority = priority;
  std::future<Result<ServedAnswer>> future = task.promise.get_future();
  // Admission control: oversized SQL is refused before it occupies a
  // queue slot or a worker — the cheapest point to stop a hostile
  // payload, and the check the tokenizer would make anyway.
  if (task.sql.size() > options_.limits.max_sql_bytes) {
    counters_.Add(ServeCounter::kRejectedOversized);
    task.promise.set_value(Status::ResourceExhausted(
        "query of " + std::to_string(task.sql.size()) +
        " bytes exceeds the limit (" +
        std::to_string(options_.limits.max_sql_bytes) + ")"));
    return future;
  }
  // An already-expired deadline resolves synchronously: queueing it would
  // burn a slot (and a worker's dequeue) on an answer nobody is waiting
  // for. Counted like a worker-side expiry (failed + deadline_exceeded)
  // but never submitted.
  if (task.deadline.expired()) {
    counters_.Add(ServeCounter::kRejectedExpired);
    Result<ServedAnswer> r{Status::DeadlineExceeded(
        "request deadline already expired at submit")};
    RecordOutcome(r);
    task.promise.set_value(std::move(r));
    return future;
  }
  // Overload admission: shed before the request occupies a queue slot,
  // answering from the cache instead when brownout is active.
  if (!AdmitTask(task.priority)) {
    if (std::optional<ServedAnswer> browned =
            TryBrownout(task.sql, task.params)) {
      counters_.Add(ServeCounter::kBrownoutServed);
      Result<ServedAnswer> r{std::move(*browned)};
      RecordOutcome(r);
      task.promise.set_value(std::move(r));
      return future;
    }
    counters_.Add(ServeCounter::kShedAdmission);
    task.promise.set_value(Status::ResourceExhausted(
        "overloaded: admission limiter shed the request"));
    return future;
  }
  const bool limited = options_.overload.limiter.enabled;
  std::optional<Task> displaced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      counters_.Add(ServeCounter::kRejectedShutdown);
      if (limited) overload_.Release();
      task.promise.set_value(
          Status::Unavailable("query server is shut down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Displacement: prefer evicting the youngest strictly-lower-class
      // queued request over refusing a higher-class arrival.
      displaced = queue_.DisplaceLowerThan(task.priority);
      if (!displaced.has_value()) {
        counters_.Add(ServeCounter::kRejectedQueueFull);
        if (limited) overload_.Release();
        task.promise.set_value(Status::Unavailable(
            "request queue full (" + std::to_string(options_.queue_capacity) +
            " pending)"));
        return future;
      }
    }
    counters_.Add(ServeCounter::kSubmitted);
    task.enqueue_time = std::chrono::steady_clock::now();
    queue_.Push(task.priority, std::move(task));
  }
  queue_cv_.notify_one();
  if (displaced.has_value()) {
    // The displaced request was accepted (counted submitted), so it
    // resolves through the shed_displaced conservation channel and its
    // limiter slot frees up for the arrival that evicted it.
    overload_.RecordShed();
    counters_.Add(ServeCounter::kShedDisplaced);
    if (limited) overload_.Release();
    ResolveTask(*displaced,
                Result<ServedAnswer>{Status::ResourceExhausted(
                    "overloaded: displaced from the queue by a "
                    "higher-priority request")});
  }
  return future;
}

std::vector<std::future<Result<ServedAnswer>>> QueryServer::SubmitBatch(
    std::vector<std::string> sqls, ParamMap params,
    std::chrono::nanoseconds timeout, Priority priority) {
  const Deadline deadline = MakeDeadline(timeout);
  std::vector<std::future<Result<ServedAnswer>>> futures;
  futures.reserve(sqls.size());

  // The batch shares one deadline; if it is already expired every element
  // resolves synchronously — exactly like the single-Submit fast reject.
  if (deadline.expired()) {
    for (size_t i = 0; i < sqls.size(); ++i) {
      std::promise<Result<ServedAnswer>> promise;
      futures.push_back(promise.get_future());
      counters_.Add(ServeCounter::kRejectedExpired);
      Result<ServedAnswer> r{Status::DeadlineExceeded(
          "request deadline already expired at submit")};
      RecordOutcome(r);
      promise.set_value(std::move(r));
    }
    return futures;
  }

  // Dedup within the batch: the first occurrence of a text becomes a
  // task, later occurrences ride it as followers — they resolve with the
  // task's single computation.
  std::vector<Task> tasks;
  std::unordered_map<std::string, size_t> first;  // sql -> index in tasks
  for (std::string& sql : sqls) {
    std::promise<Result<ServedAnswer>> promise;
    futures.push_back(promise.get_future());
    if (sql.size() > options_.limits.max_sql_bytes) {
      counters_.Add(ServeCounter::kRejectedOversized);
      promise.set_value(Status::ResourceExhausted(
          "query of " + std::to_string(sql.size()) +
          " bytes exceeds the limit (" +
          std::to_string(options_.limits.max_sql_bytes) + ")"));
      continue;
    }
    auto it = first.find(sql);
    if (it != first.end()) {
      tasks[it->second].followers.push_back(std::move(promise));
      continue;
    }
    first.emplace(sql, tasks.size());
    Task task;
    task.sql = std::move(sql);
    task.params = params;
    task.deadline = deadline;
    task.priority = priority;
    task.promise = std::move(promise);
    tasks.push_back(std::move(task));
  }

  // Overload admission per distinct task, outside the queue lock (the
  // brownout probe touches the cache). A shed task sheds its followers
  // with it — they were deduplicated onto its computation.
  const bool limited = options_.overload.limiter.enabled;
  std::vector<Task> admitted;
  admitted.reserve(tasks.size());
  for (Task& task : tasks) {
    const uint64_t group = 1 + task.followers.size();
    if (AdmitTask(task.priority)) {
      admitted.push_back(std::move(task));
      continue;
    }
    if (std::optional<ServedAnswer> browned =
            TryBrownout(task.sql, task.params)) {
      counters_.Add(ServeCounter::kBrownoutServed, group);
      ResolveTask(task, Result<ServedAnswer>{std::move(*browned)});
      continue;
    }
    counters_.Add(ServeCounter::kShedAdmission, group);
    Result<ServedAnswer> shed{Status::ResourceExhausted(
        "overloaded: admission limiter shed the request")};
    for (auto& follower : task.followers) follower.set_value(shed);
    task.promise.set_value(std::move(shed));
  }

  // Enqueue every admitted task under one queue lock — the batch pays one
  // lock round-trip, and its tasks land contiguously. Admission control
  // stays per task; a rejected task rejects its followers with it.
  std::vector<std::pair<Task, Status>> rejected;
  std::vector<Task> displaced;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Task& task : admitted) {
      const uint64_t group = 1 + task.followers.size();
      if (stopping_) {
        counters_.Add(ServeCounter::kRejectedShutdown, group);
        if (limited) overload_.Release();
        rejected.emplace_back(std::move(task),
                              Status::Unavailable("query server is shut down"));
        continue;
      }
      if (queue_.size() >= options_.queue_capacity) {
        std::optional<Task> evicted = queue_.DisplaceLowerThan(task.priority);
        if (!evicted.has_value()) {
          counters_.Add(ServeCounter::kRejectedQueueFull, group);
          if (limited) overload_.Release();
          rejected.emplace_back(
              std::move(task),
              Status::Unavailable("request queue full (" +
                                  std::to_string(options_.queue_capacity) +
                                  " pending)"));
          continue;
        }
        displaced.push_back(std::move(*evicted));
      }
      counters_.Add(ServeCounter::kSubmitted, group);
      counters_.Add(ServeCounter::kBatchQueries, group);
      if (!task.followers.empty()) {
        // Followers are coalesced at admission: they will never start a
        // computation of their own, which is exactly what
        // ServeStats::coalesced_waiters counts.
        counters_.Add(ServeCounter::kBatchDeduped, task.followers.size());
        counters_.Add(ServeCounter::kCoalescedWaiters, task.followers.size());
      }
      task.enqueue_time = now;
      queue_.Push(task.priority, std::move(task));
    }
  }
  queue_cv_.notify_all();
  for (Task& task : displaced) {
    overload_.RecordShed();
    counters_.Add(ServeCounter::kShedDisplaced);
    if (limited) overload_.Release();
    ResolveTask(task, Result<ServedAnswer>{Status::ResourceExhausted(
                          "overloaded: displaced from the queue by a "
                          "higher-priority request")});
  }
  for (auto& [task, status] : rejected) {
    for (auto& follower : task.followers) follower.set_value(status);
    task.promise.set_value(status);
  }
  return futures;
}

void QueryServer::WorkerLoop() {
  const bool limited = options_.overload.limiter.enabled;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: every accepted Submit holds a
      // promise that must resolve.
      if (queue_.empty()) return;
      task = queue_.Pop();
    }
    if (limited) {
      // Queue latency (admission to dequeue) is the AIMD control signal.
      overload_.OnDequeue(std::chrono::steady_clock::now() -
                          task.enqueue_time);
    }
    if (task.deadline.expired()) {
      // Expired while queued: resolve without touching the answer path,
      // and the worker simply moves to the next request. Followers share
      // the batch deadline, so they expire with the task (they were
      // already counted coalesced at admission; the task itself resolves
      // through the expired-in-queue channel).
      counters_.Add(ServeCounter::kExpiredInQueue);
      ResolveTask(task, Result<ServedAnswer>{Status::DeadlineExceeded(
                            "request deadline expired while queued")});
    } else if (overload_.Hopeless(task.deadline)) {
      // Deadline-aware queue discipline: the remaining budget cannot
      // cover the estimated service time, so computing the answer would
      // only burn a worker on a request that dies of expiry anyway.
      overload_.RecordShed();
      counters_.Add(ServeCounter::kShedHopeless);
      ResolveTask(task,
                  Result<ServedAnswer>{Status::DeadlineExceeded(
                      "request dropped at dequeue: remaining deadline cannot "
                      "cover the estimated service time")});
    } else {
      Process(std::move(task));
    }
    if (limited) overload_.Release();
  }
}

Result<ServedAnswer> QueryServer::Answer(const std::string& sql,
                                         const ParamMap& params,
                                         std::chrono::nanoseconds timeout) {
  counters_.Add(ServeCounter::kSubmitted);
  Task task;
  task.sql = sql;
  task.params = params;
  task.deadline = MakeDeadline(timeout);
  std::future<Result<ServedAnswer>> future = task.promise.get_future();
  // Runs the full pipeline on the calling thread. If this request joins
  // another thread's flight the get() blocks until that leader resolves
  // it; leaders themselves never block on other flights, so this cannot
  // deadlock.
  Process(std::move(task));
  return future.get();
}

void QueryServer::Process(Task task) {
  // One snapshot per request: a mid-request Reload never tears a query
  // across two bundles, and cache writes are tagged with the epoch the
  // answer was actually computed under.
  const StoreSnapshot snap = SnapshotStore();

  // Raw-key probe before any parsing. A fresh hit resolves the request
  // (and its batch followers) without consulting the flight table at all;
  // an old-epoch entry is remembered as this request's stale fallback.
  std::optional<StalePayload> stale_candidate;
  const std::string raw_key = RawCacheKey(task.sql, task.params);
  if (cache_) {
    if (std::optional<AnswerCache::Entry> hit = cache_->Get(raw_key)) {
      if (hit->epoch == snap.epoch) {
        counters_.Add(ServeCounter::kCacheShortCircuits);
        const uint64_t generation = snap.store->generation();
        for (auto& follower : task.followers) {
          Result<ServedAnswer> r{ServedAnswer{hit->value, false, 0,
                                              /*coalesced=*/true,
                                              hit->outdated, snap.epoch,
                                              generation, hit->rows}};
          RecordOutcome(r);
          follower.set_value(std::move(r));
        }
        Result<ServedAnswer> r{ServedAnswer{hit->value, false, 0,
                                            /*coalesced=*/false, hit->outdated,
                                            snap.epoch, generation, hit->rows}};
        RecordOutcome(r);
        task.promise.set_value(std::move(r));
        return;
      }
      stale_candidate = StalePayload{hit->value, hit->rows};
    }
  }

  // The request and its followers become waiters on a flight: either one
  // already computing this exact text under this epoch, or a new one this
  // request leads.
  std::vector<Waiter> members;
  members.reserve(1 + task.followers.size());
  {
    Waiter w;
    w.promise = std::move(task.promise);
    w.deadline = task.deadline;
    w.stale_candidate = stale_candidate;
    members.push_back(std::move(w));
  }
  for (auto& follower : task.followers) {
    Waiter w;
    w.promise = std::move(follower);
    w.deadline = task.deadline;
    w.stale_candidate = stale_candidate;
    w.coalesced = true;
    members.push_back(std::move(w));
  }

  std::shared_ptr<Flight> flight;
  if (options_.enable_coalescing) {
    // Flight keys are epoch-qualified: a duplicate admitted after a hot
    // reload must not receive the previous epoch's answer unflagged, so
    // it starts a fresh flight against the new bundle instead of joining
    // the old one.
    std::string flight_key = std::to_string(snap.epoch);
    flight_key += '|';
    flight_key += raw_key;
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(flight_key);
    if (it != flights_.end()) {
      Flight& lead = *it->second;
      RelaxFlightDeadline(lead, task.deadline);
      counters_.Add(ServeCounter::kCoalescedWaiters);
      members[0].coalesced = true;
      for (Waiter& w : members) lead.waiters.push_back(std::move(w));
      return;
    }
    flight = std::make_shared<Flight>();
    flight->epoch = snap.epoch;
    flight->deadline_ns.store(DeadlineNanos(task.deadline),
                              std::memory_order_relaxed);
    for (Waiter& w : members) flight->waiters.push_back(std::move(w));
    flight->keys.push_back(flight_key);
    flights_.emplace(std::move(flight_key), flight);
  } else {
    flight = std::make_shared<Flight>();
    flight->epoch = snap.epoch;
    flight->deadline_ns.store(DeadlineNanos(task.deadline),
                              std::memory_order_relaxed);
    for (Waiter& w : members) flight->waiters.push_back(std::move(w));
  }

  counters_.Add(ServeCounter::kFlights);
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<FlightOutcome> out =
      ComputeAnswer(flight, snap, task.sql, task.params, raw_key);
  const auto dt = std::chrono::steady_clock::now() - t0;
  counters_.Add(
      ServeCounter::kAnswerNanos,
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  // Service-time estimate behind the hopeless-drop discipline: wall time
  // per leader computation, retries and backoff included — exactly what a
  // queued request is in for.
  overload_.RecordServiceTime(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt));
  // nullopt: this flight merged into a canonical-equal one after rewrite;
  // its waiters (including this request) now belong to that leader.
  if (!out.has_value()) return;
  // Every outcome of this flight was computed under `snap`; stamp the
  // provenance every waiter's ServedAnswer will carry.
  out->epoch = snap.epoch;
  out->generation = snap.store->generation();
  FinishFlight(flight, *out);
}

std::optional<QueryServer::FlightOutcome> QueryServer::ComputeAnswer(
    const std::shared_ptr<Flight>& flight, const StoreSnapshot& snap,
    const std::string& sql, const ParamMap& params,
    const std::string& raw_key) {
  // The computation runs under the flight's *effective* deadline — the
  // latest among its waiters, extended lock-free as joiners arrive — so a
  // leader with a tight deadline never strands a waiter that had time
  // left. Each waiter's own deadline is re-applied at resolution.
  if (FlightDeadlineExpired(*flight)) {
    return FlightOutcome{
        Status::DeadlineExceeded("request deadline expired before parse")};
  }
  Result<SelectStmtPtr> stmt = ParseSelect(sql, options_.limits);
  if (!stmt.ok()) return FlightOutcome{stmt.status()};
  if (FlightDeadlineExpired(*flight)) {
    return FlightOutcome{
        Status::DeadlineExceeded("request deadline expired after parse")};
  }
  Result<RewrittenQuery> rq = rewriter_.Rewrite(**stmt);
  if (!rq.ok()) return FlightOutcome{rq.status()};
  if (FlightDeadlineExpired(*flight)) {
    return FlightOutcome{
        Status::DeadlineExceeded("request deadline expired after rewrite")};
  }

  const std::string canonical_key = "c|" + CanonicalCacheKey(*rq, params);
  if (options_.enable_coalescing) {
    // Second coalescing stage: textual variants that rewrite to the same
    // canonical form. If a canonical-equal flight is already registered,
    // this flight's waiters move over and the computation stops here;
    // otherwise this flight claims the canonical key as an alias so later
    // variants find it.
    std::string canonical_flight_key = std::to_string(snap.epoch);
    canonical_flight_key += '|';
    canonical_flight_key += canonical_key;
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(canonical_flight_key);
    if (it != flights_.end() && it->second != flight) {
      Flight& target = *it->second;
      for (Waiter& w : flight->waiters) {
        RelaxFlightDeadline(target, w.deadline);
        w.coalesced = true;
        target.waiters.push_back(std::move(w));
      }
      flight->waiters.clear();
      if (flight->shared_stale.has_value() &&
          !target.shared_stale.has_value()) {
        target.shared_stale = flight->shared_stale;
      }
      for (const std::string& k : flight->keys) flights_.erase(k);
      flight->keys.clear();
      counters_.Add(ServeCounter::kMergedFlights);
      return std::nullopt;
    }
    if (it == flights_.end()) {
      flight->keys.push_back(canonical_flight_key);
      flights_.emplace(std::move(canonical_flight_key), flight);
    }
  }

  if (cache_) {
    if (std::optional<AnswerCache::Entry> hit = cache_->Get(canonical_key)) {
      if (hit->epoch == snap.epoch) {
        FlightOutcome out{Status::OK(), hit->value, 0, hit->outdated};
        out.rows = hit->rows;
        return out;
      }
      // An old-epoch canonical entry is a degradation fallback for every
      // waiter of this flight, including ones whose raw probe missed.
      std::lock_guard<std::mutex> lock(flights_mu_);
      flight->shared_stale = StalePayload{hit->value, hit->rows};
    }
  }

  // One answer attempt: fault point, bind against the snapshot, answer
  // from the stored noisy cells. The engine registers with a null bake
  // predicate; binding with the same predicate reproduces the
  // register-time signatures. A grouped query (single GROUP BY term, no
  // chain) answers row-wise: suppression runs here, once per computation,
  // so cached and coalesced consumers all see the identical filtered row
  // set; the scalar `value` of a grouped answer is its row count.
  bool outdated = false;
  std::shared_ptr<const aggregate::GroupedData> rows;
  size_t suppressed = 0;
  auto attempt_answer = [&]() -> Result<double> {
    VR_FAULT_POINT(faults::kServeAnswer);
    VR_ASSIGN_OR_RETURN(BoundRewrittenQuery bound,
                        snap.store->Bind(*rq, nullptr));
    outdated = TouchesOutdatedView(*snap.store, bound,
                                   options_.outdated_ttl_generations);
    rows = nullptr;
    suppressed = 0;
    const bool grouped =
        bound.chain.empty() && bound.terms.size() == 1 &&
        bound.terms[0].query.cell_query != nullptr &&
        !bound.terms[0].query.cell_query->group_by.empty();
    if (grouped) {
      VR_ASSIGN_OR_RETURN(
          aggregate::GroupedData data,
          snap.store->AnswerGrouped(bound.terms[0].query, params));
      suppressed = aggregate::ApplySuppression(
          aggregate::SuppressionPolicy{options_.min_group_count}, &data);
      const double row_count = static_cast<double>(data.rows.size());
      rows = std::make_shared<const aggregate::GroupedData>(std::move(data));
      return row_count;
    }
    return snap.store->Answer(bound, params);
  };

  Backoff backoff(options_.retry, Fnv1a64(sql));
  const uint32_t max_attempts = std::max(1u, options_.retry.max_attempts);
  retry_budget_.RecordRequest();
  Status last;
  uint32_t attempts = 0;
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1 && FlightDeadlineExpired(*flight)) {
      return FlightOutcome{
          Status::DeadlineExceeded("request deadline expired after " +
                                   std::to_string(attempts) +
                                   " answer attempts"),
          0, attempts};
    }
    if (!answer_breaker_.Allow()) {
      return FlightOutcome{Status::Unavailable(
          "answer-path circuit breaker is open; failing fast")};
    }
    ++attempts;
    Result<double> got = attempt_answer();
    if (got.ok()) {
      answer_breaker_.RecordSuccess();
      if (rows != nullptr) {
        counters_.Add(ServeCounter::kGroupedQueries);
        if (suppressed > 0) {
          counters_.Add(ServeCounter::kSuppressedGroups, suppressed);
        }
      }
      if (cache_) {
        // The leader writes each key exactly once per flight, no matter
        // how many waiters resolve with it.
        cache_->Put(canonical_key, *got, snap.epoch, outdated, rows);
        cache_->Put(raw_key, *got, snap.epoch, outdated, rows);
      }
      FlightOutcome out{Status::OK(), *got, attempts, outdated};
      out.rows = std::move(rows);
      return out;
    }
    last = got.status();
    if (!IsRetryableStatus(last.code())) {
      // Semantic failure (unparseable, no matching view, ...): the
      // answer path itself functioned, so the breaker records health,
      // and retrying could not change the outcome.
      answer_breaker_.RecordSuccess();
      return FlightOutcome{last, 0, attempts};
    }
    answer_breaker_.RecordFailure();
    if (attempt < max_attempts) {
      // Per-request retry *budget*: under systemic failure the schedule
      // alone would multiply the offered load by max_attempts; when the
      // bucket runs dry the last error surfaces instead.
      if (!retry_budget_.TryRetry()) {
        return FlightOutcome{last, 0, attempts};
      }
      counters_.Add(ServeCounter::kRetries);
      std::chrono::nanoseconds delay = backoff.Next();
      delay = std::min(delay, FlightDeadlineRemaining(*flight));
      if (delay > std::chrono::nanoseconds(0)) {
        std::this_thread::sleep_for(delay);
      }
    }
  }
  return FlightOutcome{last, 0, attempts};
}

void QueryServer::FinishFlight(const std::shared_ptr<Flight>& flight,
                               const FlightOutcome& out) {
  std::vector<Waiter> waiters;
  std::optional<StalePayload> shared_stale;
  {
    // Deregister before resolving: once the keys are gone, a new
    // duplicate starts a fresh flight (or hits the cache the leader just
    // populated) instead of joining a completed one.
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (const std::string& k : flight->keys) flights_.erase(k);
    flight->keys.clear();
    waiters = std::move(flight->waiters);
    flight->waiters.clear();
    shared_stale = flight->shared_stale;
  }
  counters_.NoteFlightGroup(waiters.size());
  for (Waiter& w : waiters) {
    Result<ServedAnswer> r = ResolveWaiter(w, out, shared_stale);
    RecordOutcome(r);
    w.promise.set_value(std::move(r));
  }
}

Result<ServedAnswer> QueryServer::ResolveWaiter(
    Waiter& w, const FlightOutcome& out,
    const std::optional<StalePayload>& shared_stale) {
  // Per-waiter resolution of the shared outcome. On success the value is
  // delivered regardless of the waiter's deadline — success beats the
  // deadline race, exactly as in the uncoalesced path where no deadline
  // check follows a successful answer. Coalesced waiters report zero
  // attempts: they consumed none themselves.
  if (out.status.ok()) {
    return ServedAnswer{out.value,     /*stale=*/false,
                        w.coalesced ? 0 : out.attempts,
                        w.coalesced,   out.outdated,
                        out.epoch,     out.generation,
                        out.rows};
  }
  // Failure order: deadline expiry is reported as such and never degrades
  // to a stale answer; then transient failures fall back to this waiter's
  // stale candidate (or the flight's shared one); semantic failures
  // surface typed.
  if (w.deadline.expired()) {
    return Status::DeadlineExceeded("request deadline expired");
  }
  if (out.status.code() == StatusCode::kDeadlineExceeded) {
    return out.status;
  }
  if (options_.serve_stale && IsRetryableStatus(out.status.code())) {
    const std::optional<StalePayload>& fallback =
        w.stale_candidate.has_value() ? w.stale_candidate : shared_stale;
    if (fallback.has_value()) {
      // The stale value's own lifecycle stamps are unknown (it came from
      // an older epoch's cache entry); the answer carries the epoch and
      // generation it degraded under, with `stale` as the flag.
      return ServedAnswer{fallback->value, /*stale=*/true,
                          w.coalesced ? 0 : out.attempts,
                          w.coalesced,     /*outdated=*/false,
                          out.epoch,       out.generation,
                          fallback->rows};
    }
  }
  return out.status;
}

void QueryServer::RecordOutcome(const Result<ServedAnswer>& r) {
  if (r.ok()) {
    counters_.Add(ServeCounter::kCompleted);
    if (r->outdated) counters_.Add(ServeCounter::kOutdatedServed);
    if (r->stale) {
      counters_.Add(ServeCounter::kStaleServed);
    } else if (r->attempts > 1) {
      counters_.Add(ServeCounter::kRetrySuccesses);
    }
  } else {
    counters_.Add(ServeCounter::kFailed);
    if (r.status().code() == StatusCode::kNotFound) {
      counters_.Add(ServeCounter::kUnmatched);
    } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
      counters_.Add(ServeCounter::kDeadlineExceeded);
    }
  }
}

Status QueryServer::Reload(const std::string& path) {
  auto load_fresh = [&]() -> Result<std::shared_ptr<const SynopsisStore>> {
    VR_FAULT_POINT(faults::kServeReload);
    Backoff backoff(options_.retry, Fnv1a64(path));
    const uint32_t max_attempts = std::max(1u, options_.retry.max_attempts);
    Status last;
    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      if (!store_breaker_.Allow()) {
        return Status::Unavailable(
            "store-load circuit breaker is open; reload rejected");
      }
      Result<SynopsisStore> loaded =
          SynopsisStore::Load(path, schema_, options_.limits);
      if (loaded.ok()) {
        store_breaker_.RecordSuccess();
        return std::make_shared<const SynopsisStore>(std::move(*loaded));
      }
      last = loaded.status();
      store_breaker_.RecordFailure();
      if (!IsRetryableStatus(last.code())) return last;
      if (attempt < max_attempts) {
        counters_.Add(ServeCounter::kRetries);
        std::this_thread::sleep_for(backoff.Next());
      }
    }
    return last;
  };
  Result<std::shared_ptr<const SynopsisStore>> fresh = load_fresh();
  if (!fresh.ok()) {
    counters_.Add(ServeCounter::kReloadFailures);
    return fresh.status();
  }
  return Reload(std::move(fresh).value());
}

Status QueryServer::Reload(std::shared_ptr<const SynopsisStore> store) {
  if (store == nullptr) {
    counters_.Add(ServeCounter::kReloadFailures);
    return Status::InvalidArgument("cannot reload a null store");
  }
  const uint64_t expected = SchemaFingerprint(schema_);
  if (store->schema_fingerprint() != expected) {
    counters_.Add(ServeCounter::kReloadFailures);
    return Status::InvalidArgument(
        "schema drift: replacement bundle was built against a different "
        "schema (fingerprint " + std::to_string(store->schema_fingerprint()) +
        ", current schema " + std::to_string(expected) + ")");
  }
  {
    // RCU-style swap: in-flight requests keep their shared_ptr snapshot
    // and finish against the old epoch; the old store is destroyed when
    // the last such request drops its reference.
    std::lock_guard<std::mutex> lock(store_mu_);
    store_ = std::move(store);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  counters_.Add(ServeCounter::kReloads);
  return Status::OK();
}

uint64_t QueryServer::EvictCacheBefore(uint64_t min_epoch) {
  if (!cache_) return 0;
  return cache_->EvictOlderThan(min_epoch);
}

ServeStats QueryServer::stats() const {
  ServeStats s;
  s.submitted = counters_.Total(ServeCounter::kSubmitted);
  s.completed = counters_.Total(ServeCounter::kCompleted);
  s.failed = counters_.Total(ServeCounter::kFailed);
  s.rejected_queue_full = counters_.Total(ServeCounter::kRejectedQueueFull);
  s.rejected_shutdown = counters_.Total(ServeCounter::kRejectedShutdown);
  s.rejected_oversized = counters_.Total(ServeCounter::kRejectedOversized);
  s.rejected_expired = counters_.Total(ServeCounter::kRejectedExpired);
  s.rejected = s.rejected_queue_full + s.rejected_shutdown +
               s.rejected_oversized + s.rejected_expired;
  s.shed_admission = counters_.Total(ServeCounter::kShedAdmission);
  s.shed_hopeless = counters_.Total(ServeCounter::kShedHopeless);
  s.shed_displaced = counters_.Total(ServeCounter::kShedDisplaced);
  s.shed_queue = s.shed_hopeless + s.shed_displaced;
  s.brownout_served = counters_.Total(ServeCounter::kBrownoutServed);
  s.retry_budget_exhausted = retry_budget_.exhausted();
  s.limiter_limit = overload_.limiter().limit();
  s.limiter_in_flight = overload_.limiter().in_flight();
  s.brownout_active = overload_.brownout_active();
  s.service_estimate_seconds =
      static_cast<double>(overload_.service_estimate().count()) * 1e-9;
  s.unmatched = counters_.Total(ServeCounter::kUnmatched);
  s.deadline_exceeded = counters_.Total(ServeCounter::kDeadlineExceeded);
  s.expired_in_queue = counters_.Total(ServeCounter::kExpiredInQueue);
  s.retries = counters_.Total(ServeCounter::kRetries);
  s.retry_successes = counters_.Total(ServeCounter::kRetrySuccesses);
  s.breaker_trips = answer_breaker_.trips() + store_breaker_.trips();
  s.breaker_rejected =
      answer_breaker_.rejections() + store_breaker_.rejections();
  s.stale_served = counters_.Total(ServeCounter::kStaleServed);
  s.outdated_served = counters_.Total(ServeCounter::kOutdatedServed);
  s.reloads = counters_.Total(ServeCounter::kReloads);
  s.reload_failures = counters_.Total(ServeCounter::kReloadFailures);
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.generation = store()->generation();
  s.flights = counters_.Total(ServeCounter::kFlights);
  s.coalesced_waiters = counters_.Total(ServeCounter::kCoalescedWaiters);
  s.merged_flights = counters_.Total(ServeCounter::kMergedFlights);
  s.max_flight_group = counters_.MaxFlightGroup();
  s.cache_short_circuits = counters_.Total(ServeCounter::kCacheShortCircuits);
  s.batch_queries = counters_.Total(ServeCounter::kBatchQueries);
  s.batch_deduped = counters_.Total(ServeCounter::kBatchDeduped);
  s.grouped_queries = counters_.Total(ServeCounter::kGroupedQueries);
  s.suppressed_groups = counters_.Total(ServeCounter::kSuppressedGroups);
  if (cache_) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_evictions = cache_->evictions();
    s.cache_entries = cache_->size();
    s.cache_bytes = cache_->byte_size();
    s.cache_stripes = cache_->num_stripes();
  }
  s.answer_seconds =
      static_cast<double>(counters_.Total(ServeCounter::kAnswerNanos)) * 1e-9;
  return s;
}

}  // namespace viewrewrite
