#include "serve/query_server.h"

#include <chrono>

#include "rewrite/canonical.h"
#include "sql/parser.h"

namespace viewrewrite {

namespace {

std::string RawCacheKey(const std::string& sql, const ParamMap& params) {
  std::string key = "r|";
  key += sql;
  for (const auto& [name, value] : params) {
    key += "|$";
    key += name;
    key += '=';
    key += value.ToString();
  }
  return key;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const SynopsisStore> store,
                         const Schema& schema, ServeOptions options)
    : store_(std::move(store)),
      schema_(schema),
      options_(options),
      rewriter_(schema_, options.rewrite) {
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.enable_cache) {
    cache_ = std::make_unique<AnswerCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already shut down; workers may be joined by the earlier caller.
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<Result<double>> QueryServer::Submit(std::string sql,
                                                ParamMap params) {
  Task task;
  task.sql = std::move(sql);
  task.params = std::move(params);
  std::future<Result<double>> future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::Unavailable("query server is shut down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(Status::Unavailable(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending)"));
      return future;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

void QueryServer::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: every accepted Submit holds a
      // promise that must resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.promise.set_value(Handle(task.sql, task.params));
  }
}

Result<double> QueryServer::Answer(const std::string& sql,
                                   const ParamMap& params) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Handle(sql, params);
}

Result<double> QueryServer::Handle(const std::string& sql,
                                   const ParamMap& params) {
  const auto t0 = std::chrono::steady_clock::now();
  auto record = [&](Result<double> out) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    answer_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
        std::memory_order_relaxed);
    if (out.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (out.status().code() == StatusCode::kNotFound) {
        unmatched_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return out;
  };

  std::string raw_key;
  if (cache_) {
    raw_key = RawCacheKey(sql, params);
    if (std::optional<double> hit = cache_->Get(raw_key)) {
      return record(*hit);
    }
  }

  auto answer_uncached = [&]() -> Result<double> {
    VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
    VR_ASSIGN_OR_RETURN(RewrittenQuery rq, rewriter_.Rewrite(*stmt));

    std::string canonical_key;
    if (cache_) {
      canonical_key = "c|" + CanonicalCacheKey(rq, params);
      if (std::optional<double> hit = cache_->Get(canonical_key)) {
        return *hit;
      }
    }

    // The engine registers with a null bake predicate; binding with the
    // same predicate reproduces the register-time signatures.
    VR_ASSIGN_OR_RETURN(BoundRewrittenQuery bound, store_->Bind(rq, nullptr));
    VR_ASSIGN_OR_RETURN(double answer, store_->Answer(bound, params));

    if (cache_) {
      cache_->Put(canonical_key, answer);
      cache_->Put(raw_key, answer);
    }
    return answer;
  };
  return record(answer_uncached());
}

ServeStats QueryServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.unmatched = unmatched_.load(std::memory_order_relaxed);
  if (cache_) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_entries = cache_->size();
  }
  s.answer_seconds =
      static_cast<double>(answer_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

}  // namespace viewrewrite
