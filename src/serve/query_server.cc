#include "serve/query_server.h"

#include <algorithm>
#include <optional>

#include "common/fault_injection.h"
#include "rewrite/canonical.h"
#include "sql/parser.h"

namespace viewrewrite {

namespace {

/// Rewrite options with the server-level governance limits stamped in, so
/// one ServeOptions::limits knob governs admission, parse and rewrite.
RewriteOptions WithLimits(RewriteOptions rewrite, const ResourceLimits& l) {
  rewrite.limits = l;
  return rewrite;
}

std::string RawCacheKey(const std::string& sql, const ParamMap& params) {
  std::string key = "r|";
  key += sql;
  for (const auto& [name, value] : params) {
    key += "|$";
    key += name;
    key += '=';
    key += value.ToString();
  }
  return key;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const SynopsisStore> store,
                         const Schema& schema, ServeOptions options)
    : store_(std::move(store)),
      schema_(schema),
      options_(options),
      rewriter_(schema_, WithLimits(options.rewrite, options.limits)),
      answer_breaker_(options.answer_breaker),
      store_breaker_(options.store_breaker) {
  options_.rewrite.limits = options_.limits;
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.enable_cache) {
    cache_ = std::make_unique<AnswerCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Serialize the join phase: concurrent Shutdown calls (user thread
  // racing the destructor, two explicit callers) each wait here until the
  // workers are down, instead of racing joinable()/join() on the same
  // std::thread objects.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

QueryServer::StoreSnapshot QueryServer::SnapshotStore() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return {store_, epoch_.load(std::memory_order_acquire)};
}

std::shared_ptr<const SynopsisStore> QueryServer::store() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_;
}

Deadline QueryServer::MakeDeadline(std::chrono::nanoseconds timeout) const {
  if (timeout != std::chrono::nanoseconds(0)) {
    // A negative timeout is already expired — deterministic timeout-path
    // testing without sleeping.
    return Deadline::After(timeout);
  }
  if (options_.default_timeout > std::chrono::nanoseconds(0)) {
    return Deadline::After(options_.default_timeout);
  }
  return Deadline::Infinite();
}

std::future<Result<ServedAnswer>> QueryServer::Submit(std::string sql,
                                                      ParamMap params) {
  return Submit(std::move(sql), std::move(params), std::chrono::nanoseconds(0));
}

std::future<Result<ServedAnswer>> QueryServer::Submit(
    std::string sql, ParamMap params, std::chrono::nanoseconds timeout) {
  Task task;
  task.sql = std::move(sql);
  task.params = std::move(params);
  task.deadline = MakeDeadline(timeout);
  std::future<Result<ServedAnswer>> future = task.promise.get_future();
  // Admission control: oversized SQL is refused before it occupies a
  // queue slot or a worker — the cheapest point to stop a hostile
  // payload, and the check the tokenizer would make anyway.
  if (task.sql.size() > options_.limits.max_sql_bytes) {
    rejected_oversized_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Status::ResourceExhausted(
        "query of " + std::to_string(task.sql.size()) +
        " bytes exceeds the limit (" +
        std::to_string(options_.limits.max_sql_bytes) + ")"));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::Unavailable("query server is shut down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(Status::Unavailable(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending)"));
      return future;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

void QueryServer::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: every accepted Submit holds a
      // promise that must resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.deadline.expired()) {
      // Expired while queued: resolve without touching the answer path,
      // and the worker simply moves to the next request.
      failed_.fetch_add(1, std::memory_order_relaxed);
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(
          Status::DeadlineExceeded("request deadline expired while queued"));
      continue;
    }
    task.promise.set_value(Handle(task.sql, task.params, task.deadline));
  }
}

Result<ServedAnswer> QueryServer::Answer(const std::string& sql,
                                         const ParamMap& params,
                                         std::chrono::nanoseconds timeout) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Handle(sql, params, MakeDeadline(timeout));
}

Result<ServedAnswer> QueryServer::Handle(const std::string& sql,
                                         const ParamMap& params,
                                         Deadline deadline) {
  const auto t0 = std::chrono::steady_clock::now();
  auto record = [&](Result<ServedAnswer> out) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    answer_nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
        std::memory_order_relaxed);
    if (out.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (out->stale) {
        stale_served_.fetch_add(1, std::memory_order_relaxed);
      } else if (out->attempts > 1) {
        retry_successes_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (out.status().code() == StatusCode::kNotFound) {
        unmatched_.fetch_add(1, std::memory_order_relaxed);
      } else if (out.status().code() == StatusCode::kDeadlineExceeded) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return out;
  };

  // One snapshot per request: a mid-request Reload never tears a query
  // across two bundles, and cache writes are tagged with the epoch the
  // answer was actually computed under.
  const StoreSnapshot snap = SnapshotStore();

  // A cache entry from an older epoch is never returned as fresh, but it
  // is remembered: if the live answer path fails, serving the previous
  // bundle's answer flagged stale beats serving an error.
  std::optional<double> stale_candidate;
  auto classify_hit =
      [&](const AnswerCache::Entry& e) -> std::optional<ServedAnswer> {
    if (e.epoch == snap.epoch) return ServedAnswer{e.value, false, 0};
    stale_candidate = e.value;
    return std::nullopt;
  };

  std::string raw_key;
  if (cache_) {
    raw_key = RawCacheKey(sql, params);
    if (std::optional<AnswerCache::Entry> hit = cache_->Get(raw_key)) {
      if (std::optional<ServedAnswer> fresh = classify_hit(*hit)) {
        return record(*fresh);
      }
    }
  }

  auto answer_uncached = [&]() -> Result<ServedAnswer> {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("request deadline expired before parse");
    }
    VR_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql, options_.limits));
    if (deadline.expired()) {
      return Status::DeadlineExceeded("request deadline expired after parse");
    }
    VR_ASSIGN_OR_RETURN(RewrittenQuery rq, rewriter_.Rewrite(*stmt));
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "request deadline expired after rewrite");
    }

    std::string canonical_key;
    if (cache_) {
      canonical_key = "c|" + CanonicalCacheKey(rq, params);
      if (std::optional<AnswerCache::Entry> hit = cache_->Get(canonical_key)) {
        if (std::optional<ServedAnswer> fresh = classify_hit(*hit)) {
          return *fresh;
        }
      }
    }

    auto degrade = [&](Status failure) -> Result<ServedAnswer> {
      if (options_.serve_stale && stale_candidate.has_value()) {
        return ServedAnswer{*stale_candidate, /*stale=*/true, 0};
      }
      return failure;
    };

    // One answer attempt: fault point, bind against the snapshot, answer
    // from the stored noisy cells. The engine registers with a null bake
    // predicate; binding with the same predicate reproduces the
    // register-time signatures.
    auto attempt_answer = [&]() -> Result<double> {
      VR_FAULT_POINT(faults::kServeAnswer);
      VR_ASSIGN_OR_RETURN(BoundRewrittenQuery bound,
                          snap.store->Bind(rq, nullptr));
      return snap.store->Answer(bound, params);
    };

    Backoff backoff(options_.retry, Fnv1a64(sql));
    const uint32_t max_attempts = std::max(1u, options_.retry.max_attempts);
    Status last;
    uint32_t attempts = 0;
    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1 && deadline.expired()) {
        return Status::DeadlineExceeded(
            "request deadline expired after " + std::to_string(attempts) +
            " answer attempts");
      }
      if (!answer_breaker_.Allow()) {
        return degrade(Status::Unavailable(
            "answer-path circuit breaker is open; failing fast"));
      }
      ++attempts;
      Result<double> got = attempt_answer();
      if (got.ok()) {
        answer_breaker_.RecordSuccess();
        if (cache_) {
          cache_->Put(canonical_key, *got, snap.epoch);
          cache_->Put(raw_key, *got, snap.epoch);
        }
        return ServedAnswer{*got, /*stale=*/false, attempts};
      }
      last = got.status();
      if (!IsRetryableStatus(last.code())) {
        // Semantic failure (unparseable, no matching view, ...): the
        // answer path itself functioned, so the breaker records health,
        // and retrying could not change the outcome.
        answer_breaker_.RecordSuccess();
        return last;
      }
      answer_breaker_.RecordFailure();
      if (attempt < max_attempts) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        std::chrono::nanoseconds delay = backoff.Next();
        if (!deadline.infinite()) {
          delay = std::min<std::chrono::nanoseconds>(delay,
                                                     deadline.remaining());
        }
        if (delay > std::chrono::nanoseconds(0)) {
          std::this_thread::sleep_for(delay);
        }
      }
    }
    // Transient failure survived every attempt: degrade to a stale answer
    // when one exists, otherwise surface the last typed error.
    if (options_.serve_stale && stale_candidate.has_value()) {
      return ServedAnswer{*stale_candidate, /*stale=*/true, attempts};
    }
    return last;
  };
  return record(answer_uncached());
}

Status QueryServer::Reload(const std::string& path) {
  auto load_fresh = [&]() -> Result<std::shared_ptr<const SynopsisStore>> {
    VR_FAULT_POINT(faults::kServeReload);
    Backoff backoff(options_.retry, Fnv1a64(path));
    const uint32_t max_attempts = std::max(1u, options_.retry.max_attempts);
    Status last;
    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      if (!store_breaker_.Allow()) {
        return Status::Unavailable(
            "store-load circuit breaker is open; reload rejected");
      }
      Result<SynopsisStore> loaded =
          SynopsisStore::Load(path, schema_, options_.limits);
      if (loaded.ok()) {
        store_breaker_.RecordSuccess();
        return std::make_shared<const SynopsisStore>(std::move(*loaded));
      }
      last = loaded.status();
      store_breaker_.RecordFailure();
      if (!IsRetryableStatus(last.code())) return last;
      if (attempt < max_attempts) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(backoff.Next());
      }
    }
    return last;
  };
  Result<std::shared_ptr<const SynopsisStore>> fresh = load_fresh();
  if (!fresh.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return fresh.status();
  }
  return Reload(std::move(fresh).value());
}

Status QueryServer::Reload(std::shared_ptr<const SynopsisStore> store) {
  if (store == nullptr) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("cannot reload a null store");
  }
  const uint64_t expected = SchemaFingerprint(schema_);
  if (store->schema_fingerprint() != expected) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "schema drift: replacement bundle was built against a different "
        "schema (fingerprint " + std::to_string(store->schema_fingerprint()) +
        ", current schema " + std::to_string(expected) + ")");
  }
  {
    // RCU-style swap: in-flight requests keep their shared_ptr snapshot
    // and finish against the old epoch; the old store is destroyed when
    // the last such request drops its reference.
    std::lock_guard<std::mutex> lock(store_mu_);
    store_ = std::move(store);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

ServeStats QueryServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.rejected_oversized = rejected_oversized_.load(std::memory_order_relaxed);
  s.rejected = s.rejected_queue_full + s.rejected_shutdown +
               s.rejected_oversized;
  s.unmatched = unmatched_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.retry_successes = retry_successes_.load(std::memory_order_relaxed);
  s.breaker_trips = answer_breaker_.trips() + store_breaker_.trips();
  s.breaker_rejected =
      answer_breaker_.rejections() + store_breaker_.rejections();
  s.stale_served = stale_served_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  s.epoch = epoch_.load(std::memory_order_acquire);
  if (cache_) {
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_entries = cache_->size();
  }
  s.answer_seconds =
      static_cast<double>(answer_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

}  // namespace viewrewrite
