#ifndef VIEWREWRITE_SERVE_QUERY_SERVER_H_
#define VIEWREWRITE_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/retry.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "serve/answer_cache.h"
#include "serve/serve_stats.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {

struct ServeOptions {
  /// Worker threads answering queries concurrently.
  size_t num_threads = 4;
  /// Bounded request queue: Submit calls beyond this depth are rejected
  /// with Unavailable instead of growing memory without bound.
  size_t queue_capacity = 1024;
  bool enable_cache = true;
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Resource governance for untrusted query input: Submit rejects SQL
  /// larger than `limits.max_sql_bytes` before it ever occupies a queue
  /// slot (counted in ServeStats::rejected_oversized), and the same
  /// limits govern parse and rewrite on the worker (they are copied into
  /// `rewrite.limits` at construction — set them here, not there).
  ResourceLimits limits;
  /// Serve-time rewrite options; must match the options the workload was
  /// prepared with, or structurally identical queries would map to
  /// different view signatures.
  RewriteOptions rewrite;

  // ---- Resilience. ---------------------------------------------------------

  /// Deadline applied to every request that does not carry its own
  /// timeout. Zero means no deadline.
  std::chrono::nanoseconds default_timeout{0};
  /// Retry schedule for transient answer-path failures (injected faults,
  /// Unavailable). Semantic failures (parse, NotFound, ...) never retry.
  /// The same policy paces store-load retries inside Reload.
  RetryPolicy retry;
  /// Circuit breaker over the answer path: trips after consecutive
  /// transient failures, rejects fast while open, half-opens on a probe.
  /// failure_threshold = 0 disables it.
  CircuitBreakerOptions answer_breaker;
  /// Circuit breaker over bundle loading (Reload).
  CircuitBreakerOptions store_breaker;
  /// Graceful degradation: when the answer path fails transiently (or the
  /// answer breaker is open) and the cache still holds this query's
  /// answer from a previous epoch, serve it flagged stale instead of
  /// erroring.
  bool serve_stale = true;
};

/// One served answer. `stale` marks a degraded response: the value comes
/// from a previous epoch's cache because the live answer path was
/// failing; it is exactly the value that bundle produced, just possibly
/// outdated relative to the current one. `attempts` counts answer-path
/// attempts consumed (> 1 means retries happened; 0 means the request
/// never reached the answer path, e.g. a fresh cache hit).
struct ServedAnswer {
  double value = 0;
  bool stale = false;
  uint32_t attempts = 0;
};

/// Concurrent query answering over a loaded SynopsisStore: the operational
/// complement of ViewRewriteEngine. Prepare/Publish runs once, offline,
/// and spends the privacy budget; a QueryServer then serves any number of
/// queries from the published (or reloaded) synopses at zero further
/// privacy cost — answering is deterministic post-processing of the
/// noisy cells.
///
/// Each Submit parses, rewrites (Rules 1-20), binds the rewritten query
/// against the stored views via the shared matcher, and answers from the
/// noisy cells on a worker thread. A query whose structure no stored view
/// covers fails with NotFound — never a crash, and never a budget spend.
///
/// ## Threading model
///
/// A fixed pool of workers consumes a bounded queue; Submit never blocks
/// (a full queue rejects with Unavailable). The store is an immutable
/// snapshot shared by all workers via shared_ptr (see the Synopsis
/// thread-safety contract); the answer cache is internally sharded and
/// locked; stats counters are atomics. Answering draws no randomness, so
/// workers need no per-thread RNG — determinism is what makes the cache
/// sound.
///
/// ## Resilience
///
/// - **Deadlines**: each request carries a Deadline from Submit through
///   parse, rewrite, match and answer; expiry at any stage boundary (or
///   while still queued) resolves the future with DeadlineExceeded. The
///   worker simply moves on — a timed-out query never poisons its thread.
/// - **Retries**: transient answer-path failures retry under
///   `options.retry` with exponential backoff and deterministic seeded
///   jitter, capped by the request deadline.
/// - **Circuit breakers**: one per fault domain (answer path, store
///   load). Consecutive transient failures trip the breaker; while open,
///   requests fail fast with Unavailable (or degrade to a stale answer).
/// - **Stale serving**: a cache entry from a previous epoch is never
///   returned as fresh, but when the live path fails it is served with
///   `stale = true` rather than an error.
/// - **Hot reload**: Reload atomically swaps in a freshly loaded bundle
///   (epoch/RCU-style shared_ptr swap). In-flight queries finish against
///   the epoch they started under; new requests see the new bundle.
///
/// ## Cache
///
/// Two-level lookup. The raw key (verbatim SQL + parameters) short-cuts
/// exact resubmissions before any parsing. On a raw miss the query is
/// parsed and rewritten, and the canonical key (canonical rewritten SQL +
/// sorted parameters, rewrite/canonical.h) catches queries that differ
/// textually but rewrite to the same canonical form. Successful answers
/// populate both keys tagged with the serving epoch; failures are never
/// cached.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<const SynopsisStore> store, const Schema& schema,
              ServeOptions options = {});

  /// Drains and joins (Shutdown).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one query; the future resolves to its answer or a typed
  /// error. Rejected submissions (queue full, server shut down) resolve
  /// immediately with Unavailable — a Submit racing Shutdown always
  /// resolves, it is never abandoned.
  std::future<Result<ServedAnswer>> Submit(std::string sql,
                                           ParamMap params = {});

  /// Like Submit, but with a per-request deadline `timeout` from now
  /// (<= 0 means no deadline beyond the server default).
  std::future<Result<ServedAnswer>> Submit(std::string sql, ParamMap params,
                                           std::chrono::nanoseconds timeout);

  /// Synchronous convenience: answers on the calling thread, bypassing
  /// the queue (still uses the cache, retries, breakers and stats).
  Result<ServedAnswer> Answer(const std::string& sql,
                              const ParamMap& params = {},
                              std::chrono::nanoseconds timeout =
                                  std::chrono::nanoseconds(0));

  /// Hot reload: loads a fresh bundle from `path` (with retries under the
  /// store breaker), verifies it against the schema, and atomically swaps
  /// it in. In-flight queries finish against the old epoch. On any
  /// failure the old bundle keeps serving and the error is returned.
  Status Reload(const std::string& path);

  /// Hot reload from an already-loaded store (e.g. built in-process).
  Status Reload(std::shared_ptr<const SynopsisStore> store);

  /// Stops accepting work, finishes every queued request, joins workers.
  /// Idempotent and safe to race from multiple threads.
  void Shutdown();

  /// Consistent snapshot of the counters.
  ServeStats stats() const;

  /// Current store snapshot (the epoch being served right now).
  std::shared_ptr<const SynopsisStore> store() const;

  /// Monotonic bundle epoch: 0 for the construction-time store, +1 per
  /// successful Reload.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  struct Task {
    std::string sql;
    ParamMap params;
    Deadline deadline;
    std::promise<Result<ServedAnswer>> promise;
  };

  /// The store snapshot a request answers against: pointer + the epoch it
  /// was current at. Taken once per request so a mid-request Reload never
  /// tears a query across two bundles.
  struct StoreSnapshot {
    std::shared_ptr<const SynopsisStore> store;
    uint64_t epoch = 0;
  };
  StoreSnapshot SnapshotStore() const;

  void WorkerLoop();
  Result<ServedAnswer> Handle(const std::string& sql, const ParamMap& params,
                              Deadline deadline);
  Deadline MakeDeadline(std::chrono::nanoseconds timeout) const;

  mutable std::mutex store_mu_;  // guards store_ swap; held only briefly
  std::shared_ptr<const SynopsisStore> store_;
  std::atomic<uint64_t> epoch_{0};

  const Schema& schema_;
  ServeOptions options_;
  Rewriter rewriter_;
  std::unique_ptr<AnswerCache> cache_;  // null when disabled
  CircuitBreaker answer_breaker_;
  CircuitBreaker store_breaker_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes the join phase of concurrent Shutdowns
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> rejected_oversized_{0};
  std::atomic<uint64_t> unmatched_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retry_successes_{0};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> answer_nanos_{0};
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_QUERY_SERVER_H_
