#ifndef VIEWREWRITE_SERVE_QUERY_SERVER_H_
#define VIEWREWRITE_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/retry.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "serve/answer_cache.h"
#include "serve/overload.h"
#include "serve/serve_stats.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {

struct ServeOptions {
  /// Worker threads answering queries concurrently.
  size_t num_threads = 4;
  /// Bounded request queue: Submit calls beyond this depth are rejected
  /// with Unavailable instead of growing memory without bound.
  size_t queue_capacity = 1024;
  bool enable_cache = true;
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Byte budget for the answer cache across all shards (keys + entries +
  /// grouped row sets). Grouped answers cache whole row sets, so the
  /// entry-count budget alone no longer bounds memory. 0 disables the
  /// byte budget.
  size_t cache_max_bytes = 8u << 20;
  /// Single-flight coalescing: concurrent requests for the same query
  /// join the computation already in flight instead of re-running
  /// parse→rewrite→match→answer. All waiters of a flight receive the same
  /// value or the same typed error; deadline and stale-fallback semantics
  /// stay per-waiter. Flights are keyed per store epoch, so a request
  /// admitted after a hot reload never receives a previous epoch's answer
  /// unflagged. Disable to measure or serve without coalescing.
  bool enable_coalescing = true;
  /// Cells for the sharded stats counters; 0 sizes them automatically
  /// from num_threads and the hardware concurrency.
  size_t stats_cells = 0;
  /// Resource governance for untrusted query input: Submit rejects SQL
  /// larger than `limits.max_sql_bytes` before it ever occupies a queue
  /// slot (counted in ServeStats::rejected_oversized), and the same
  /// limits govern parse and rewrite on the worker (they are copied into
  /// `rewrite.limits` at construction — set them here, not there).
  ResourceLimits limits;
  /// Serve-time rewrite options; must match the options the workload was
  /// prepared with, or structurally identical queries would map to
  /// different view signatures.
  RewriteOptions rewrite;

  // ---- Resilience. ---------------------------------------------------------

  /// Deadline applied to every request that does not carry its own
  /// timeout. Zero means no deadline.
  std::chrono::nanoseconds default_timeout{0};
  /// Retry schedule for transient answer-path failures (injected faults,
  /// Unavailable). Semantic failures (parse, NotFound, ...) never retry.
  /// The same policy paces store-load retries inside Reload.
  RetryPolicy retry;
  /// Circuit breaker over the answer path: trips after consecutive
  /// transient failures, rejects fast while open, half-opens on a probe.
  /// failure_threshold = 0 disables it.
  CircuitBreakerOptions answer_breaker;
  /// Circuit breaker over bundle loading (Reload).
  CircuitBreakerOptions store_breaker;
  /// Graceful degradation: when the answer path fails transiently (or the
  /// answer breaker is open) and the cache still holds this query's
  /// answer from a previous epoch, serve it flagged stale instead of
  /// erroring.
  bool serve_stale = true;

  // ---- Overload control (serve/overload.h). --------------------------------

  /// Adaptive admission limiter, deadline-aware queue discipline,
  /// priority classes and brownout mode. The limiter and brownout are
  /// off by default; the queue discipline is on but self-gating (it only
  /// drops requests whose deadline the service-time estimate says cannot
  /// be met, after the estimator warms up).
  OverloadOptions overload;
  /// Server-wide retry budget: bounds how many extra attempts the retry
  /// machinery may add on top of the offered load, so retries cannot
  /// amplify the overload that caused the failures being retried.
  RetryBudgetOptions retry_budget;

  // ---- Synopsis-lifecycle staleness policy. --------------------------------

  /// Per-view generation TTL: an answer that touches a view whose base
  /// relation changed more than this many generations ago without a
  /// successful rebuild is still served, but flagged
  /// `ServedAnswer::outdated` (and counted in
  /// ServeStats::outdated_served). 0, the default, flags any outdatedness
  /// at all — one missed rebuild is enough.
  uint64_t outdated_ttl_generations = 0;

  // ---- Grouped-answer suppression (minimum-frequency rule). ----------------

  /// Groups whose *noisy* count falls below this threshold are suppressed
  /// in grouped answers: the row stays (group keys are public — they come
  /// from the published domain grid, not the data) but its aggregate
  /// columns are nulled and `GroupedRow::suppressed` is set. Suppression
  /// is post-processing of the noisy counts, so it costs no privacy
  /// budget; it guards utility (tiny noisy groups are mostly noise), not
  /// privacy. <= 0 disables suppression.
  double min_group_count = 0;
};

/// One served answer. `stale` marks a degraded response: the value comes
/// from a previous epoch's cache because the live answer path was
/// failing; it is exactly the value that bundle produced, just possibly
/// outdated relative to the current one. `attempts` counts answer-path
/// attempts this request consumed itself (> 1 means retries happened;
/// 0 means the request never ran the answer path — a fresh cache hit or
/// a coalesced waiter). `coalesced` marks a request that was resolved by
/// another request's flight (single-flight join or batch dedup) rather
/// than its own computation.
struct ServedAnswer {
  double value = 0;
  bool stale = false;
  uint32_t attempts = 0;
  bool coalesced = false;
  /// Staleness-policy flag: the answer is live (not `stale`) but touched
  /// a view whose base relation changed in a past generation whose
  /// rebuild failed, beyond ServeOptions::outdated_ttl_generations. The
  /// value is still exactly what the current bundle serves — `outdated`
  /// is provenance, not degradation. A `stale` answer never sets it (its
  /// originating entry's lifecycle is unknown).
  bool outdated = false;
  /// Store epoch and republish generation the answer was computed (or,
  /// for `stale`, degraded) under.
  uint64_t epoch = 0;
  uint64_t generation = 0;
  /// Grouped answers: the row set (group keys, noisy aggregates, per-row
  /// noisy counts and suppression flags — suppression already applied
  /// under ServeOptions::min_group_count). Null for scalar answers. For a
  /// grouped answer `value` is the row count, kept so every downstream
  /// consumer of the scalar field stays meaningful. Shared and immutable:
  /// cache hits and coalesced waiters all hand out the same object.
  std::shared_ptr<const aggregate::GroupedData> rows;
};

/// Alias making call sites that serve grouped row sets read naturally;
/// same type — scalar and grouped answers flow through one pipeline.
using ServedResult = ServedAnswer;

/// Concurrent query answering over a loaded SynopsisStore: the operational
/// complement of ViewRewriteEngine. Prepare/Publish runs once, offline,
/// and spends the privacy budget; a QueryServer then serves any number of
/// queries from the published (or reloaded) synopses at zero further
/// privacy cost — answering is deterministic post-processing of the
/// noisy cells.
///
/// Each Submit parses, rewrites (Rules 1-20), binds the rewritten query
/// against the stored views via the shared matcher, and answers from the
/// noisy cells on a worker thread. A query whose structure no stored view
/// covers fails with NotFound — never a crash, and never a budget spend.
///
/// ## Threading model
///
/// A fixed pool of workers consumes a bounded queue; Submit never blocks
/// (a full queue rejects with Unavailable). The store is an immutable
/// snapshot shared by all workers via shared_ptr (see the Synopsis
/// thread-safety contract); the answer cache is internally striped and
/// locked per stripe; stats counters are sharded per-thread cells
/// (ShardedServeCounters) so the hot path never bounces a shared cache
/// line. Answering draws no randomness, so workers need no per-thread
/// RNG — determinism is what makes the cache and coalescing sound.
///
/// ## Single-flight coalescing
///
/// Answers are deterministic per {store, epoch}, so N concurrent
/// identical requests need exactly one computation. Requests are keyed
/// twice, mirroring the cache:
///
/// - **raw stage** (before parse): requests with identical SQL text and
///   parameters join the flight already computing that text — the
///   duplicates skip parse, rewrite, match *and* answer.
/// - **canonical stage** (after rewrite): a flight that discovers a
///   canonical-equal flight already registered (textual variants that
///   rewrite identically) merges into it and its waiters move over.
///
/// Flight keys include the store epoch: a request admitted after a hot
/// reload starts a fresh flight against the new bundle rather than
/// receiving the old epoch's value unflagged. Every waiter of a flight
/// receives the same value or the same typed error; deadlines and stale
/// degradation are applied per waiter at resolution. A fresh cache hit
/// never consults or creates a flight, and a completing flight writes
/// each of its cache keys exactly once (leader only), no matter how many
/// waiters it resolved.
///
/// ## Batched submission
///
/// SubmitBatch enqueues a whole vector of queries under one queue lock
/// and deduplicates identical texts within the batch: duplicates ride
/// their first occurrence's task as pre-joined waiters, so a batch with
/// D distinct texts costs at most D computations (fewer when flights or
/// the cache absorb them).
///
/// ## Resilience
///
/// - **Deadlines**: each request carries a Deadline from Submit through
///   parse, rewrite, match and answer; expiry at any stage boundary (or
///   while still queued) resolves the future with DeadlineExceeded. A
///   flight's computation runs under the *latest* deadline among its
///   waiters, and each waiter's own deadline is re-checked when the
///   flight resolves (a successful flight still delivers its value —
///   success beats the deadline race, exactly as in the uncoalesced
///   path, where no deadline check follows a successful answer).
/// - **Retries**: transient answer-path failures retry under
///   `options.retry` with exponential backoff and deterministic seeded
///   jitter, capped by the flight deadline.
/// - **Circuit breakers**: one per fault domain (answer path, store
///   load). Consecutive transient failures trip the breaker; while open,
///   requests fail fast with Unavailable (or degrade to a stale answer).
/// - **Stale serving**: a cache entry from a previous epoch is never
///   returned as fresh, but when the live path fails it is served with
///   `stale = true` rather than an error — per waiter: each waiter
///   degrades on its own stale candidate (or the flight's shared one).
/// - **Hot reload**: Reload atomically swaps in a freshly loaded bundle
///   (epoch/RCU-style shared_ptr swap). In-flight queries finish against
///   the epoch they started under; new requests see the new bundle.
/// - **Shutdown**: stops intake, drains every accepted request, joins
///   workers. Coalesced waiters are never abandoned: queued requests
///   resolve through their flight's leader during the drain, and any
///   waiter still registered when the server is destroyed resolves with
///   Unavailable instead of a broken promise.
///
/// ## Cache
///
/// Two-level lookup. The raw key (verbatim SQL + parameters) short-cuts
/// exact resubmissions before any parsing. On a raw miss the query is
/// parsed and rewritten, and the canonical key (canonical rewritten SQL +
/// sorted parameters, rewrite/canonical.h) catches queries that differ
/// textually but rewrite to the same canonical form. Successful answers
/// populate both keys tagged with the serving epoch; failures are never
/// cached.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<const SynopsisStore> store, const Schema& schema,
              ServeOptions options = {});

  /// Drains and joins (Shutdown).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one query; the future resolves to its answer or a typed
  /// error. Rejected submissions (queue full, server shut down) resolve
  /// immediately with Unavailable — a Submit racing Shutdown always
  /// resolves, it is never abandoned. A request whose deadline is
  /// already expired, or that the overload limiter sheds, also resolves
  /// synchronously (DeadlineExceeded / ResourceExhausted) without ever
  /// occupying a queue slot.
  std::future<Result<ServedAnswer>> Submit(std::string sql,
                                           ParamMap params = {});

  /// Like Submit, but with a per-request deadline `timeout` from now
  /// (<= 0 means no deadline beyond the server default) and a priority
  /// class (strict-priority dequeue; shedding is lowest-class-first).
  std::future<Result<ServedAnswer>> Submit(
      std::string sql, ParamMap params, std::chrono::nanoseconds timeout,
      Priority priority = Priority::kInteractive);

  /// Batched submission: enqueues every query under a single queue lock
  /// and deduplicates identical texts within the batch (`params`, the
  /// deadline and the priority class are shared by all elements).
  /// futures[i] corresponds to sqls[i]. Admission control is per
  /// element: an oversized or limiter-shed element rejects alone; if the
  /// queue fills partway through, the remaining *distinct* texts reject
  /// with Unavailable while duplicates of already accepted texts still
  /// resolve with them.
  std::vector<std::future<Result<ServedAnswer>>> SubmitBatch(
      std::vector<std::string> sqls, ParamMap params = {},
      std::chrono::nanoseconds timeout = std::chrono::nanoseconds(0),
      Priority priority = Priority::kInteractive);

  /// Synchronous convenience: answers on the calling thread, bypassing
  /// the queue (still uses the cache, coalescing, retries, breakers and
  /// stats; may resolve other requests' waiters if it leads a flight).
  Result<ServedAnswer> Answer(const std::string& sql,
                              const ParamMap& params = {},
                              std::chrono::nanoseconds timeout =
                                  std::chrono::nanoseconds(0));

  /// Hot reload: loads a fresh bundle from `path` (with retries under the
  /// store breaker), verifies it against the schema, and atomically swaps
  /// it in. In-flight queries finish against the old epoch. On any
  /// failure the old bundle keeps serving and the error is returned.
  Status Reload(const std::string& path);

  /// Hot reload from an already-loaded store (e.g. built in-process).
  Status Reload(std::shared_ptr<const SynopsisStore> store);

  /// Stops accepting work, finishes every queued request, joins workers.
  /// Idempotent and safe to race from multiple threads.
  void Shutdown();

  /// Consistent snapshot of the counters.
  ServeStats stats() const;

  /// Current store snapshot (the epoch being served right now).
  std::shared_ptr<const SynopsisStore> store() const;

  /// Monotonic bundle epoch: 0 for the construction-time store, +1 per
  /// successful Reload.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Coarse overload signal for background work: the admission limiter
  /// is saturated or brownout is active. The Republisher defers
  /// generation rebuilds on it so republishing never competes with live
  /// queries for a saturated server. Always false when the limiter and
  /// brownout are both disabled.
  bool overloaded() const { return overload_.overloaded(); }

  /// Generation-eviction hook for the synopsis lifecycle: drops every
  /// answer-cache entry computed under an epoch older than `min_epoch`
  /// (the Republisher calls this once superseded generations age past the
  /// staleness TTL, freeing the cache stripes for current answers).
  /// Returns the number of entries dropped; no-op without a cache.
  uint64_t EvictCacheBefore(uint64_t min_epoch);

 private:
  struct Task {
    std::string sql;
    ParamMap params;
    Deadline deadline;
    Priority priority = Priority::kInteractive;
    /// When the task entered the queue; the admission-to-dequeue latency
    /// is the adaptive limiter's AIMD control signal.
    std::chrono::steady_clock::time_point enqueue_time;
    std::promise<Result<ServedAnswer>> promise;
    /// Batch-deduped duplicates of this task's sql: resolved together
    /// with the task, sharing its deadline and stale candidate.
    std::vector<std::promise<Result<ServedAnswer>>> followers;
  };

  /// Previous-epoch cache payload kept as a degradation fallback: the
  /// scalar value plus, for grouped answers, the row set it carried.
  struct StalePayload {
    double value = 0;
    std::shared_ptr<const aggregate::GroupedData> rows;
  };

  /// One request waiting on a flight's outcome. The leader's own promise
  /// is waiter #0 of its flight (coalesced = false); joined requests and
  /// batch followers carry coalesced = true.
  struct Waiter {
    std::promise<Result<ServedAnswer>> promise;
    Deadline deadline;
    std::optional<StalePayload> stale_candidate;
    bool coalesced = false;
  };

  /// One in-flight computation. Registered in `flights_` under its
  /// epoch-qualified raw key and, once the leader has rewritten the
  /// query, also under the epoch-qualified canonical key. `waiters`,
  /// `keys` and `shared_stale` are guarded by `flights_mu_`; the
  /// effective deadline is an atomic nanosecond timestamp so the leader
  /// can poll it lock-free at stage boundaries while joiners extend it.
  struct Flight {
    std::vector<Waiter> waiters;
    std::vector<std::string> keys;
    std::optional<StalePayload> shared_stale;
    std::atomic<int64_t> deadline_ns{kInfiniteDeadlineNs};
    uint64_t epoch = 0;
  };

  /// What a completed flight delivers to every waiter: a value (status
  /// OK) or a typed error, plus the attempts the leader consumed and the
  /// snapshot provenance (epoch/generation/outdated flag) every waiter's
  /// ServedAnswer is stamped with. `rows` carries a grouped answer's row
  /// set (null for scalar flights).
  struct FlightOutcome {
    Status status;
    double value = 0;
    uint32_t attempts = 0;
    bool outdated = false;
    uint64_t epoch = 0;
    uint64_t generation = 0;
    std::shared_ptr<const aggregate::GroupedData> rows;
  };

  static constexpr int64_t kInfiniteDeadlineNs =
      std::numeric_limits<int64_t>::max();

  /// The store snapshot a request answers against: pointer + the epoch it
  /// was current at. Taken once per request so a mid-request Reload never
  /// tears a query across two bundles.
  struct StoreSnapshot {
    std::shared_ptr<const SynopsisStore> store;
    uint64_t epoch = 0;
  };
  StoreSnapshot SnapshotStore() const;

  void WorkerLoop();
  /// Admission gate shared by Submit and SubmitBatch: injected
  /// serve.overload faults and the adaptive limiter. False means the
  /// request must be shed (after a brownout probe); true means it holds
  /// a limiter slot (when the limiter is enabled) and may be enqueued.
  bool AdmitTask(Priority priority);
  /// Brownout probe for a shed request: under sustained overload, an
  /// AnswerCache entry for the raw key (any epoch) is served with
  /// `stale = true` instead of the shed error.
  std::optional<ServedAnswer> TryBrownout(const std::string& sql,
                                          const ParamMap& params);
  /// Resolves `task` (and followers) with `r`, recording each outcome.
  void ResolveTask(Task& task, const Result<ServedAnswer>& r);
  /// Full request pipeline for one task (plus followers): cache
  /// short-circuit, flight join-or-lead, compute, resolve.
  void Process(Task task);
  /// Leader computation: parse → rewrite → canonical coalesce/cache →
  /// breaker/retry answer loop. Returns nullopt when this flight merged
  /// into a canonical-equal one (its waiters moved over; nothing to
  /// resolve here).
  std::optional<FlightOutcome> ComputeAnswer(const std::shared_ptr<Flight>& f,
                                             const StoreSnapshot& snap,
                                             const std::string& sql,
                                             const ParamMap& params,
                                             const std::string& raw_key);
  /// Deregisters the flight, extracts its waiters and resolves each one
  /// under its own deadline/stale semantics.
  void FinishFlight(const std::shared_ptr<Flight>& flight,
                    const FlightOutcome& out);
  Result<ServedAnswer> ResolveWaiter(
      Waiter& w, const FlightOutcome& out,
      const std::optional<StalePayload>& shared_stale);
  /// Counts one resolved request (completed/failed and their subsets).
  void RecordOutcome(const Result<ServedAnswer>& r);
  Deadline MakeDeadline(std::chrono::nanoseconds timeout) const;

  static int64_t DeadlineNanos(const Deadline& d);
  static void RelaxFlightDeadline(Flight& flight, const Deadline& d);
  static bool FlightDeadlineExpired(const Flight& flight);
  static std::chrono::nanoseconds FlightDeadlineRemaining(
      const Flight& flight);

  mutable std::mutex store_mu_;  // guards store_ swap; held only briefly
  std::shared_ptr<const SynopsisStore> store_;
  std::atomic<uint64_t> epoch_{0};

  const Schema& schema_;
  ServeOptions options_;
  Rewriter rewriter_;
  std::unique_ptr<AnswerCache> cache_;  // null when disabled
  CircuitBreaker answer_breaker_;
  CircuitBreaker store_breaker_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  PriorityTaskQueue<Task> queue_;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes the join phase of concurrent Shutdowns

  std::mutex flights_mu_;  // guards flights_ and every Flight's shared state
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  std::vector<std::thread> workers_;

  mutable OverloadController overload_;
  RetryBudget retry_budget_;
  mutable ShardedServeCounters counters_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_QUERY_SERVER_H_
