#ifndef VIEWREWRITE_SERVE_QUERY_SERVER_H_
#define VIEWREWRITE_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "serve/answer_cache.h"
#include "serve/serve_stats.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {

struct ServeOptions {
  /// Worker threads answering queries concurrently.
  size_t num_threads = 4;
  /// Bounded request queue: Submit calls beyond this depth are rejected
  /// with Unavailable instead of growing memory without bound.
  size_t queue_capacity = 1024;
  bool enable_cache = true;
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Serve-time rewrite options; must match the options the workload was
  /// prepared with, or structurally identical queries would map to
  /// different view signatures.
  RewriteOptions rewrite;
};

/// Concurrent query answering over a loaded SynopsisStore: the operational
/// complement of ViewRewriteEngine. Prepare/Publish runs once, offline,
/// and spends the privacy budget; a QueryServer then serves any number of
/// queries from the published (or reloaded) synopses at zero further
/// privacy cost — answering is deterministic post-processing of the
/// noisy cells.
///
/// Each Submit parses, rewrites (Rules 1-20), binds the rewritten query
/// against the stored views via the shared matcher, and answers from the
/// noisy cells on a worker thread. A query whose structure no stored view
/// covers fails with NotFound — never a crash, and never a budget spend.
///
/// ## Threading model
///
/// A fixed pool of workers consumes a bounded queue; Submit never blocks
/// (a full queue rejects with Unavailable). The store and schema are
/// immutable, shared by all workers without locking (see the Synopsis
/// thread-safety contract); the answer cache is internally sharded and
/// locked; stats counters are atomics. Answering draws no randomness, so
/// workers need no per-thread RNG — determinism is what makes the cache
/// sound.
///
/// ## Cache
///
/// Two-level lookup. The raw key (verbatim SQL + parameters) short-cuts
/// exact resubmissions before any parsing. On a raw miss the query is
/// parsed and rewritten, and the canonical key (canonical rewritten SQL +
/// sorted parameters, rewrite/canonical.h) catches queries that differ
/// textually but rewrite to the same canonical form. Successful answers
/// populate both keys; failures are never cached.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<const SynopsisStore> store, const Schema& schema,
              ServeOptions options = {});

  /// Drains and joins (Shutdown).
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues one query; the future resolves to its noisy answer or a
  /// typed error. Rejected submissions (queue full, server shut down)
  /// resolve immediately with Unavailable.
  std::future<Result<double>> Submit(std::string sql, ParamMap params = {});

  /// Synchronous convenience: answers on the calling thread, bypassing
  /// the queue (still uses the cache and counts stats).
  Result<double> Answer(const std::string& sql, const ParamMap& params = {});

  /// Stops accepting work, finishes every queued request, joins workers.
  /// Idempotent.
  void Shutdown();

  /// Consistent snapshot of the counters.
  ServeStats stats() const;

  const SynopsisStore& store() const { return *store_; }

 private:
  struct Task {
    std::string sql;
    ParamMap params;
    std::promise<Result<double>> promise;
  };

  void WorkerLoop();
  Result<double> Handle(const std::string& sql, const ParamMap& params);

  std::shared_ptr<const SynopsisStore> store_;
  const Schema& schema_;
  ServeOptions options_;
  Rewriter rewriter_;
  std::unique_ptr<AnswerCache> cache_;  // null when disabled

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> unmatched_{0};
  std::atomic<uint64_t> answer_nanos_{0};
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_QUERY_SERVER_H_
