#ifndef VIEWREWRITE_SERVE_REPUBLISHER_H_
#define VIEWREWRITE_SERVE_REPUBLISHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/result.h"
#include "common/retry.h"
#include "engine/viewrewrite_engine.h"
#include "serve/query_server.h"

namespace viewrewrite {

struct RepublisherOptions {
  /// Where each generation's bundle is durably published (atomic
  /// save-then-rename; see SynopsisStore::Save). Required.
  std::string bundle_path;
  /// Privacy budget each republish generation spends, split uniformly
  /// across the affected views and charged against the engine's lifetime
  /// ledger under sequential composition (see
  /// EngineOptions::lifetime_epsilon).
  double generation_epsilon = 0.5;
  /// Attempts per RepublishNow call. Every attempt consumes its own
  /// generation number, so a generation that saved but failed to swap is
  /// never reused for different cells.
  uint32_t max_attempts = 3;
  /// Backoff between attempts (paced like the serve-path retries).
  RetryPolicy retry;
  /// Circuit breaker over the whole rebuild→save→swap path: repeated
  /// rebuild failures trip it, and while open RepublishNow fails fast
  /// with Unavailable instead of burning budget-adjacent work.
  CircuitBreakerOptions breaker;
  /// Staleness-policy eviction: after a successful swap to epoch E,
  /// answer-cache entries older than E - cache_eviction_lag are dropped,
  /// freeing their stripes (entries that recent are kept as stale-serving
  /// fallbacks). 0 disables eviction entirely.
  uint64_t cache_eviction_lag = 8;
  /// Test/observability hook, invoked after the bundle is durably saved
  /// and before the server swap, still under the republish serialization
  /// lock. The chaos harness uses it to snapshot per-generation baseline
  /// answers at the only moment they are unambiguous.
  std::function<void(uint64_t generation)> on_saved;
  /// Priority demotion: republishing is background work, so when the
  /// server reports overload (QueryServer::overloaded — saturated
  /// admission limiter or active brownout) a generation waits for the
  /// pressure to clear before rebuilding, instead of stealing CPU from
  /// live queries. Bounded by `overload_defer_max` so a permanently
  /// saturated server still republishes eventually (data freshness must
  /// not starve forever either). No-op when the server's overload
  /// control is disabled.
  bool defer_under_overload = true;
  std::chrono::nanoseconds overload_defer_max = std::chrono::milliseconds(500);
  std::chrono::nanoseconds overload_poll = std::chrono::milliseconds(1);
};

/// Outcome of one successfully published generation.
struct RepublishReport {
  uint64_t generation = 0;
  uint64_t parent_epoch = 0;
  std::vector<std::string> changed_relations;
  std::vector<std::string> rebuilt;
  /// Affected views whose rebuild failed this generation: refunded,
  /// still serving their old cells, flagged outdated in the bundle.
  std::vector<std::string> failed;
  double epsilon_spent = 0;
  /// Server epoch after the swap.
  uint64_t epoch_after = 0;
  /// Attempts this RepublishNow consumed (> 1 means earlier attempts
  /// failed and were retried under fresh generation numbers).
  uint32_t attempts = 0;
};

struct RepublisherStats {
  uint64_t generations_attempted = 0;
  uint64_t generations_published = 0;
  uint64_t generations_failed = 0;  // attempts that did not publish
  uint64_t views_rebuilt = 0;
  uint64_t rebuild_failures = 0;  // per-view failures inside generations
  uint64_t breaker_trips = 0;
  uint64_t breaker_rejected = 0;
  uint64_t cache_evictions = 0;  // entries dropped by the eviction policy
  uint64_t notifications = 0;    // NotifyChanged calls absorbed
  uint64_t overload_deferrals = 0;  // generations that waited for server
                                    // overload to clear before rebuilding
  double epsilon_spent = 0;      // net across all published generations
};

/// Background synopsis-lifecycle driver: turns "these base relations
/// changed" into a durably published, atomically swapped new bundle
/// generation, off the serving path.
///
/// One generation = delta rebuild of the affected views (budget charged
/// under cross-epoch sequential composition, refunded if the generation
/// never becomes observable) → snapshot with generation metadata →
/// durable Save (fsync temp + rename + parent fsync) → QueryServer::Reload
/// (RCU swap, monotonic epoch bump) → staleness-policy cache eviction.
///
/// ## Failure semantics (the refund boundary)
///
/// The point of no return is the rename inside Save. Failures *before* it
/// (rebuild fault, snapshot error, save fault) discard every output, so
/// the generation's spend is refunded and composition treats it as never
/// run. Failures *after* it (swap fault, reload rejection) leave a durable
/// bundle on disk that a restart — or the next Reload — will serve, so the
/// spend is NOT refunded: the file is ahead of the serving process, not
/// wasted. Each attempt uses a fresh generation number so a
/// saved-but-unswapped generation is never confused with a later retry.
///
/// ## Threading
///
/// RepublishNow serializes against itself and the background thread via
/// one mutex (engine lifecycle mutations are not concurrent-safe, and
/// concurrent Saves to one path are unsupported); it runs concurrently
/// with QueryServer traffic by design — that race is the chaos harness's
/// main subject. NotifyChanged/Start/Stop are thread safe.
class Republisher {
 public:
  /// `engine` owns the views and budget ledger; `schema` must be the
  /// schema the engine prepared under; `server` is swapped on publish.
  /// All three must outlive the Republisher.
  Republisher(ViewRewriteEngine* engine, const Schema& schema,
              QueryServer* server, RepublisherOptions options);

  /// Stops the background thread.
  ~Republisher();

  Republisher(const Republisher&) = delete;
  Republisher& operator=(const Republisher&) = delete;

  /// Rebuilds + publishes a generation for `changed_relations`
  /// synchronously (with retries/backoff/breaker). Returns the published
  /// generation's report, or the last attempt's error. PrivacyError
  /// (lifetime budget exhausted) is terminal: no retry, no breaker trip.
  Result<RepublishReport> RepublishNow(
      const std::vector<std::string>& changed_relations);

  /// Queues changed relations for the background thread (unioned with
  /// anything already pending). Requires Start().
  void NotifyChanged(const std::vector<std::string>& changed_relations);

  /// Starts the background thread (idempotent).
  void Start();

  /// Stops and joins the background thread (idempotent). Pending
  /// notifications that were not yet picked up are dropped.
  void Stop();

  /// Last successfully published generation (0 = none yet).
  uint64_t generation() const {
    return published_generation_.load(std::memory_order_acquire);
  }

  RepublisherStats stats() const;

 private:
  /// One attempt under one fresh generation number.
  Result<RepublishReport> TryRepublish(
      const std::vector<std::string>& changed_relations, uint64_t generation);
  void BackgroundLoop();

  ViewRewriteEngine* engine_;
  const Schema& schema_;
  QueryServer* server_;
  RepublisherOptions options_;
  CircuitBreaker breaker_;

  std::mutex republish_mu_;  // serializes whole generations
  uint64_t next_generation_ = 0;  // guarded by republish_mu_
  std::atomic<uint64_t> published_generation_{0};

  mutable std::mutex stats_mu_;
  RepublisherStats stats_;

  std::mutex bg_mu_;  // guards pending_, bg_stop_, bg_running_
  std::condition_variable bg_cv_;
  std::set<std::string> pending_;
  bool bg_stop_ = false;
  bool bg_running_ = false;
  std::thread bg_thread_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_REPUBLISHER_H_
