#include "serve/republisher.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "rewrite/canonical.h"

namespace viewrewrite {

Republisher::Republisher(ViewRewriteEngine* engine, const Schema& schema,
                         QueryServer* server, RepublisherOptions options)
    : engine_(engine),
      schema_(schema),
      server_(server),
      options_(std::move(options)),
      breaker_(options_.breaker) {}

Republisher::~Republisher() { Stop(); }

Result<RepublishReport> Republisher::RepublishNow(
    const std::vector<std::string>& changed_relations) {
  // One generation at a time: the engine's lifecycle mutations are not
  // concurrent-safe and concurrent Saves to one bundle path are
  // unsupported. Server traffic keeps flowing concurrently — that is the
  // race this subsystem is designed (and chaos-tested) to survive.
  std::lock_guard<std::mutex> lock(republish_mu_);
  // Priority demotion: a rebuild is background work — under overload it
  // waits (bounded) for the serve path to drain rather than competing
  // with live queries for a saturated server.
  if (options_.defer_under_overload && server_->overloaded()) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.overload_deferrals;
    }
    const auto give_up =
        std::chrono::steady_clock::now() + options_.overload_defer_max;
    const auto poll =
        std::max<std::chrono::nanoseconds>(options_.overload_poll,
                                           std::chrono::microseconds(100));
    while (server_->overloaded() &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(poll);
    }
  }
  Backoff backoff(options_.retry, Fnv1a64(options_.bundle_path));
  const uint32_t max_attempts = std::max(1u, options_.max_attempts);
  Status last;
  for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker_.Allow()) {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.breaker_rejected;
      return Status::Unavailable(
          "republish circuit breaker is open; failing fast");
    }
    // Every attempt burns its own generation number: a generation that
    // durably saved but failed to swap must never share a number with a
    // retry that rebuilds different cells.
    const uint64_t generation = ++next_generation_;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.generations_attempted;
    }
    Result<RepublishReport> got = TryRepublish(changed_relations, generation);
    if (got.ok()) {
      breaker_.RecordSuccess();
      got->attempts = attempt;
      published_generation_.store(generation, std::memory_order_release);
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.generations_published;
      stats_.views_rebuilt += got->rebuilt.size();
      stats_.rebuild_failures += got->failed.size();
      stats_.epsilon_spent += got->epsilon_spent;
      return got;
    }
    last = got.status();
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.generations_failed;
    }
    if (!IsRetryableStatus(last.code())) {
      // Semantic failure — above all PrivacyError when the lifetime
      // budget cannot cover another generation. The rebuild machinery
      // itself is healthy, so the breaker records success, and retrying
      // could only repeat the refusal.
      breaker_.RecordSuccess();
      return last;
    }
    breaker_.RecordFailure();
    if (attempt < max_attempts) {
      std::this_thread::sleep_for(backoff.Next());
    }
  }
  return last;
}

Result<RepublishReport> Republisher::TryRepublish(
    const std::vector<std::string>& changed_relations, uint64_t generation) {
  VR_FAULT_POINT(faults::kServeRepublish);

  // Phase 1 — delta rebuild. Failures in here (including injected
  // republish.build faults) refund per view inside RepublishChanged
  // itself; a whole-generation error mutates nothing.
  VR_ASSIGN_OR_RETURN(
      ViewManager::RepublishOutcome outcome,
      engine_->RepublishChanged(changed_relations,
                                options_.generation_epsilon, generation));

  RepublishReport report;
  report.generation = generation;
  report.parent_epoch = server_->epoch();
  report.changed_relations = changed_relations;
  report.rebuilt = outcome.rebuilt;
  report.failed = outcome.failed;
  report.epsilon_spent = outcome.epsilon_spent;

  // Phase 2 — snapshot + durable save. Until the rename inside Save, the
  // generation's outputs are observable nowhere, so any failure refunds
  // the spend and composition treats the generation as never run.
  SynopsisStore::GenerationInfo info;
  info.generation = generation;
  info.parent_epoch = report.parent_epoch;
  info.generation_epsilon = outcome.epsilon_spent;
  info.changed_relations = changed_relations;
  Result<SynopsisStore> store =
      SynopsisStore::FromManager(engine_->views(), schema_, std::move(info));
  if (!store.ok()) {
    VR_RETURN_NOT_OK(engine_->RefundGeneration(outcome));
    return store.status();
  }
  Status saved = store->Save(options_.bundle_path);
  if (!saved.ok()) {
    VR_RETURN_NOT_OK(engine_->RefundGeneration(outcome));
    return saved;
  }

  // Point of no return: the bundle is durably on disk. From here on,
  // failures are NOT refunded — a restart (or the next Reload) will serve
  // this generation, so its budget was genuinely consumed. The file being
  // ahead of the serving process is the documented, recoverable state.
  if (options_.on_saved) options_.on_saved(generation);

  // Phase 3 — swap.
  VR_FAULT_POINT(faults::kRepublishSwap);
  VR_RETURN_NOT_OK(server_->Reload(
      std::make_shared<const SynopsisStore>(std::move(*store))));
  report.epoch_after = server_->epoch();

  // The generation is durable and serving: fold the budget ledger's
  // history into a WAL checkpoint (and compact the log when it has grown
  // past the threshold). Best-effort — a checkpoint failure loses only
  // compaction, never accounting, since every spend is already durable.
  (void)engine_->CheckpointBudgetWal(generation);

  // Staleness policy: entries from epochs that have aged past the lag are
  // no longer worth keeping as stale-serving fallbacks; free their
  // stripes.
  if (options_.cache_eviction_lag > 0 &&
      report.epoch_after > options_.cache_eviction_lag) {
    const uint64_t dropped = server_->EvictCacheBefore(
        report.epoch_after - options_.cache_eviction_lag);
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.cache_evictions += dropped;
  }
  return report;
}

void Republisher::NotifyChanged(
    const std::vector<std::string>& changed_relations) {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    pending_.insert(changed_relations.begin(), changed_relations.end());
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.notifications;
  }
  bg_cv_.notify_one();
}

void Republisher::Start() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_running_) return;
  bg_stop_ = false;
  bg_running_ = true;
  bg_thread_ = std::thread([this] { BackgroundLoop(); });
}

void Republisher::Stop() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (!bg_running_) return;
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  bg_thread_.join();
  std::lock_guard<std::mutex> lock(bg_mu_);
  bg_running_ = false;
}

void Republisher::BackgroundLoop() {
  for (;;) {
    std::vector<std::string> changed;
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait(lock, [this] { return bg_stop_ || !pending_.empty(); });
      if (bg_stop_) return;
      changed.assign(pending_.begin(), pending_.end());
      pending_.clear();
    }
    // Errors are already recorded in stats_ (and the breaker); the loop
    // keeps serving later notifications regardless.
    (void)RepublishNow(changed);
  }
}

RepublisherStats Republisher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RepublisherStats s = stats_;
  s.breaker_trips = breaker_.trips();
  return s;
}

}  // namespace viewrewrite
