#ifndef VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_
#define VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/limits.h"
#include "common/result.h"
#include "view/view_manager.h"

namespace viewrewrite {

/// A self-contained, persistable snapshot of a publication: every view
/// definition together with its published synopsis, the schema
/// fingerprint the views were built against, and a summary of the budget
/// ledger. Once published, the noisy cells are just data — saving and
/// reloading them consumes no further privacy budget (DP post-processing),
/// which is the paper's "publish once, serve forever" property made
/// durable across process restarts.
///
/// ## On-disk format (version 1)
///
/// All integers little-endian, doubles as IEEE-754 bit patterns (so a
/// save/load round trip is bit-identical). Layout:
///
///   u32 magic "VRSY"  | u16 format version | u16 reserved
///   repeated sections, each:
///     u32 section tag | u64 payload length | payload bytes | u32 CRC-32
///
/// Section tags: 'H' header (schema fingerprint, view count, ledger
/// summary), 'G' generation metadata (synopsis-lifecycle provenance:
/// generation number, parent epoch, changed-relation set, per-generation
/// epsilon, per-view data generations — optional, at most one, defaults
/// to generation 0 when absent so pre-lifecycle bundles still load), 'V'
/// one view + its synopsis parts, 'E' end marker (empty payload). Load
/// verifies magic, version, every section CRC, and the schema
/// fingerprint, and returns a typed Status (Corruption / Unsupported /
/// InvalidArgument) instead of crashing on any mismatch, truncation, or
/// trailing garbage.
///
/// AST-bearing pieces (the view's FROM template with baked predicates,
/// SUM measure expressions) are persisted as canonical SQL text and
/// re-parsed on load; the printer's canonical rendering makes this
/// round-trip exact.
///
/// Thread safety: a SynopsisStore is immutable after construction; all
/// const members may be called concurrently (see Synopsis's contract).
class SynopsisStore {
 public:
  /// Budget audit summary persisted with the bundle: what the publication
  /// cost, so a serving process can report provenance without the
  /// accountant object.
  struct LedgerSummary {
    double total_epsilon = 0;
    double spent_epsilon = 0;
    uint32_t entries = 0;
    uint32_t refunds = 0;
    /// True when the publishing accountant was poisoned (constructed from
    /// garbage totals or recovery state): the epsilons above then read 0
    /// by design, and this flag distinguishes "nothing spent" from "the
    /// accounting itself was refused". Persisted as an optional trailing
    /// byte of the header section so pre-flag bundles still load (absent
    /// reads as false) and pre-flag builds ignore it.
    bool poisoned = false;
  };

  /// Synopsis-lifecycle provenance persisted with the bundle ('G'
  /// section): which republish generation produced it, the server epoch
  /// it was built to replace (parent), which base relations changed, and
  /// the epsilon that generation spent. Generation 0 is the initial
  /// publication (the defaults, and what pre-lifecycle bundles load as).
  struct GenerationInfo {
    uint64_t generation = 0;
    uint64_t parent_epoch = 0;
    double generation_epsilon = 0;
    std::vector<std::string> changed_relations;
  };

  /// Per-view lifecycle stamp: the generation whose rebuild last
  /// refreshed the view's cells, and (when nonzero) the first generation
  /// whose base-relation change the view missed — the staleness policy's
  /// input.
  struct ViewLifecycle {
    uint64_t data_generation = 0;
    uint64_t outdated_since = 0;  // 0 = fresh
  };

  SynopsisStore(SynopsisStore&&) = default;
  SynopsisStore& operator=(SynopsisStore&&) = default;

  /// Snapshots a published ViewManager (the export hook): deep-copies
  /// every view with a published synopsis, together with the manager's
  /// per-view lifecycle stamps. Views whose publication failed (degraded
  /// mode) are skipped — they have nothing to serve. `generation`
  /// describes the snapshot itself (the two-argument overload snapshots
  /// the initial publication, generation 0).
  static Result<SynopsisStore> FromManager(const ViewManager& manager,
                                           const Schema& schema);
  static Result<SynopsisStore> FromManager(const ViewManager& manager,
                                           const Schema& schema,
                                           GenerationInfo generation);

  /// Writes the bundle to `path` (atomically: a uniquely named temp file
  /// fsync'd and renamed over the target, parent directory fsync'd).
  /// After a successful publish, orphaned `<path>.tmp*` siblings left by
  /// earlier crashed saves are swept away (best-effort): a crash between
  /// the temp write and the rename strands a fully durable temp file, and
  /// without the sweep every crash would leak one. Concurrent Saves to
  /// the same path are not supported (the Republisher serializes them).
  Status Save(const std::string& path) const;

  /// Reads a bundle back and re-binds it against `schema`, which must
  /// fingerprint-match the schema the bundle was built under.
  ///
  /// Resource governance: the loader never trusts a length field. Every
  /// declared element count is cross-checked against the bytes actually
  /// remaining in the section before any reserve/allocate, and all
  /// materialized arrays and strings are charged against
  /// `limits.max_arena_bytes` — so a hostile bundle (e.g. a 100-byte file
  /// declaring 2^60 doubles) fails with kCorruption/kResourceExhausted
  /// instead of a multi-gigabyte allocation or an integer-overflowed
  /// bounds check.
  static Result<SynopsisStore> Load(
      const std::string& path, const Schema& schema,
      const ResourceLimits& limits = ResourceLimits::Defaults());

  size_t NumViews() const { return views_.size(); }
  uint64_t schema_fingerprint() const { return schema_fingerprint_; }
  const LedgerSummary& ledger() const { return ledger_; }
  const std::vector<std::unique_ptr<ViewDef>>& views() const { return views_; }

  const GenerationInfo& generation_info() const { return generation_info_; }
  /// Republish generation this bundle carries (0 = initial publication).
  uint64_t generation() const { return generation_info_.generation; }
  const std::map<std::string, ViewLifecycle>& lifecycle() const {
    return lifecycle_;
  }
  /// Staleness metric for the TTL policy: how many generations ago
  /// `signature`'s base data changed without a successful rebuild.
  /// 0 means fresh (or unknown view). A view outdated since generation g
  /// in a generation-G bundle has been stale for G - g + 1 generations.
  uint64_t OutdatedGenerations(const std::string& signature) const {
    auto it = lifecycle_.find(signature);
    if (it == lifecycle_.end() || it->second.outdated_since == 0) return 0;
    if (generation_info_.generation < it->second.outdated_since) return 1;
    return generation_info_.generation - it->second.outdated_since + 1;
  }

  /// Synopsis for `signature`, or nullptr.
  const Synopsis* Find(const std::string& signature) const;

  /// Serve-time matching: analyzes a scalar aggregate with the same
  /// matcher registration used (view_matcher.h) and binds it to a stored
  /// view. Fails with NotFound (and no budget spend — there is no budget
  /// here to spend) when no stored view has the query's structure or the
  /// view lacks a required attribute/measure.
  Result<BoundQuery> BindScalar(const SelectStmt& query,
                                const BakePredicate& bake) const;

  /// Serve-time matching for a grouped aggregate: same analysis
  /// RegisterGrouped uses (AnalyzeGroupedQuery), so a grouped query that
  /// registered in-process also binds after a save/load round trip. The
  /// bound cell query is the full grouped statement (GROUP BY + HAVING);
  /// answering enumerates group cells and filters post-noise.
  Result<BoundQuery> BindGrouped(const SelectStmt& query,
                                 const BakePredicate& bake) const;

  /// Binds a full rewritten query (chain links + combination terms).
  /// Grouped terms (non-empty GROUP BY) route through BindGrouped.
  Result<BoundRewrittenQuery> Bind(const RewrittenQuery& rq,
                                   const BakePredicate& bake) const;

  /// Answers one bound scalar from the stored noisy cells.
  Result<double> AnswerScalar(const BoundQuery& q, const ParamMap& params) const;

  /// Answers a bound grouped query from the stored noisy cells: one row
  /// per group cell with per-row noisy counts (the suppression input),
  /// derived aggregates from published measures, HAVING post-noise.
  Result<aggregate::GroupedData> AnswerGrouped(const BoundQuery& q,
                                               const ParamMap& params) const;

  /// Answers a bound rewritten query: chain links evaluate first (their
  /// results bind $var parameters), then the signed combination, exactly
  /// as ViewManager::Answer does in-process.
  Result<double> Answer(const BoundRewrittenQuery& q,
                        const ParamMap& params = {}) const;

 private:
  SynopsisStore() = default;

  uint64_t schema_fingerprint_ = 0;
  LedgerSummary ledger_;
  GenerationInfo generation_info_;
  std::map<std::string, ViewLifecycle> lifecycle_;  // signature -> stamps
  /// Owned view definitions; synopses_ hold non-owning pointers into
  /// these, so views_ must never reallocate after construction (it is
  /// built once and then immutable).
  std::vector<std::unique_ptr<ViewDef>> views_;
  std::map<std::string, size_t> view_index_;  // signature -> views_ index
  std::map<std::string, Synopsis> synopses_;  // signature -> synopsis
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_
