#ifndef VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_
#define VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/limits.h"
#include "common/result.h"
#include "view/view_manager.h"

namespace viewrewrite {

/// A self-contained, persistable snapshot of a publication: every view
/// definition together with its published synopsis, the schema
/// fingerprint the views were built against, and a summary of the budget
/// ledger. Once published, the noisy cells are just data — saving and
/// reloading them consumes no further privacy budget (DP post-processing),
/// which is the paper's "publish once, serve forever" property made
/// durable across process restarts.
///
/// ## On-disk format (version 1)
///
/// All integers little-endian, doubles as IEEE-754 bit patterns (so a
/// save/load round trip is bit-identical). Layout:
///
///   u32 magic "VRSY"  | u16 format version | u16 reserved
///   repeated sections, each:
///     u32 section tag | u64 payload length | payload bytes | u32 CRC-32
///
/// Section tags: 'H' header (schema fingerprint, view count, ledger
/// summary), 'V' one view + its synopsis parts, 'E' end marker (empty
/// payload). Load verifies magic, version, every section CRC, and the
/// schema fingerprint, and returns a typed Status (Corruption /
/// Unsupported / InvalidArgument) instead of crashing on any mismatch,
/// truncation, or trailing garbage.
///
/// AST-bearing pieces (the view's FROM template with baked predicates,
/// SUM measure expressions) are persisted as canonical SQL text and
/// re-parsed on load; the printer's canonical rendering makes this
/// round-trip exact.
///
/// Thread safety: a SynopsisStore is immutable after construction; all
/// const members may be called concurrently (see Synopsis's contract).
class SynopsisStore {
 public:
  /// Budget audit summary persisted with the bundle: what the publication
  /// cost, so a serving process can report provenance without the
  /// accountant object.
  struct LedgerSummary {
    double total_epsilon = 0;
    double spent_epsilon = 0;
    uint32_t entries = 0;
    uint32_t refunds = 0;
  };

  SynopsisStore(SynopsisStore&&) = default;
  SynopsisStore& operator=(SynopsisStore&&) = default;

  /// Snapshots a published ViewManager (the export hook): deep-copies
  /// every view with a published synopsis. Views whose publication failed
  /// (degraded mode) are skipped — they have nothing to serve.
  static Result<SynopsisStore> FromManager(const ViewManager& manager,
                                           const Schema& schema);

  /// Writes the bundle to `path` (atomically: a temp file renamed over
  /// the target).
  Status Save(const std::string& path) const;

  /// Reads a bundle back and re-binds it against `schema`, which must
  /// fingerprint-match the schema the bundle was built under.
  ///
  /// Resource governance: the loader never trusts a length field. Every
  /// declared element count is cross-checked against the bytes actually
  /// remaining in the section before any reserve/allocate, and all
  /// materialized arrays and strings are charged against
  /// `limits.max_arena_bytes` — so a hostile bundle (e.g. a 100-byte file
  /// declaring 2^60 doubles) fails with kCorruption/kResourceExhausted
  /// instead of a multi-gigabyte allocation or an integer-overflowed
  /// bounds check.
  static Result<SynopsisStore> Load(
      const std::string& path, const Schema& schema,
      const ResourceLimits& limits = ResourceLimits::Defaults());

  size_t NumViews() const { return views_.size(); }
  uint64_t schema_fingerprint() const { return schema_fingerprint_; }
  const LedgerSummary& ledger() const { return ledger_; }
  const std::vector<std::unique_ptr<ViewDef>>& views() const { return views_; }

  /// Synopsis for `signature`, or nullptr.
  const Synopsis* Find(const std::string& signature) const;

  /// Serve-time matching: analyzes a scalar aggregate with the same
  /// matcher registration used (view_matcher.h) and binds it to a stored
  /// view. Fails with NotFound (and no budget spend — there is no budget
  /// here to spend) when no stored view has the query's structure or the
  /// view lacks a required attribute/measure.
  Result<BoundQuery> BindScalar(const SelectStmt& query,
                                const BakePredicate& bake) const;

  /// Binds a full rewritten query (chain links + combination terms).
  Result<BoundRewrittenQuery> Bind(const RewrittenQuery& rq,
                                   const BakePredicate& bake) const;

  /// Answers one bound scalar from the stored noisy cells.
  Result<double> AnswerScalar(const BoundQuery& q, const ParamMap& params) const;

  /// Answers a bound rewritten query: chain links evaluate first (their
  /// results bind $var parameters), then the signed combination, exactly
  /// as ViewManager::Answer does in-process.
  Result<double> Answer(const BoundRewrittenQuery& q,
                        const ParamMap& params = {}) const;

 private:
  SynopsisStore() = default;

  uint64_t schema_fingerprint_ = 0;
  LedgerSummary ledger_;
  /// Owned view definitions; synopses_ hold non-owning pointers into
  /// these, so views_ must never reallocate after construction (it is
  /// built once and then immutable).
  std::vector<std::unique_ptr<ViewDef>> views_;
  std::map<std::string, size_t> view_index_;  // signature -> views_ index
  std::map<std::string, Synopsis> synopses_;  // signature -> synopsis
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_SYNOPSIS_STORE_H_
