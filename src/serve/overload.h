#ifndef VIEWREWRITE_SERVE_OVERLOAD_H_
#define VIEWREWRITE_SERVE_OVERLOAD_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "common/deadline.h"

namespace viewrewrite {

/// Request priority classes for the serve path. Lower numeric value =
/// higher priority. `kInteractive` is a user waiting on the answer;
/// `kBatch` is programmatic bulk traffic that tolerates queueing;
/// `kBackground` is maintenance work (warming, sweeps) that must never
/// starve the other two. Dequeue is strict priority and shedding is
/// lowest-class-first: under overload `kBackground` loses admission
/// headroom first, then `kBatch`, and a full queue evicts the youngest
/// lowest-class request before refusing a higher-class arrival.
enum class Priority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};

inline constexpr size_t kNumPriorities = 3;

const char* PriorityName(Priority p);

/// Knobs for the adaptive concurrency/admission limiter (AIMD on observed
/// queue latency, Vegas-style: latency above target means the queue is
/// deeper than the workers can drain, so the limit contracts).
struct AdaptiveLimiterOptions {
  /// Master switch. Disabled (the default) the limiter admits everything
  /// and the server never touches it — existing behavior is unchanged.
  bool enabled = false;
  /// Concurrency limit at construction (admitted-but-unfinished
  /// requests, i.e. queue depth plus in-service).
  double initial_limit = 32;
  double min_limit = 2;
  double max_limit = 1024;
  /// The control target: when the smoothed queue latency (time from
  /// admission to dequeue) exceeds this, the limit decreases
  /// multiplicatively; while at or below it, the limit creeps up
  /// additively.
  std::chrono::nanoseconds target_queue_latency = std::chrono::milliseconds(2);
  /// Additive increase per below-target sample, scaled by 1/limit so the
  /// limit grows by roughly one slot per limit's worth of samples
  /// (classic gradient probing).
  double increase = 1.0;
  /// Multiplicative decrease factor applied when the smoothed latency is
  /// over target.
  double decrease_factor = 0.7;
  /// Minimum spacing between two decreases: one congestion episode should
  /// cost one cut, not one cut per queued sample already in the pipe.
  std::chrono::nanoseconds decrease_cooldown = std::chrono::milliseconds(10);
  /// EWMA smoothing weight for the queue-latency signal.
  double ewma_alpha = 0.2;
  /// Lowest-class-first shedding: `kBatch` is admitted only while
  /// in-flight stays under batch_fraction x limit, `kBackground` under
  /// background_fraction x limit. `kInteractive` may use the full limit.
  double batch_fraction = 0.9;
  double background_fraction = 0.7;
};

/// Adaptive concurrency limiter: admits up to `limit` concurrently held
/// requests and adapts `limit` by AIMD on the observed queue latency.
/// The clock is injectable (same pattern as CircuitBreaker) so unit tests
/// drive the decrease cooldown deterministically without sleeping.
///
/// Thread safe; every operation takes one short mutex (call rates are one
/// TryAcquire per Submit and one OnQueueLatency/Release per dequeue,
/// orders of magnitude below contention concern).
class AdaptiveLimiter {
 public:
  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  /// A null `clock` uses std::chrono::steady_clock::now.
  explicit AdaptiveLimiter(AdaptiveLimiterOptions options, ClockFn clock = {});

  /// Tries to take one slot for a request of class `p`. False means the
  /// request must be shed (or brownout-served) — it never blocks. A
  /// disabled limiter always admits (and does not count the slot).
  bool TryAcquire(Priority p);

  /// Returns the slot taken by a successful TryAcquire. Call exactly once
  /// per admitted request, when it stops occupying queue + service
  /// capacity (resolved, dropped or displaced).
  void Release();

  /// Feeds one queue-latency observation (admission to dequeue) into the
  /// AIMD controller.
  void OnQueueLatency(std::chrono::nanoseconds queued);

  bool enabled() const { return options_.enabled; }
  double limit() const;
  uint64_t in_flight() const;
  std::chrono::nanoseconds smoothed_latency() const;
  /// AIMD events so far, for tests asserting convergence dynamics.
  uint64_t increases() const;
  uint64_t decreases() const;

 private:
  /// Admission cap for class `p`: the full limit for interactive, the
  /// configured fraction of it below (never under min_limit, so lower
  /// classes are squeezed, not starved outright, at small limits).
  double CapFor(Priority p) const;

  AdaptiveLimiterOptions options_;
  ClockFn clock_;

  mutable std::mutex mu_;
  double limit_;
  uint64_t in_flight_ = 0;
  double ewma_ns_ = 0;
  bool have_sample_ = false;
  std::chrono::steady_clock::time_point last_decrease_;
  uint64_t increases_ = 0;
  uint64_t decreases_ = 0;
};

/// Knobs for the whole overload-control subsystem (ServeOptions::overload).
struct OverloadOptions {
  AdaptiveLimiterOptions limiter;
  /// Deadline-aware queue discipline: at dequeue, a request whose
  /// remaining deadline budget cannot cover the current service-time
  /// estimate is dropped (typed DeadlineExceeded) instead of burning a
  /// worker on an answer nobody will wait for. Requests without a
  /// deadline are never dropped, and the estimator must warm up first,
  /// so the default-on switch changes nothing for deadline-free traffic.
  bool enable_queue_discipline = true;
  /// A request is hopeless when remaining < estimate x hopeless_factor.
  /// 1.0 drops only requests that the estimate says cannot finish.
  double hopeless_factor = 1.0;
  /// Service-time samples required before the hopeless check may fire.
  uint64_t service_warmup_samples = 8;
  /// EWMA weight for the service-time estimate.
  double service_ewma_alpha = 0.2;
  /// Brownout mode: under sustained overload, a shed request whose
  /// answer is still in the AnswerCache (any epoch) is served from it
  /// with `stale = true` instead of erroring.
  bool enable_brownout = false;
  /// Sustained overload = at least brownout_shed_threshold sheds within
  /// one brownout_window. Brownout stays active while consecutive
  /// windows keep meeting the threshold.
  std::chrono::nanoseconds brownout_window = std::chrono::milliseconds(100);
  uint64_t brownout_shed_threshold = 8;
};

/// Bundles the overload-control state a QueryServer consults on its hot
/// path: the adaptive limiter, the service-time estimator behind the
/// queue discipline, and the brownout window. Thread safe.
class OverloadController {
 public:
  using ClockFn = AdaptiveLimiter::ClockFn;

  explicit OverloadController(OverloadOptions options, ClockFn clock = {});

  const OverloadOptions& options() const { return options_; }
  AdaptiveLimiter& limiter() { return limiter_; }
  const AdaptiveLimiter& limiter() const { return limiter_; }

  /// Admission gate: takes a limiter slot, or records the shed (feeding
  /// the brownout window) and returns false. True when the limiter is
  /// disabled.
  bool Admit(Priority p);
  void Release() { limiter_.Release(); }

  /// Queue-latency observation at dequeue (AIMD input).
  void OnDequeue(std::chrono::nanoseconds queued) {
    limiter_.OnQueueLatency(queued);
  }

  /// One completed answer computation's wall time (service-time EWMA).
  void RecordServiceTime(std::chrono::nanoseconds dt);

  /// True when `d`'s remaining budget cannot cover the estimated service
  /// time (after warmup; never for infinite deadlines).
  bool Hopeless(const Deadline& d) const;

  /// Records a shed/drop event outside Admit (hopeless drop,
  /// displacement) into the brownout window.
  void RecordShed();

  /// True while the current (or immediately preceding) brownout window
  /// met the shed threshold — the "sustained overload" signal gating
  /// stale cache serving. Always false when brownout is disabled.
  bool brownout_active() const;

  /// Coarse pressure signal for background work (the Republisher defers
  /// on it): the limiter is saturated or brownout is active.
  bool overloaded() const;

  std::chrono::nanoseconds service_estimate() const;
  uint64_t service_samples() const;

 private:
  /// Rolls the brownout window forward; callers hold brownout_mu_.
  void RollWindowLocked(std::chrono::steady_clock::time_point now) const;

  OverloadOptions options_;
  ClockFn clock_;
  AdaptiveLimiter limiter_;

  mutable std::mutex service_mu_;
  double service_ewma_ns_ = 0;
  uint64_t service_samples_ = 0;

  mutable std::mutex brownout_mu_;
  mutable std::chrono::steady_clock::time_point window_start_;
  mutable uint64_t sheds_in_window_ = 0;
  mutable bool brownout_ = false;
};

/// Strict-priority bounded-queue discipline: one FIFO lane per class,
/// popped highest class first, with displacement eviction so a full queue
/// prefers dropping the youngest lowest-class request over refusing a
/// higher-class arrival. Not thread safe — the QueryServer operates it
/// under its queue mutex; kept generic so the discipline is unit-testable
/// with plain values.
template <typename T>
class PriorityTaskQueue {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void Push(Priority p, T item) {
    lanes_[static_cast<size_t>(p)].push_back(std::move(item));
    ++size_;
  }

  /// Pops the oldest item of the highest-priority non-empty lane.
  /// Undefined on an empty queue (callers check empty() first, exactly
  /// like std::deque::front). `popped` receives the item's class.
  T Pop(Priority* popped = nullptr) {
    for (size_t i = 0; i < kNumPriorities; ++i) {
      if (lanes_[i].empty()) continue;
      T item = std::move(lanes_[i].front());
      lanes_[i].pop_front();
      --size_;
      if (popped != nullptr) *popped = static_cast<Priority>(i);
      return item;
    }
    // Unreachable when callers respect the empty() contract.
    return T{};
  }

  /// Removes and returns the youngest item of the lowest class strictly
  /// below `p` (shed-lowest-first, and within the class the request that
  /// has waited least loses). nullopt when nothing outranks — an arrival
  /// never displaces its own class or better.
  std::optional<T> DisplaceLowerThan(Priority p) {
    for (size_t i = kNumPriorities; i-- > static_cast<size_t>(p) + 1;) {
      if (lanes_[i].empty()) continue;
      T item = std::move(lanes_[i].back());
      lanes_[i].pop_back();
      --size_;
      return item;
    }
    return std::nullopt;
  }

  size_t lane_size(Priority p) const {
    return lanes_[static_cast<size_t>(p)].size();
  }

 private:
  std::array<std::deque<T>, kNumPriorities> lanes_;
  size_t size_ = 0;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_OVERLOAD_H_
