#include "serve/synopsis_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/fault_injection.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "view/view_matcher.h"

namespace viewrewrite {

namespace {

// ---- Binary encoding helpers (little-endian, doubles as bit patterns). ----

constexpr char kMagic[4] = {'V', 'R', 'S', 'Y'};
constexpr uint16_t kFormatVersion = 1;

constexpr uint32_t kSectionHeader = 'H';
constexpr uint32_t kSectionGeneration = 'G';
constexpr uint32_t kSectionView = 'V';
constexpr uint32_t kSectionEnd = 'E';

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutDoubles(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double d : v) PutDouble(out, d);
}

/// Bounds-checked reader over a byte span. Every overrun is a Corruption
/// status, never undefined behavior — corrupted bundles must fail cleanly.
/// When a LimitTracker is attached, every materialized string/array is
/// charged against its arena budget before allocation.
class Reader {
 public:
  Reader(const char* data, size_t size, LimitTracker* tracker = nullptr)
      : data_(data), size_(size), tracker_(tracker) {}

  size_t remaining() const { return size_ - pos_; }
  LimitTracker* tracker() const { return tracker_; }

  Status Need(size_t n) {
    if (size_ - pos_ < n) {
      return Status::Corruption("truncated synopsis bundle (wanted " +
                                std::to_string(n) + " bytes, " +
                                std::to_string(size_ - pos_) + " left)");
    }
    return Status::OK();
  }

  /// Validates that `count` elements of `elem_size` serialized bytes each
  /// can still be present, without the multiply ever overflowing — the
  /// gate that makes a subsequent reserve(count) safe.
  Status NeedElements(uint64_t count, size_t elem_size) {
    if (count > remaining() / elem_size) {
      return Status::Corruption(
          "synopsis bundle declares " + std::to_string(count) +
          " elements but only " + std::to_string(remaining()) +
          " bytes remain");
    }
    return Status::OK();
  }

  /// Charges `n` bytes of materialization against the arena budget (no-op
  /// without a tracker).
  Status Charge(size_t n, const char* what) {
    if (tracker_ == nullptr) return Status::OK();
    return tracker_->AddBytes(n, what);
  }

  Result<uint8_t> U8() {
    VR_RETURN_NOT_OK(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint16_t> U16() {
    VR_RETURN_NOT_OK(Need(2));
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  Result<uint32_t> U32() {
    VR_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  Result<uint64_t> U64() {
    VR_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  Result<int64_t> I64() {
    VR_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }

  Result<double> Double() {
    VR_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> String() {
    VR_ASSIGN_OR_RETURN(uint64_t n, U64());
    VR_RETURN_NOT_OK(Need(n));
    VR_RETURN_NOT_OK(Charge(n, "bundle string"));
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  Result<std::vector<double>> Doubles() {
    VR_ASSIGN_OR_RETURN(uint64_t n, U64());
    // NeedElements instead of Need(n * 8): the multiply would wrap for
    // n >= 2^61, letting a hostile count through the bounds check.
    VR_RETURN_NOT_OK(NeedElements(n, 8));
    VR_RETURN_NOT_OK(Charge(n * sizeof(double), "bundle double array"));
    std::vector<double> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      VR_ASSIGN_OR_RETURN(double d, Double());
      v.push_back(d);
    }
    return v;
  }

  Result<std::string_view> Bytes(size_t n) {
    VR_RETURN_NOT_OK(Need(n));
    std::string_view s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  const char* data_;
  size_t size_;
  LimitTracker* tracker_;
  size_t pos_ = 0;
};

// ---- Values, domains, expressions. ----------------------------------------

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_int()) {
    PutU8(out, 1);
    PutI64(out, v.AsInt());
  } else if (v.is_double()) {
    PutU8(out, 2);
    PutDouble(out, v.AsDoubleExact());
  } else {
    PutU8(out, 3);
    PutString(out, v.AsString());
  }
}

Result<Value> ReadValue(Reader* r) {
  VR_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      VR_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Int(v);
    }
    case 2: {
      VR_ASSIGN_OR_RETURN(double v, r->Double());
      return Value::Double(v);
    }
    case 3: {
      VR_ASSIGN_OR_RETURN(std::string v, r->String());
      return Value::String(std::move(v));
    }
    default:
      return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
}

void PutDomain(std::string* out, const ColumnDomain& d) {
  PutU8(out, static_cast<uint8_t>(d.kind));
  switch (d.kind) {
    case ColumnDomain::Kind::kNone:
      break;
    case ColumnDomain::Kind::kCategorical:
      PutU64(out, d.categories.size());
      for (const Value& v : d.categories) PutValue(out, v);
      break;
    case ColumnDomain::Kind::kIntBuckets:
      PutI64(out, d.lo);
      PutI64(out, d.hi);
      PutI64(out, d.buckets);
      break;
  }
}

Result<ColumnDomain> ReadDomain(Reader* r) {
  VR_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  switch (kind) {
    case static_cast<uint8_t>(ColumnDomain::Kind::kNone):
      return ColumnDomain::None();
    case static_cast<uint8_t>(ColumnDomain::Kind::kCategorical): {
      VR_ASSIGN_OR_RETURN(uint64_t n, r->U64());
      // Each serialized value occupies at least its 1-byte tag, so a
      // count beyond the remaining bytes is corrupt — checked before the
      // reserve so the declared count can never drive the allocation.
      VR_RETURN_NOT_OK(r->NeedElements(n, 1));
      VR_RETURN_NOT_OK(r->Charge(n * sizeof(Value), "bundle domain"));
      std::vector<Value> values;
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        VR_ASSIGN_OR_RETURN(Value v, ReadValue(r));
        values.push_back(std::move(v));
      }
      return ColumnDomain::Categorical(std::move(values));
    }
    case static_cast<uint8_t>(ColumnDomain::Kind::kIntBuckets): {
      VR_ASSIGN_OR_RETURN(int64_t lo, r->I64());
      VR_ASSIGN_OR_RETURN(int64_t hi, r->I64());
      VR_ASSIGN_OR_RETURN(int64_t buckets, r->I64());
      if (buckets <= 0 || hi < lo) {
        return Status::Corruption("invalid bucket domain in bundle");
      }
      return ColumnDomain::IntBuckets(lo, hi, buckets);
    }
    default:
      return Status::Corruption("unknown domain kind " + std::to_string(kind));
  }
}

/// Expressions round-trip as canonical SQL. The parser's only entry point
/// is a full SELECT, so the expression travels as a one-item projection
/// over a placeholder relation.
std::string ExprToSql(const Expr& e) {
  return "SELECT " + ToSql(e) + " FROM vr_expr_holder";
}

Result<ExprPtr> ExprFromSql(const std::string& sql) {
  Result<SelectStmtPtr> stmt = ParseSelect(sql);
  if (!stmt.ok()) {
    return Status::Corruption("unparseable expression in bundle: " +
                              stmt.status().message());
  }
  if (stmt.value()->items.size() != 1 || !stmt.value()->items[0].expr) {
    return Status::Corruption("malformed expression record in bundle");
  }
  return std::move(stmt.value()->items[0].expr);
}

/// The view's FROM tree + baked WHERE travel the same way: rendered as a
/// canonical `SELECT count(*) FROM ... [WHERE ...]` and re-parsed into a
/// from-template on load.
std::string FromTemplateToSql(const SelectStmt& tmpl) {
  std::string sql = "SELECT count(*) FROM ";
  bool first = true;
  for (const auto& f : tmpl.from) {
    if (!first) sql += " , ";
    sql += ToSql(*f);
    first = false;
  }
  if (tmpl.where) sql += " WHERE " + ToSql(*tmpl.where);
  return sql;
}

Result<SelectStmtPtr> FromTemplateFromSql(const std::string& sql) {
  Result<SelectStmtPtr> stmt = ParseSelect(sql);
  if (!stmt.ok()) {
    return Status::Corruption("unparseable view template in bundle: " +
                              stmt.status().message());
  }
  SelectStmtPtr tmpl = std::move(stmt).value();
  tmpl->items.clear();  // the template carries only FROM + baked WHERE
  return tmpl;
}

// ---- View + synopsis sections. --------------------------------------------

void PutBuildStats(std::string* out, const Synopsis::BuildStats& s) {
  PutI64(out, s.tau);
  PutDouble(out, s.dls);
  PutU64(out, s.materialized_rows);
  PutU64(out, s.truncated_rows);
  PutU64(out, s.cells);
  PutDouble(out, s.epsilon);
}

Result<Synopsis::BuildStats> ReadBuildStats(Reader* r) {
  Synopsis::BuildStats s;
  VR_ASSIGN_OR_RETURN(s.tau, r->I64());
  VR_ASSIGN_OR_RETURN(s.dls, r->Double());
  VR_ASSIGN_OR_RETURN(uint64_t mat, r->U64());
  VR_ASSIGN_OR_RETURN(uint64_t trunc, r->U64());
  VR_ASSIGN_OR_RETURN(uint64_t cells, r->U64());
  VR_ASSIGN_OR_RETURN(s.epsilon, r->Double());
  s.materialized_rows = mat;
  s.truncated_rows = trunc;
  s.cells = cells;
  return s;
}

void PutMeasureArrays(std::string* out,
                      const std::map<std::string, std::vector<double>>& m) {
  PutU32(out, static_cast<uint32_t>(m.size()));
  for (const auto& [key, cells] : m) {
    PutString(out, key);
    PutDoubles(out, cells);
  }
}

Result<std::map<std::string, std::vector<double>>> ReadMeasureArrays(
    Reader* r) {
  VR_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  std::map<std::string, std::vector<double>> out;
  for (uint32_t i = 0; i < n; ++i) {
    VR_ASSIGN_OR_RETURN(std::string key, r->String());
    VR_ASSIGN_OR_RETURN(std::vector<double> cells, r->Doubles());
    out.emplace(std::move(key), std::move(cells));
  }
  return out;
}

void PutViewSection(std::string* out, const ViewDef& view,
                    const SynopsisParts& parts) {
  PutString(out, view.signature());
  PutString(out, FromTemplateToSql(view.from_template()));

  PutU32(out, static_cast<uint32_t>(view.attributes().size()));
  for (const ViewAttribute& a : view.attributes()) {
    PutString(out, a.table);
    PutString(out, a.column);
    PutDomain(out, a.domain);
  }

  PutU32(out, static_cast<uint32_t>(view.measures().size()));
  for (const ViewMeasure& m : view.measures()) {
    PutU8(out, static_cast<uint8_t>(m.kind));
    PutString(out, m.key);
    PutDouble(out, m.value_bound);
    PutU8(out, m.expr ? 1 : 0);
    if (m.expr) PutString(out, ExprToSql(*m.expr));
  }

  PutU32(out, static_cast<uint32_t>(parts.dim_sizes.size()));
  for (int64_t d : parts.dim_sizes) PutI64(out, d);
  PutU64(out, parts.total_cells);
  PutDouble(out, parts.count_noise_scale);
  PutBuildStats(out, parts.stats);
  PutMeasureArrays(out, parts.noisy);
  PutMeasureArrays(out, parts.exact);

  PutU8(out, parts.hier_count.has_value() ? 1 : 0);
  if (parts.hier_count.has_value()) {
    const HierarchicalHistogram& h = *parts.hier_count;
    PutI64(out, h.num_cells());
    PutI64(out, h.height());
    PutU32(out, static_cast<uint32_t>(h.tree().size()));
    for (const std::vector<double>& level : h.tree()) {
      PutDoubles(out, level);
    }
  }
}

struct LoadedView {
  std::unique_ptr<ViewDef> view;
  SynopsisParts parts;
};

Result<LoadedView> ReadViewSection(Reader* r) {
  LoadedView out;
  VR_ASSIGN_OR_RETURN(std::string signature, r->String());
  VR_ASSIGN_OR_RETURN(std::string template_sql, r->String());
  VR_ASSIGN_OR_RETURN(SelectStmtPtr tmpl, FromTemplateFromSql(template_sql));
  out.view = std::make_unique<ViewDef>(signature, std::move(tmpl));

  VR_ASSIGN_OR_RETURN(uint32_t n_attrs, r->U32());
  for (uint32_t i = 0; i < n_attrs; ++i) {
    ViewAttribute a;
    VR_ASSIGN_OR_RETURN(a.table, r->String());
    VR_ASSIGN_OR_RETURN(a.column, r->String());
    VR_ASSIGN_OR_RETURN(a.domain, ReadDomain(r));
    out.view->AddAttribute(std::move(a));
  }

  VR_ASSIGN_OR_RETURN(uint32_t n_measures, r->U32());
  for (uint32_t i = 0; i < n_measures; ++i) {
    ViewMeasure m;
    VR_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
    if (kind > static_cast<uint8_t>(ViewMeasure::Kind::kAvg)) {
      return Status::Corruption("unknown measure kind " + std::to_string(kind));
    }
    m.kind = static_cast<ViewMeasure::Kind>(kind);
    VR_ASSIGN_OR_RETURN(m.key, r->String());
    VR_ASSIGN_OR_RETURN(m.value_bound, r->Double());
    VR_ASSIGN_OR_RETURN(uint8_t has_expr, r->U8());
    if (has_expr) {
      VR_ASSIGN_OR_RETURN(std::string expr_sql, r->String());
      VR_ASSIGN_OR_RETURN(m.expr, ExprFromSql(expr_sql));
    }
    out.view->AddMeasure(std::move(m));
  }

  VR_ASSIGN_OR_RETURN(uint32_t n_dims, r->U32());
  for (uint32_t i = 0; i < n_dims; ++i) {
    VR_ASSIGN_OR_RETURN(int64_t d, r->I64());
    out.parts.dim_sizes.push_back(d);
  }
  VR_ASSIGN_OR_RETURN(uint64_t total_cells, r->U64());
  out.parts.total_cells = total_cells;
  VR_ASSIGN_OR_RETURN(out.parts.count_noise_scale, r->Double());
  VR_ASSIGN_OR_RETURN(out.parts.stats, ReadBuildStats(r));
  VR_ASSIGN_OR_RETURN(out.parts.noisy, ReadMeasureArrays(r));
  VR_ASSIGN_OR_RETURN(out.parts.exact, ReadMeasureArrays(r));

  VR_ASSIGN_OR_RETURN(uint8_t has_hier, r->U8());
  if (has_hier) {
    VR_ASSIGN_OR_RETURN(int64_t n, r->I64());
    VR_ASSIGN_OR_RETURN(int64_t height, r->I64());
    VR_ASSIGN_OR_RETURN(uint32_t n_levels, r->U32());
    // Each level costs at least its 8-byte length prefix.
    VR_RETURN_NOT_OK(r->NeedElements(n_levels, 8));
    VR_RETURN_NOT_OK(
        r->Charge(n_levels * sizeof(std::vector<double>), "bundle hier tree"));
    std::vector<std::vector<double>> tree;
    tree.reserve(n_levels);
    for (uint32_t i = 0; i < n_levels; ++i) {
      VR_ASSIGN_OR_RETURN(std::vector<double> level, r->Doubles());
      tree.push_back(std::move(level));
    }
    VR_ASSIGN_OR_RETURN(out.parts.hier_count,
                        HierarchicalHistogram::FromParts(n, height,
                                                         std::move(tree)));
  }
  return out;
}

void AppendSection(std::string* out, uint32_t tag, const std::string& payload) {
  PutU32(out, tag);
  PutU64(out, payload.size());
  out->append(payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
}

}  // namespace

// ---- SynopsisStore. --------------------------------------------------------

Result<SynopsisStore> SynopsisStore::FromManager(const ViewManager& manager,
                                                 const Schema& schema) {
  return FromManager(manager, schema, GenerationInfo());
}

Result<SynopsisStore> SynopsisStore::FromManager(const ViewManager& manager,
                                                 const Schema& schema,
                                                 GenerationInfo generation) {
  if (manager.NumPublished() == 0) {
    return Status::InvalidArgument(
        "nothing to snapshot: the manager has no published synopses "
        "(call Publish first)");
  }
  SynopsisStore store;
  store.schema_fingerprint_ = SchemaFingerprint(schema);
  store.generation_info_ = std::move(generation);
  if (const BudgetAccountant* acct = manager.accountant()) {
    store.ledger_.total_epsilon = acct->total();
    store.ledger_.spent_epsilon = acct->spent();
    store.ledger_.entries = static_cast<uint32_t>(acct->ledger().size());
    store.ledger_.poisoned = acct->poisoned();
    for (const auto& e : acct->ledger()) {
      if (e.refund) ++store.ledger_.refunds;
    }
  }
  for (const auto& view : manager.views()) {
    const Synopsis* syn = nullptr;
    auto it = manager.synopses().find(view->signature());
    if (it != manager.synopses().end()) syn = &it->second;
    if (syn == nullptr) continue;  // failed/unpublished view: nothing to serve
    std::unique_ptr<ViewDef> copy = view->Clone();
    VR_ASSIGN_OR_RETURN(Synopsis rebuilt,
                        Synopsis::FromParts(copy.get(), syn->ToParts()));
    const std::string& sig = copy->signature();
    ViewLifecycle cycle;
    auto gen_it = manager.view_data_generation().find(sig);
    if (gen_it != manager.view_data_generation().end()) {
      cycle.data_generation = gen_it->second;
    }
    auto out_it = manager.view_outdated_since().find(sig);
    if (out_it != manager.view_outdated_since().end()) {
      cycle.outdated_since = out_it->second;
    }
    store.lifecycle_.emplace(sig, cycle);
    store.view_index_[sig] = store.views_.size();
    store.synopses_.emplace(sig, std::move(rebuilt));
    store.views_.push_back(std::move(copy));
  }
  return store;
}

Status SynopsisStore::Save(const std::string& path) const {
  std::string blob;
  blob.append(kMagic, sizeof(kMagic));
  PutU16(&blob, kFormatVersion);
  PutU16(&blob, 0);  // reserved

  std::string header;
  PutU64(&header, schema_fingerprint_);
  PutU32(&header, static_cast<uint32_t>(views_.size()));
  PutDouble(&header, ledger_.total_epsilon);
  PutDouble(&header, ledger_.spent_epsilon);
  PutU32(&header, ledger_.entries);
  PutU32(&header, ledger_.refunds);
  // Optional trailing byte (absent in pre-flag bundles): accountant
  // poisoned at snapshot time.
  PutU8(&header, ledger_.poisoned ? 1 : 0);
  AppendSection(&blob, kSectionHeader, header);

  std::string gen;
  PutU64(&gen, generation_info_.generation);
  PutU64(&gen, generation_info_.parent_epoch);
  PutDouble(&gen, generation_info_.generation_epsilon);
  PutU32(&gen, static_cast<uint32_t>(generation_info_.changed_relations.size()));
  for (const std::string& rel : generation_info_.changed_relations) {
    PutString(&gen, rel);
  }
  PutU32(&gen, static_cast<uint32_t>(lifecycle_.size()));
  for (const auto& [sig, cycle] : lifecycle_) {
    PutString(&gen, sig);
    PutU64(&gen, cycle.data_generation);
    PutU64(&gen, cycle.outdated_since);
  }
  AppendSection(&blob, kSectionGeneration, gen);

  for (const auto& view : views_) {
    auto it = synopses_.find(view->signature());
    if (it == synopses_.end()) {
      return Status::Internal("store view without synopsis: " +
                              view->signature());
    }
    std::string payload;
    PutViewSection(&payload, *view, it->second.ToParts());
    AppendSection(&blob, kSectionView, payload);
  }
  AppendSection(&blob, kSectionEnd, std::string());

  // Atomic durable publish: write + fsync the temp file, then rename over
  // the target, then fsync the parent directory. A crash at any point
  // leaves either the previous bundle intact or the new one fully
  // durable — readers never observe a torn file. The temp name is unique
  // per process and per save so a concurrent or crashed earlier save can
  // never be renamed into place by this one.
  const std::string tmp = UniqueTempName(path);
  VR_RETURN_NOT_OK(WriteFileDurably(tmp, blob));
  // A kill here (the serve.save fault point simulates it) leaves a
  // complete, loadable temp file and the target untouched.
  VR_FAULT_POINT(faults::kServeSave);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::ExecutionError("cannot rename '" + tmp + "' to '" + path +
                                  "'");
  }
  VR_RETURN_NOT_OK(SyncParentDir(path));
  SweepOrphanTemps(path);
  return Status::OK();
}

Result<SynopsisStore> SynopsisStore::Load(const std::string& path,
                                          const Schema& schema,
                                          const ResourceLimits& limits) {
  VR_FAULT_POINT(faults::kServeLoad);
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::NotFound("cannot open synopsis bundle '" + path + "'");
    }
    // Refuse oversized files before buffering: the file itself is the
    // first allocation an attacker controls.
    in.seekg(0, std::ios::end);
    const std::streamoff file_size = in.tellg();
    if (file_size < 0) {
      return Status::ExecutionError("cannot stat synopsis bundle '" + path +
                                    "'");
    }
    if (static_cast<uint64_t>(file_size) > limits.max_arena_bytes) {
      return Status::ResourceExhausted(
          "synopsis bundle '" + path + "' is " + std::to_string(file_size) +
          " bytes, exceeding the load budget (" +
          std::to_string(limits.max_arena_bytes) + ")");
    }
    in.seekg(0, std::ios::beg);
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    blob = std::move(buf);
  }

  LimitTracker tracker(limits);
  Reader r(blob.data(), blob.size(), &tracker);
  VR_ASSIGN_OR_RETURN(std::string_view magic, r.Bytes(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("'" + path + "' is not a synopsis bundle "
                              "(bad magic)");
  }
  VR_ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kFormatVersion) {
    return Status::Unsupported("synopsis bundle format version " +
                               std::to_string(version) +
                               " (this build reads version " +
                               std::to_string(kFormatVersion) + ")");
  }
  VR_ASSIGN_OR_RETURN(uint16_t reserved, r.U16());
  (void)reserved;

  SynopsisStore store;
  bool saw_header = false;
  bool saw_generation = false;
  bool saw_end = false;
  uint32_t declared_views = 0;
  while (!saw_end) {
    VR_ASSIGN_OR_RETURN(uint32_t tag, r.U32());
    VR_ASSIGN_OR_RETURN(uint64_t length, r.U64());
    VR_ASSIGN_OR_RETURN(std::string_view payload, r.Bytes(length));
    VR_ASSIGN_OR_RETURN(uint32_t stored_crc, r.U32());
    const uint32_t actual_crc = Crc32(payload.data(), payload.size());
    if (actual_crc != stored_crc) {
      return Status::Corruption(
          "checksum mismatch in synopsis bundle section '" +
          std::string(1, static_cast<char>(tag)) + "'");
    }
    Reader section(payload.data(), payload.size(), &tracker);
    switch (tag) {
      case kSectionHeader: {
        if (saw_header) {
          return Status::Corruption("duplicate header section in bundle");
        }
        saw_header = true;
        VR_ASSIGN_OR_RETURN(store.schema_fingerprint_, section.U64());
        VR_ASSIGN_OR_RETURN(declared_views, section.U32());
        VR_ASSIGN_OR_RETURN(store.ledger_.total_epsilon, section.Double());
        VR_ASSIGN_OR_RETURN(store.ledger_.spent_epsilon, section.Double());
        VR_ASSIGN_OR_RETURN(store.ledger_.entries, section.U32());
        VR_ASSIGN_OR_RETURN(store.ledger_.refunds, section.U32());
        // Optional trailing poisoned flag: absent in pre-flag bundles
        // (reads as false), ignored by pre-flag builds when present.
        if (section.remaining() >= 1) {
          VR_ASSIGN_OR_RETURN(uint8_t poisoned, section.U8());
          store.ledger_.poisoned = poisoned != 0;
        }
        const uint64_t expected = SchemaFingerprint(schema);
        if (store.schema_fingerprint_ != expected) {
          return Status::InvalidArgument(
              "schema drift: bundle was built against a different schema "
              "(fingerprint " + std::to_string(store.schema_fingerprint_) +
              ", current schema " + std::to_string(expected) + ")");
        }
        break;
      }
      case kSectionGeneration: {
        // Optional (pre-lifecycle bundles lack it and load as generation
        // 0), but at most one — two generation stamps would make the
        // bundle's provenance ambiguous.
        if (!saw_header) {
          return Status::Corruption(
              "generation section before header in bundle");
        }
        if (saw_generation) {
          return Status::Corruption("duplicate generation section in bundle");
        }
        saw_generation = true;
        GenerationInfo& info = store.generation_info_;
        VR_ASSIGN_OR_RETURN(info.generation, section.U64());
        VR_ASSIGN_OR_RETURN(info.parent_epoch, section.U64());
        VR_ASSIGN_OR_RETURN(info.generation_epsilon, section.Double());
        VR_ASSIGN_OR_RETURN(uint32_t n_changed, section.U32());
        VR_RETURN_NOT_OK(section.NeedElements(n_changed, 8));
        for (uint32_t i = 0; i < n_changed; ++i) {
          VR_ASSIGN_OR_RETURN(std::string rel, section.String());
          info.changed_relations.push_back(std::move(rel));
        }
        VR_ASSIGN_OR_RETURN(uint32_t n_cycles, section.U32());
        // Each lifecycle record costs at least its signature length prefix
        // plus two u64 stamps.
        VR_RETURN_NOT_OK(section.NeedElements(n_cycles, 24));
        for (uint32_t i = 0; i < n_cycles; ++i) {
          VR_ASSIGN_OR_RETURN(std::string sig, section.String());
          ViewLifecycle cycle;
          VR_ASSIGN_OR_RETURN(cycle.data_generation, section.U64());
          VR_ASSIGN_OR_RETURN(cycle.outdated_since, section.U64());
          if (!store.lifecycle_.emplace(std::move(sig), cycle).second) {
            return Status::Corruption(
                "duplicate view lifecycle record in bundle");
          }
        }
        if (section.remaining() != 0) {
          return Status::Corruption("trailing bytes in generation section");
        }
        break;
      }
      case kSectionView: {
        if (!saw_header) {
          return Status::Corruption("view section before header in bundle");
        }
        VR_ASSIGN_OR_RETURN(LoadedView loaded, ReadViewSection(&section));
        if (section.remaining() != 0) {
          return Status::Corruption("trailing bytes in view section");
        }
        const std::string& sig = loaded.view->signature();
        if (store.view_index_.count(sig)) {
          return Status::Corruption("duplicate view '" + sig + "' in bundle");
        }
        VR_ASSIGN_OR_RETURN(
            Synopsis syn,
            Synopsis::FromParts(loaded.view.get(), std::move(loaded.parts)));
        store.view_index_[sig] = store.views_.size();
        store.synopses_.emplace(sig, std::move(syn));
        store.views_.push_back(std::move(loaded.view));
        break;
      }
      case kSectionEnd:
        saw_end = true;
        break;
      default:
        return Status::Corruption("unknown section tag " + std::to_string(tag) +
                                  " in synopsis bundle");
    }
  }
  if (!saw_header) {
    return Status::Corruption("synopsis bundle has no header section");
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing garbage after end section");
  }
  if (store.views_.size() != declared_views) {
    return Status::Corruption(
        "bundle declares " + std::to_string(declared_views) + " views but " +
        std::to_string(store.views_.size()) + " were present");
  }
  // A process SIGKILLed between its temp write and rename never gets to
  // the post-Save sweep, so orphans from previous lives are reaped on the
  // next successful load instead. Only temps whose owning pid is dead are
  // touched: a live Republisher in another process (or this one) may have
  // a save in flight, and deleting its temp would fail that save.
  SweepOrphanTemps(path, /*only_dead_owners=*/true);
  return store;
}

const Synopsis* SynopsisStore::Find(const std::string& signature) const {
  auto it = synopses_.find(signature);
  return it == synopses_.end() ? nullptr : &it->second;
}

Result<BoundQuery> SynopsisStore::BindScalar(const SelectStmt& query,
                                             const BakePredicate& bake) const {
  VR_ASSIGN_OR_RETURN(ScalarQueryShape shape, AnalyzeScalarQuery(query, bake));
  auto it = view_index_.find(shape.signature);
  if (it == view_index_.end()) {
    return Status::NotFound(
        "no stored view matches the query's join structure (signature: " +
        shape.signature + ")");
  }
  VR_RETURN_NOT_OK(MatchShapeToView(shape, *views_[it->second]));
  BoundQuery bound;
  bound.view_signature = shape.signature;
  bound.cell_query = MakeCellQuery(query, shape);
  return bound;
}

Result<BoundQuery> SynopsisStore::BindGrouped(const SelectStmt& query,
                                              const BakePredicate& bake) const {
  VR_ASSIGN_OR_RETURN(GroupedQueryShape shape,
                      AnalyzeGroupedQuery(query, bake));
  auto it = view_index_.find(shape.base.signature);
  if (it == view_index_.end()) {
    return Status::NotFound(
        "no stored view matches the grouped query's join structure "
        "(signature: " +
        shape.base.signature + ")");
  }
  // MatchShapeToView checks WHERE attributes and measures; the group
  // columns were folded into shape.base.attributes by the analyzer, so
  // one check covers both.
  VR_RETURN_NOT_OK(MatchShapeToView(shape.base, *views_[it->second]));
  BoundQuery bound;
  bound.view_signature = shape.base.signature;
  bound.cell_query = query.Clone();
  return bound;
}

Result<BoundRewrittenQuery> SynopsisStore::Bind(const RewrittenQuery& rq,
                                                const BakePredicate& bake) const {
  BoundRewrittenQuery out;
  for (const ChainLink& link : rq.chain) {
    VR_ASSIGN_OR_RETURN(BoundQuery bq, BindScalar(*link.query, bake));
    out.chain.push_back({link.var, std::move(bq)});
  }
  for (const auto& term : rq.combination.terms) {
    Result<BoundQuery> bq = term.query->group_by.empty()
                                ? BindScalar(*term.query, bake)
                                : BindGrouped(*term.query, bake);
    VR_RETURN_NOT_OK(bq.status());
    out.terms.push_back({term.coeff, std::move(*bq)});
  }
  return out;
}

Result<double> SynopsisStore::AnswerScalar(const BoundQuery& q,
                                           const ParamMap& params) const {
  const Synopsis* syn = Find(q.view_signature);
  if (syn == nullptr) {
    return Status::NotFound("no stored synopsis for view '" +
                            q.view_signature + "'");
  }
  return syn->AnswerScalar(*q.cell_query, params);
}

Result<aggregate::GroupedData> SynopsisStore::AnswerGrouped(
    const BoundQuery& q, const ParamMap& params) const {
  const Synopsis* syn = Find(q.view_signature);
  if (syn == nullptr) {
    return Status::NotFound("no stored synopsis for view '" +
                            q.view_signature + "'");
  }
  return syn->AnswerGroupedData(*q.cell_query, params);
}

Result<double> SynopsisStore::Answer(const BoundRewrittenQuery& q,
                                     const ParamMap& params) const {
  // Same evaluation order as ViewManager::Answer: chain links bind their
  // $var parameters first, then the signed combination totals.
  ParamMap bound_params = params;
  for (const auto& link : q.chain) {
    VR_ASSIGN_OR_RETURN(double v, AnswerScalar(link.query, bound_params));
    bound_params[link.var] = Value::Double(v);
  }
  double total = 0;
  for (const auto& term : q.terms) {
    VR_ASSIGN_OR_RETURN(double v, AnswerScalar(term.query, bound_params));
    total += term.coeff * v;
  }
  return total;
}

}  // namespace viewrewrite
