#ifndef VIEWREWRITE_SERVE_ANSWER_CACHE_H_
#define VIEWREWRITE_SERVE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "aggregate/grouped_result.h"

namespace viewrewrite {

/// Per-stripe counter snapshot (see AnswerCache::StripeStatsSnapshot).
struct CacheStripeStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Sharded LRU cache of served answers — scalar values and grouped row
/// sets — keyed by canonical cache key (see rewrite/canonical.h).
/// Published answers are deterministic — the noise was drawn once at
/// publication — so a cached value is exactly the value a full
/// re-evaluation would produce; caching changes latency, never results.
///
/// Every entry is tagged with the store **epoch** it was computed under
/// (QueryServer bumps the epoch on each hot reload). An entry whose epoch
/// matches the server's current epoch is fresh; an older entry is a
/// *stale* answer from a previous bundle, kept around as a degradation
/// fallback: when the live answer path is failing, serving yesterday's
/// answer flagged stale beats serving an error.
///
/// Thread safety: fully thread safe. Keys hash to one of `shards`
/// independent LRU stripes, each behind its own mutex, so concurrent
/// workers rarely contend unless they touch the same stripe. Hit, miss
/// and eviction counters live **per stripe** on the stripe's own cache
/// line (there is no global counter pair for every lookup to bounce on);
/// the totals exposed by hits()/misses()/evictions() and the per-stripe
/// breakdown in StripeStatsSnapshot() are summed at read time.
class AnswerCache {
 public:
  struct Entry {
    double value = 0;
    uint64_t epoch = 0;
    /// The answer touched a view flagged outdated by the staleness policy
    /// (its base relation changed in a generation whose rebuild failed);
    /// carried through so cached answers stay flagged exactly like
    /// recomputed ones.
    bool outdated = false;
    /// Grouped answers: the immutable row set (post-noise, suppression
    /// already applied). Null for scalar answers. Shared, never copied —
    /// every cache hit hands out the same rows the flight produced.
    std::shared_ptr<const aggregate::GroupedData> rows;
  };

  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry). `shards` is clamped to >= 1.
  /// `max_bytes`, when nonzero, additionally caps each shard at
  /// max_bytes / shards of accounted payload (key + entry + row bytes):
  /// grouped row sets are orders of magnitude larger than scalar entries,
  /// so the entry-count budget alone would let them grow memory
  /// unboundedly.
  AnswerCache(size_t capacity, size_t shards, size_t max_bytes = 0);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Returns the cached entry and refreshes its recency, or nullopt.
  /// Counts one hit or one miss. Epoch interpretation is the caller's.
  std::optional<Entry> Get(const std::string& key);

  /// Inserts (or refreshes) `key` with the given epoch tag, evicting the
  /// shard's least recently used entries while the shard is over its
  /// entry or byte budget.
  void Put(const std::string& key, double value, uint64_t epoch = 0,
           bool outdated = false,
           std::shared_ptr<const aggregate::GroupedData> rows = nullptr);

  /// Generation-eviction hook for the synopsis lifecycle: drops every
  /// entry tagged with an epoch older than `min_epoch`, freeing the
  /// stripes' slots for current-generation answers (evicted entries are
  /// counted in evictions()). Returns how many entries were dropped.
  uint64_t EvictOlderThan(uint64_t min_epoch);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t num_stripes() const { return shards_.size(); }
  /// Current resident entries (sums shard sizes; approximate under
  /// concurrent mutation).
  size_t size() const;
  /// Accounted payload bytes resident across all shards (keys + entries +
  /// grouped rows); approximate under concurrent mutation.
  size_t byte_size() const;
  /// Per-stripe counters plus resident entries, for observability and the
  /// stats-sharding tests. Approximate under concurrent mutation, exact
  /// once writers are quiesced.
  std::vector<CacheStripeStats> StripeStatsSnapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Most recently used at the front.
    std::list<std::pair<std::string, Entry>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Entry>>::iterator>
        index;
    // Accounted payload bytes resident in this shard; mutated under `mu`,
    // read lock-free by byte_size(), hence atomic with relaxed ordering.
    std::atomic<size_t> bytes{0};
    // Stripe-local counters: mutated under `mu`, read lock-free by the
    // snapshot methods, hence atomics with relaxed ordering.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
  };

  static size_t EntryBytes(const std::string& key, const Entry& entry);
  /// Evicts from the tail while the shard is over its entry or byte
  /// budget. Caller holds shard.mu.
  void EvictWhileOver(Shard& shard);

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  size_t per_shard_bytes_;  // 0 = no byte budget
  std::vector<Shard> shards_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_ANSWER_CACHE_H_
