#ifndef VIEWREWRITE_SERVE_ANSWER_CACHE_H_
#define VIEWREWRITE_SERVE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace viewrewrite {

/// Sharded LRU cache of scalar answers, keyed by canonical cache key
/// (see rewrite/canonical.h). Published answers are deterministic — the
/// noise was drawn once at publication — so a cached value is exactly
/// the value a full re-evaluation would produce; caching changes latency,
/// never results.
///
/// Every entry is tagged with the store **epoch** it was computed under
/// (QueryServer bumps the epoch on each hot reload). An entry whose epoch
/// matches the server's current epoch is fresh; an older entry is a
/// *stale* answer from a previous bundle, kept around as a degradation
/// fallback: when the live answer path is failing, serving yesterday's
/// answer flagged stale beats serving an error.
///
/// Thread safety: fully thread safe. Keys hash to one of `shards`
/// independent LRU lists, each behind its own mutex, so concurrent
/// workers rarely contend unless they touch the same shard.
class AnswerCache {
 public:
  struct Entry {
    double value = 0;
    uint64_t epoch = 0;
  };

  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry). `shards` is clamped to >= 1.
  AnswerCache(size_t capacity, size_t shards);

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Returns the cached entry and refreshes its recency, or nullopt.
  /// Counts one hit or one miss. Epoch interpretation is the caller's.
  std::optional<Entry> Get(const std::string& key);

  /// Inserts (or refreshes) `key` with the given epoch tag, evicting the
  /// shard's least recently used entry if the shard is at capacity.
  void Put(const std::string& key, double value, uint64_t epoch = 0);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Current resident entries (sums shard sizes; approximate under
  /// concurrent mutation).
  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Most recently used at the front.
    std::list<std::pair<std::string, Entry>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Entry>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_ANSWER_CACHE_H_
