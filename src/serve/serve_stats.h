#ifndef VIEWREWRITE_SERVE_SERVE_STATS_H_
#define VIEWREWRITE_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

namespace viewrewrite {

/// Counters of one QueryServer's lifetime. A consistent snapshot is
/// returned by QueryServer::stats(); the server maintains the fields in
/// sharded per-core cells (ShardedServeCounters below) aggregated at
/// snapshot time. Overload and degradation are first-class here: every
/// rejection, retry, breaker event, stale serve and reload is counted, so
/// a degraded server is observable rather than silently slow.
struct ServeStats {
  uint64_t submitted = 0;      // Submit calls accepted into the queue
  uint64_t completed = 0;      // answered successfully (including stale)
  uint64_t failed = 0;         // finished with a non-OK status
  uint64_t rejected = 0;  // refused at Submit (full / shut down / oversized /
                          // already expired)
  uint64_t rejected_queue_full = 0;  // subset of rejected: bounded queue full
  uint64_t rejected_shutdown = 0;    // subset of rejected: server shut down
  uint64_t rejected_oversized = 0;   // subset of rejected: SQL over the
                                     // ServeOptions::limits size cap
  uint64_t rejected_expired = 0;     // subset of rejected: the request's
                                     // deadline had already expired at Submit
                                     // (resolved synchronously, also counted
                                     // failed + deadline_exceeded)
  uint64_t unmatched = 0;      // no stored view could answer (subset of failed)
  uint64_t deadline_exceeded = 0;  // requests past deadline (subset of failed)
  uint64_t expired_in_queue = 0;   // subset of deadline_exceeded: the request
                                   // timed out before a worker picked it up
  uint64_t retries = 0;            // extra answer attempts beyond the first
  uint64_t retry_successes = 0;    // answers that succeeded after >=1 retry
  uint64_t breaker_rejected = 0;   // fast-failed while a breaker was open
  uint64_t breaker_trips = 0;      // closed->open transitions, both domains
  uint64_t stale_served = 0;   // degraded answers from a previous epoch's cache
  uint64_t outdated_served = 0;  // successful answers that touched a view the
                                 // staleness policy flags outdated (its base
                                 // relation changed in a generation whose
                                 // rebuild failed, beyond the configured TTL)
  uint64_t reloads = 0;            // successful hot bundle swaps
  uint64_t reload_failures = 0;    // Reload calls that kept the old bundle
  uint64_t epoch = 0;              // current store epoch (0 = initial bundle)
  uint64_t generation = 0;         // republish generation of the bundle being
                                   // served (0 = initial publication)

  // ---- Overload control (serve/overload.h). --------------------------------
  uint64_t shed_admission = 0;  // requests shed by the admission limiter (or
                                // an injected serve.overload fault) before
                                // taking a queue slot; resolved fast with
                                // ResourceExhausted, never counted submitted
  uint64_t shed_hopeless = 0;   // accepted requests dropped at dequeue because
                                // the remaining deadline budget could not
                                // cover the service-time estimate (subset of
                                // deadline_exceeded)
  uint64_t shed_displaced = 0;  // accepted requests evicted from a full queue
                                // by a higher-priority arrival (resolved with
                                // ResourceExhausted, counted failed)
  uint64_t shed_queue = 0;      // shed_hopeless + shed_displaced: the shed
                                // channels inside the conservation law
  uint64_t brownout_served = 0;  // sheds converted into stale cache answers by
                                 // brownout mode (counted completed + stale,
                                 // never submitted)
  uint64_t retry_budget_exhausted = 0;  // retries suppressed because the
                                        // server-wide retry budget was empty
  double limiter_limit = 0;       // adaptive concurrency limit at snapshot
  uint64_t limiter_in_flight = 0;  // admitted-but-unfinished requests held by
                                   // the limiter at snapshot
  bool brownout_active = false;   // brownout window active at snapshot
  double service_estimate_seconds = 0;  // EWMA per-computation service time

  // ---- Single-flight coalescing and batching. ------------------------------
  // Conservation law (asserted by the chaos harness): every accepted
  // request resolves through exactly one of the channels below, so
  //   flights + coalesced_waiters + cache_short_circuits + expired_in_queue
  //     + shed_hopeless + shed_displaced == submitted.
  uint64_t flights = 0;            // answer-path computations started (leaders)
  uint64_t coalesced_waiters = 0;  // requests that joined an in-flight
                                   // computation instead of starting one
                                   // (includes batch-deduped duplicates)
  uint64_t merged_flights = 0;     // flights that discovered a canonical-equal
                                   // flight after rewrite and merged into it
                                   // (subset of flights)
  uint64_t max_flight_group = 0;   // largest single flight: leader + waiters
                                   // resolved by one computation (1 = never
                                   // coalesced)
  uint64_t cache_short_circuits = 0;  // requests resolved by a fresh raw-key
                                      // cache hit before any flight was
                                      // consulted
  uint64_t batch_queries = 0;      // queries accepted via SubmitBatch
  uint64_t batch_deduped = 0;      // subset of batch_queries deduplicated
                                   // within their batch (subset of
                                   // coalesced_waiters)

  // ---- Grouped serving. ----------------------------------------------------
  uint64_t grouped_queries = 0;   // grouped (GROUP BY) answer computations
                                  // that succeeded on the answer path
                                  // (cache hits of grouped answers are not
                                  // recounted here)
  uint64_t suppressed_groups = 0;  // groups whose noisy count fell below
                                   // ServeOptions::min_group_count and were
                                   // suppressed (summed across grouped
                                   // computations)

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;  // LRU evictions across all stripes
  size_t cache_entries = 0;    // resident cache entries at snapshot time
  size_t cache_bytes = 0;      // accounted payload bytes resident (keys +
                               // entries + grouped row sets)
  size_t cache_stripes = 0;    // stripe (shard) count of the answer cache
  /// Total wall time spent answering across workers (sums over threads, so
  /// it can exceed elapsed time under concurrency).
  double answer_seconds = 0;
};

std::ostream& operator<<(std::ostream& os, const ServeStats& s);

/// The counters a QueryServer bumps on its hot path, identifying slots in
/// a ShardedServeCounters. Kept separate from ServeStats (the aggregated
/// snapshot) so the hot path indexes an array instead of naming fields.
enum class ServeCounter : size_t {
  kSubmitted = 0,
  kCompleted,
  kFailed,
  kRejectedQueueFull,
  kRejectedShutdown,
  kRejectedOversized,
  kUnmatched,
  kDeadlineExceeded,
  kExpiredInQueue,
  kRetries,
  kRetrySuccesses,
  kStaleServed,
  kOutdatedServed,
  kReloads,
  kReloadFailures,
  kFlights,
  kCoalescedWaiters,
  kMergedFlights,
  kCacheShortCircuits,
  kBatchQueries,
  kBatchDeduped,
  kGroupedQueries,
  kSuppressedGroups,
  kAnswerNanos,
  kRejectedExpired,
  kShedAdmission,
  kShedHopeless,
  kShedDisplaced,
  kBrownoutServed,
  kNumCounters,  // sentinel
};

/// Contention-free statistics: one cache-line-aligned cell of counters per
/// hardware-thread slot, written with relaxed atomics and summed only at
/// snapshot time. Replaces a single bank of shared atomics whose cache
/// lines every worker bounced on — under N workers each thread now bumps
/// its own cell, so counter updates never contend.
///
/// Threads are assigned cells round-robin on first use (a process-wide
/// thread slot hashed over this instance's cell count), so two servers in
/// one process still isolate their hot threads. Totals are exact: every
/// increment lands in exactly one cell and snapshot sums all cells. The
/// snapshot is racy only in the same benign way the old atomics were —
/// counters keep moving while being summed.
class ShardedServeCounters {
 public:
  /// `cells` is clamped to >= 1; pass roughly the number of threads that
  /// will write concurrently (extra cells cost 64B each).
  explicit ShardedServeCounters(size_t cells);

  ShardedServeCounters(const ShardedServeCounters&) = delete;
  ShardedServeCounters& operator=(const ShardedServeCounters&) = delete;

  /// Adds `n` to `c` in the calling thread's cell. Never contends with
  /// other threads' cells.
  void Add(ServeCounter c, uint64_t n = 1);

  /// Records a completed flight's group size (leader + coalesced waiters)
  /// into the calling thread's cell-local running maximum.
  void NoteFlightGroup(uint64_t size);

  /// Exact total of `c` across all cells.
  uint64_t Total(ServeCounter c) const;

  /// Largest flight group observed by any cell.
  uint64_t MaxFlightGroup() const;

  size_t num_cells() const { return num_cells_; }

  /// Per-cell values of `c`, for tests that assert the sharding actually
  /// distributes writes.
  std::vector<uint64_t> PerCell(ServeCounter c) const;

 private:
  // Each cell starts on its own cache line; alignas rounds the struct
  // size up so neighboring cells never share a line.
  struct alignas(64) Cell {
    std::atomic<uint64_t> count[static_cast<size_t>(
        ServeCounter::kNumCounters)];
    std::atomic<uint64_t> max_flight_group;
  };

  Cell& CellForThisThread();

  size_t num_cells_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_SERVE_STATS_H_
