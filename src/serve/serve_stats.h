#ifndef VIEWREWRITE_SERVE_SERVE_STATS_H_
#define VIEWREWRITE_SERVE_SERVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace viewrewrite {

/// Counters of one QueryServer's lifetime. A consistent snapshot is
/// returned by QueryServer::stats(); the server maintains the fields as
/// atomics internally. Overload and degradation are first-class here:
/// every rejection, retry, breaker event, stale serve and reload is
/// counted, so a degraded server is observable rather than silently slow.
struct ServeStats {
  uint64_t submitted = 0;      // Submit calls accepted into the queue
  uint64_t completed = 0;      // answered successfully (including stale)
  uint64_t failed = 0;         // finished with a non-OK status
  uint64_t rejected = 0;  // refused at Submit (full / shut down / oversized)
  uint64_t rejected_queue_full = 0;  // subset of rejected: bounded queue full
  uint64_t rejected_shutdown = 0;    // subset of rejected: server shut down
  uint64_t rejected_oversized = 0;   // subset of rejected: SQL over the
                                     // ServeOptions::limits size cap
  uint64_t unmatched = 0;      // no stored view could answer (subset of failed)
  uint64_t deadline_exceeded = 0;  // requests past deadline (subset of failed)
  uint64_t retries = 0;            // extra answer attempts beyond the first
  uint64_t retry_successes = 0;    // answers that succeeded after >=1 retry
  uint64_t breaker_rejected = 0;   // fast-failed while a breaker was open
  uint64_t breaker_trips = 0;      // closed->open transitions, both domains
  uint64_t stale_served = 0;   // degraded answers from a previous epoch's cache
  uint64_t reloads = 0;            // successful hot bundle swaps
  uint64_t reload_failures = 0;    // Reload calls that kept the old bundle
  uint64_t epoch = 0;              // current store epoch (0 = initial bundle)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_entries = 0;    // resident cache entries at snapshot time
  /// Total wall time spent answering across workers (sums over threads, so
  /// it can exceed elapsed time under concurrency).
  double answer_seconds = 0;
};

std::ostream& operator<<(std::ostream& os, const ServeStats& s);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_SERVE_STATS_H_
