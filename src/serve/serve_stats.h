#ifndef VIEWREWRITE_SERVE_SERVE_STATS_H_
#define VIEWREWRITE_SERVE_SERVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace viewrewrite {

/// Counters of one QueryServer's lifetime. A consistent snapshot is
/// returned by QueryServer::stats(); the server maintains the fields as
/// atomics internally.
struct ServeStats {
  uint64_t submitted = 0;      // Submit calls accepted into the queue
  uint64_t completed = 0;      // answered successfully
  uint64_t failed = 0;         // finished with a non-OK status
  uint64_t rejected = 0;       // refused at Submit (queue full / shut down)
  uint64_t unmatched = 0;      // no stored view could answer (subset of failed)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_entries = 0;    // resident cache entries at snapshot time
  /// Total wall time spent answering across workers (sums over threads, so
  /// it can exceed elapsed time under concurrency).
  double answer_seconds = 0;
};

std::ostream& operator<<(std::ostream& os, const ServeStats& s);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_SERVE_SERVE_STATS_H_
