#ifndef VIEWREWRITE_CATALOG_SCHEMA_H_
#define VIEWREWRITE_CATALOG_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace viewrewrite {

/// Bounded attribute domain, required for an attribute to serve as a
/// synopsis (histogram) dimension. Unregistered columns can still be
/// queried directly but cannot be a view dimension.
struct ColumnDomain {
  enum class Kind { kNone, kCategorical, kIntBuckets };

  Kind kind = Kind::kNone;
  /// kCategorical: the exhaustive value set.
  std::vector<Value> categories;
  /// kIntBuckets: integer range [lo, hi] divided into `buckets` equal cells.
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t buckets = 0;

  static ColumnDomain None() { return ColumnDomain{}; }
  static ColumnDomain Categorical(std::vector<Value> values);
  static ColumnDomain IntBuckets(int64_t lo, int64_t hi, int64_t buckets);

  bool IsBounded() const { return kind != Kind::kNone; }
  /// Number of synopsis cells along this dimension.
  int64_t CellCount() const;
  /// Maps a value to its cell index in [0, CellCount()). Values outside the
  /// registered domain clamp to the nearest cell (categorical: -1 = absent).
  int64_t CellIndex(const Value& v) const;
  /// Inclusive value bounds of integer bucket `cell` (kIntBuckets only).
  std::pair<int64_t, int64_t> BucketBounds(int64_t cell) const;
};

struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt;
  ColumnDomain domain;
};

struct ForeignKey {
  std::string column;       // referencing column in this table
  std::string ref_table;    // referenced table
  std::string ref_column;   // referenced column (its primary key)
};

/// Schema of one relation: columns, primary key, outgoing foreign keys.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns,
              std::string primary_key, std::vector<ForeignKey> fks = {});

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::string& primary_key() const { return primary_key_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Index of `column` or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& column) const;
  const ColumnDef* FindColumn(const std::string& column) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::string primary_key_;
  std::vector<ForeignKey> fks_;
};

/// The database schema: a set of relations plus the foreign-key graph used
/// to derive privacy-relevant reachability (§3.7 of the paper).
class Schema {
 public:
  Status AddTable(TableSchema table);
  const TableSchema* FindTable(const std::string& name) const;
  Result<const TableSchema*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// True if `from` references `to` directly or transitively through
  /// foreign keys. A table reaching the primary privacy relation makes it
  /// a secondary privacy relation.
  bool References(const std::string& from, const std::string& to) const;

  /// All tables that are the privacy relation itself or reference it
  /// (the tables whose tuples can be linked to a protected individual).
  std::vector<std::string> PrivacyRelations(
      const std::string& primary_relation) const;

 private:
  std::map<std::string, TableSchema> tables_;
};

/// The data owner's privacy policy: which relation holds the protected
/// individuals. Neighboring databases differ in the set of tuples that
/// reference one tuple of this relation (§3.7).
struct PrivacyPolicy {
  std::string primary_relation;
};

/// Stable 64-bit fingerprint of the full schema: table names, column
/// names/types/domains, primary keys, and foreign keys, hashed in
/// canonical (sorted-table) order. A persisted synopsis bundle records
/// the fingerprint of the schema it was built against so that loading it
/// under a drifted schema fails cleanly instead of mis-answering.
uint64_t SchemaFingerprint(const Schema& schema);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_CATALOG_SCHEMA_H_
