#include "catalog/schema.h"

#include <algorithm>
#include <set>

namespace viewrewrite {

ColumnDomain ColumnDomain::Categorical(std::vector<Value> values) {
  ColumnDomain d;
  d.kind = Kind::kCategorical;
  d.categories = std::move(values);
  return d;
}

ColumnDomain ColumnDomain::IntBuckets(int64_t lo, int64_t hi,
                                      int64_t buckets) {
  ColumnDomain d;
  d.kind = Kind::kIntBuckets;
  d.lo = lo;
  d.hi = hi;
  d.buckets = std::max<int64_t>(1, std::min(buckets, hi - lo + 1));
  return d;
}

int64_t ColumnDomain::CellCount() const {
  switch (kind) {
    case Kind::kNone:
      return 0;
    case Kind::kCategorical:
      return static_cast<int64_t>(categories.size());
    case Kind::kIntBuckets:
      return buckets;
  }
  return 0;
}

int64_t ColumnDomain::CellIndex(const Value& v) const {
  switch (kind) {
    case Kind::kNone:
      return -1;
    case Kind::kCategorical: {
      for (size_t i = 0; i < categories.size(); ++i) {
        if (categories[i] == v) return static_cast<int64_t>(i);
      }
      return -1;
    }
    case Kind::kIntBuckets: {
      if (!v.is_numeric()) return -1;
      double d = v.ToDouble();
      if (d < static_cast<double>(lo)) return 0;
      if (d > static_cast<double>(hi)) return buckets - 1;
      double span = static_cast<double>(hi - lo + 1);
      int64_t cell = static_cast<int64_t>((d - static_cast<double>(lo)) /
                                          span * static_cast<double>(buckets));
      if (cell >= buckets) cell = buckets - 1;
      if (cell < 0) cell = 0;
      return cell;
    }
  }
  return -1;
}

std::pair<int64_t, int64_t> ColumnDomain::BucketBounds(int64_t cell) const {
  double span = static_cast<double>(hi - lo + 1);
  int64_t b_lo =
      lo + static_cast<int64_t>(span * static_cast<double>(cell) /
                                static_cast<double>(buckets));
  int64_t b_hi =
      lo + static_cast<int64_t>(span * static_cast<double>(cell + 1) /
                                static_cast<double>(buckets)) - 1;
  if (cell == buckets - 1) b_hi = hi;
  return {b_lo, b_hi};
}

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns,
                         std::string primary_key, std::vector<ForeignKey> fks)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      primary_key_(std::move(primary_key)),
      fks_(std::move(fks)) {}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

const ColumnDef* TableSchema::FindColumn(const std::string& column) const {
  auto idx = ColumnIndex(column);
  if (!idx) return nullptr;
  return &columns_[*idx];
}

Status Schema::AddTable(TableSchema table) {
  const std::string& name = table.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already in schema");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

const TableSchema* Schema::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const TableSchema*> Schema::GetTable(const std::string& name) const {
  const TableSchema* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no table named '" + name + "'");
  return t;
}

std::vector<std::string> Schema::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

bool Schema::References(const std::string& from, const std::string& to) const {
  std::set<std::string> visited;
  std::vector<std::string> stack = {from};
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    const TableSchema* t = FindTable(cur);
    if (t == nullptr) continue;
    for (const ForeignKey& fk : t->foreign_keys()) {
      if (fk.ref_table == to) return true;
      stack.push_back(fk.ref_table);
    }
  }
  return false;
}

std::vector<std::string> Schema::PrivacyRelations(
    const std::string& primary_relation) const {
  std::vector<std::string> out;
  for (const auto& [name, _] : tables_) {
    if (name == primary_relation || References(name, primary_relation)) {
      out.push_back(name);
    }
  }
  return out;
}

namespace {

void HashMix(uint64_t* h, std::string_view s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= 1099511628211ull;  // FNV-1a 64
  }
  *h ^= 0xFFu;  // field separator
  *h *= 1099511628211ull;
}

void HashMix(uint64_t* h, int64_t v) {
  HashMix(h, std::to_string(v));
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  uint64_t h = 1469598103934665603ull;
  // TableNames() iterates the sorted map, so the fingerprint is
  // independent of AddTable order.
  for (const std::string& name : schema.TableNames()) {
    const TableSchema* t = schema.FindTable(name);
    HashMix(&h, "T");
    HashMix(&h, name);
    HashMix(&h, t->primary_key());
    for (const ColumnDef& col : t->columns()) {
      HashMix(&h, "C");
      HashMix(&h, col.name);
      HashMix(&h, DataTypeName(col.type));
      HashMix(&h, static_cast<int64_t>(col.domain.kind));
      switch (col.domain.kind) {
        case ColumnDomain::Kind::kNone:
          break;
        case ColumnDomain::Kind::kCategorical:
          for (const Value& v : col.domain.categories) {
            HashMix(&h, v.ToString());
          }
          break;
        case ColumnDomain::Kind::kIntBuckets:
          HashMix(&h, col.domain.lo);
          HashMix(&h, col.domain.hi);
          HashMix(&h, col.domain.buckets);
          break;
      }
    }
    for (const ForeignKey& fk : t->foreign_keys()) {
      HashMix(&h, "F");
      HashMix(&h, fk.column);
      HashMix(&h, fk.ref_table);
      HashMix(&h, fk.ref_column);
    }
  }
  return h;
}

}  // namespace viewrewrite
