#include "dp/budget_wal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/fault_injection.h"

namespace viewrewrite {

namespace {

constexpr char kMagic[4] = {'V', 'R', 'W', 'L'};
constexpr uint16_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 8;
// type(1) + payload length(8) + CRC(4): the smallest complete frame.
constexpr size_t kFrameOverhead = 13;

constexpr uint8_t kRecordTotal = 1;
constexpr uint8_t kRecordSpend = 2;
constexpr uint8_t kRecordRefund = 3;
constexpr uint8_t kRecordCheckpoint = 4;

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

double GetDouble(const char* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string FileHeader() {
  std::string h(kMagic, sizeof(kMagic));
  PutU16(&h, kFormatVersion);
  PutU16(&h, 0);  // reserved
  return h;
}

std::string EncodeFrame(uint8_t type, const std::string& payload) {
  std::string f;
  f.reserve(kFrameOverhead + payload.size());
  f.push_back(static_cast<char>(type));
  PutU64(&f, payload.size());
  f.append(payload);
  // The CRC covers type + length + payload so a corrupted length that
  // still lands inside the file cannot slip through.
  PutU32(&f, Crc32(f.data(), f.size()));
  return f;
}

std::string TotalPayload(double total) {
  std::string p;
  PutDouble(&p, total);
  return p;
}

std::string EpsilonLabelPayload(double epsilon, const std::string& label) {
  std::string p;
  PutDouble(&p, epsilon);
  p.append(label);
  return p;
}

bool TotalsMatch(double logged, double requested) {
  return std::fabs(logged - requested) <=
         1e-9 * std::max(1.0, std::fabs(requested));
}

}  // namespace

Result<BudgetWal::ReplayedLedger> BudgetWal::Replay(const std::string& path) {
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::NotFound("cannot open budget WAL '" + path + "'");
    }
    std::string buf((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    blob = std::move(buf);
  }

  const std::string header = FileHeader();
  if (blob.size() < kHeaderBytes) {
    // A file shorter than the header can only be a torn creation: the
    // header + total record are fsync'd before the first spend, so no
    // record can have been durable. The bytes present must still be a
    // header prefix — anything else is not our file.
    if (blob.compare(0, blob.size(), header, 0, blob.size()) != 0) {
      return Status::Corruption("'" + path + "' is not a budget WAL");
    }
    ReplayedLedger torn;
    torn.torn_tail = true;
    return torn;
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("'" + path +
                              "' is not a budget WAL (bad magic)");
  }
  const uint16_t version =
      static_cast<uint16_t>(GetU32(blob.data() + 4) & 0xffff);
  if (version != kFormatVersion) {
    return Status::Unsupported(
        "budget WAL format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }

  ReplayedLedger out;
  size_t off = kHeaderBytes;
  out.valid_bytes = off;
  while (off < blob.size()) {
    const size_t rem = blob.size() - off;
    if (rem < kFrameOverhead) {
      out.torn_tail = true;
      break;
    }
    const uint8_t type = static_cast<uint8_t>(blob[off]);
    const uint64_t len = GetU64(blob.data() + off + 1);
    if (len > rem - kFrameOverhead) {
      // The declared frame extends past EOF: a torn final append (or a
      // corrupted length — indistinguishable, and equally droppable
      // because nothing can follow a frame that swallows the rest of the
      // file).
      out.torn_tail = true;
      break;
    }
    const size_t frame_end = off + kFrameOverhead + len;
    const uint32_t stored_crc = GetU32(blob.data() + off + 9 + len);
    const uint32_t actual_crc = Crc32(blob.data() + off, 9 + len);
    if (stored_crc != actual_crc) {
      if (frame_end == blob.size()) {
        // Partially overwritten final record: torn tail, drop it.
        out.torn_tail = true;
        break;
      }
      return Status::Corruption(
          "budget WAL '" + path + "': CRC mismatch mid-log at offset " +
          std::to_string(off) + " — refusing to reconstruct epsilon from a "
          "damaged ledger");
    }
    const char* payload = blob.data() + off + 9;

    // From here on the frame is complete and checksummed; any remaining
    // validation failure is real mid-log damage, never a torn write.
    if (out.records == 0 && type != kRecordTotal) {
      return Status::Corruption("budget WAL '" + path +
                                "' does not start with a total record");
    }
    switch (type) {
      case kRecordTotal: {
        if (len != 8) {
          return Status::Corruption("budget WAL total record has length " +
                                    std::to_string(len));
        }
        if (out.has_total) {
          return Status::Corruption("duplicate total record in budget WAL");
        }
        const double total = GetDouble(payload);
        if (!std::isfinite(total) || total < 0) {
          return Status::Corruption(
              "budget WAL records a non-finite or negative total epsilon");
        }
        out.has_total = true;
        out.total = total;
        break;
      }
      case kRecordSpend:
      case kRecordRefund: {
        if (len < 8) {
          return Status::Corruption("budget WAL spend/refund record has "
                                    "length " + std::to_string(len));
        }
        const double epsilon = GetDouble(payload);
        if (!std::isfinite(epsilon) || epsilon <= 0) {
          return Status::Corruption(
              "budget WAL records a non-finite or non-positive epsilon");
        }
        std::string label(payload + 8, len - 8);
        if (type == kRecordSpend) {
          out.spent += epsilon;
          out.entries.push_back(
              BudgetAccountant::Entry{epsilon, std::move(label)});
        } else {
          out.spent = std::max(0.0, out.spent - epsilon);
          out.entries.push_back(BudgetAccountant::Entry{-epsilon,
                                                        std::move(label),
                                                        /*refund=*/true});
        }
        break;
      }
      case kRecordCheckpoint: {
        if (len != 40) {
          return Status::Corruption("budget WAL checkpoint record has "
                                    "length " + std::to_string(len));
        }
        const uint64_t generation = GetU64(payload);
        const double total = GetDouble(payload + 8);
        const double spent = GetDouble(payload + 16);
        if (!TotalsMatch(total, out.total)) {
          return Status::Corruption(
              "budget WAL checkpoint disagrees with the total record");
        }
        if (!std::isfinite(spent) || spent < 0) {
          return Status::Corruption(
              "budget WAL checkpoint records a non-finite or negative spent "
              "epsilon");
        }
        out.spent = spent;
        out.entries.clear();
        out.folded_entries = GetU64(payload + 24);
        out.folded_refunds = GetU64(payload + 32);
        out.last_checkpoint_generation = generation;
        break;
      }
      default:
        return Status::Corruption("unknown budget WAL record type " +
                                  std::to_string(type));
    }
    ++out.records;
    off = frame_end;
    out.valid_bytes = off;
  }
  return out;
}

BudgetWal::BudgetWal(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

BudgetWal::~BudgetWal() { CloseFile(); }

void BudgetWal::CloseFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#else
  delete static_cast<std::ofstream*>(stream_);
  stream_ = nullptr;
#endif
}

Status BudgetWal::ReopenForAppend() {
  CloseFile();
#if defined(__unix__) || defined(__APPLE__)
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::ExecutionError("cannot open budget WAL '" + path_ +
                                  "' for appending");
  }
#else
  auto* out = new std::ofstream(path_, std::ios::binary | std::ios::app);
  if (!*out) {
    delete out;
    return Status::ExecutionError("cannot open budget WAL '" + path_ +
                                  "' for appending");
  }
  stream_ = out;
#endif
  return Status::OK();
}

Result<std::unique_ptr<BudgetWal>> BudgetWal::Open(const std::string& path,
                                                   double total_epsilon,
                                                   Options options) {
  if (!std::isfinite(total_epsilon) || total_epsilon < 0) {
    return Status::InvalidArgument(
        "refusing to open a budget WAL with a non-finite or negative total "
        "epsilon");
  }
  std::unique_ptr<BudgetWal> wal(new BudgetWal(path, options));

  Result<ReplayedLedger> replayed = Replay(path);
  bool fresh = false;
  if (!replayed.ok()) {
    if (replayed.status().code() != StatusCode::kNotFound) {
      return replayed.status();
    }
    fresh = true;
  } else if (!replayed->has_total) {
    // Torn creation (the crash landed inside the header or the total
    // record): nothing was ever durable, so recreate from scratch.
    fresh = true;
  }

  if (fresh) {
    std::string blob = FileHeader();
    blob += EncodeFrame(kRecordTotal, TotalPayload(total_epsilon));
    const std::string tmp = UniqueTempName(path);
    VR_RETURN_NOT_OK(WriteFileDurably(tmp, blob));
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::ExecutionError("cannot rename '" + tmp + "' to '" +
                                    path + "'");
    }
    VR_RETURN_NOT_OK(SyncParentDir(path));
    wal->recovered_ = ReplayedLedger{};
    wal->recovered_.has_total = true;
    wal->recovered_.total = total_epsilon;
    wal->recovered_.records = 1;
    wal->recovered_.valid_bytes = blob.size();
    wal->bytes_ = blob.size();
  } else {
    if (!TotalsMatch(replayed->total, total_epsilon)) {
      return Status::InvalidArgument(
          "budget WAL '" + path + "' records lifetime total " +
          std::to_string(replayed->total) + " but this process was "
          "configured with " + std::to_string(total_epsilon) +
          " — refusing to mix ledgers");
    }
    if (replayed->torn_tail) {
#if defined(__unix__) || defined(__APPLE__)
      // Drop the torn suffix so new appends follow a valid frame instead
      // of garbage (which replay would then reject as mid-log damage).
      if (::truncate(path.c_str(),
                     static_cast<off_t>(replayed->valid_bytes)) != 0) {
        return Status::ExecutionError("cannot truncate torn tail of '" +
                                      path + "'");
      }
#endif
    }
    wal->recovered_ = std::move(*replayed);
    wal->bytes_ = wal->recovered_.valid_bytes;
  }

  // A crashed compaction strands a `<path>.tmp.<pid>.<seq>` sibling; only
  // dead owners are swept (a live pid would be a concurrent writer, which
  // is unsupported but not ours to sabotage).
  SweepOrphanTemps(path, /*only_dead_owners=*/true);

  wal->total_ = wal->recovered_.total;
  wal->spent_ = wal->recovered_.spent;
  wal->total_entries_ =
      wal->recovered_.folded_entries + wal->recovered_.entries.size();
  wal->total_refunds_ = wal->recovered_.folded_refunds;
  for (const auto& e : wal->recovered_.entries) {
    if (e.refund) ++wal->total_refunds_;
  }
  wal->last_checkpoint_generation_ =
      wal->recovered_.last_checkpoint_generation;
  VR_RETURN_NOT_OK(wal->ReopenForAppend());
  return wal;
}

Status BudgetWal::AppendRecordLocked(uint8_t type,
                                     const std::string& payload) {
  // A kill at this point loses the record before any byte lands: replay
  // simply never sees it, and the accountant never admitted the spend.
  VR_FAULT_POINT(faults::kBudgetWalAppend);
  const std::string frame = EncodeFrame(type, payload);
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ < 0) {
    return Status::ExecutionError("budget WAL '" + path_ + "' is not open");
  }
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Roll a partial frame back so later appends don't land after torn
      // bytes (which replay must treat as mid-log corruption).
      (void)::ftruncate(fd_, static_cast<off_t>(bytes_));
      return Status::ExecutionError("short write to budget WAL '" + path_ +
                                    "'");
    }
    off += static_cast<size_t>(n);
  }
  {
    // A kill between write and fsync is the classic torn-tail site: the
    // record may be fully durable, partially durable, or gone. All three
    // replay safely. An injected *status* here instead rolls the frame
    // back, mirroring the accountant's refusal of the spend.
    Status fault_or_fsync = [&]() -> Status {
      VR_FAULT_POINT(faults::kBudgetWalFsync);
      // fdatasync suffices on the append path: the record bytes and the
      // file size are data-integrity metadata and both are flushed; only
      // timestamps may lag. (Creation and compaction go through
      // WriteFileDurably, which full-fsyncs file and directory.)
#if defined(__linux__)
      const int rc = ::fdatasync(fd_);
#else
      const int rc = ::fsync(fd_);
#endif
      if (rc != 0) {
        return Status::ExecutionError("fsync failed for budget WAL '" +
                                      path_ + "'");
      }
      return Status::OK();
    }();
    if (!fault_or_fsync.ok()) {
      (void)::ftruncate(fd_, static_cast<off_t>(bytes_));
      return fault_or_fsync;
    }
  }
#else
  auto* out = static_cast<std::ofstream*>(stream_);
  if (out == nullptr) {
    return Status::ExecutionError("budget WAL '" + path_ + "' is not open");
  }
  VR_FAULT_POINT(faults::kBudgetWalFsync);
  out->write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out->flush();
  if (!*out) {
    return Status::ExecutionError("short write to budget WAL '" + path_ +
                                  "'");
  }
#endif
  bytes_ += frame.size();
  return Status::OK();
}

Status BudgetWal::AppendSpend(double epsilon, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  VR_RETURN_NOT_OK(
      AppendRecordLocked(kRecordSpend, EpsilonLabelPayload(epsilon, label)));
  spent_ += epsilon;
  ++total_entries_;
  return Status::OK();
}

Status BudgetWal::AppendRefund(double epsilon, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  VR_RETURN_NOT_OK(
      AppendRecordLocked(kRecordRefund, EpsilonLabelPayload(epsilon, label)));
  spent_ = std::max(0.0, spent_ - epsilon);
  ++total_entries_;
  ++total_refunds_;
  return Status::OK();
}

Status BudgetWal::AppendCheckpoint(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  VR_FAULT_POINT(faults::kBudgetWalCheckpoint);
  std::string payload;
  PutU64(&payload, generation);
  PutDouble(&payload, total_);
  PutDouble(&payload, spent_);
  PutU64(&payload, total_entries_);
  PutU64(&payload, total_refunds_);
  if (options_.compact_threshold_bytes > 0 &&
      bytes_ + kFrameOverhead + payload.size() >
          options_.compact_threshold_bytes) {
    VR_RETURN_NOT_OK(CompactLocked(payload));
  } else {
    VR_RETURN_NOT_OK(AppendRecordLocked(kRecordCheckpoint, payload));
  }
  last_checkpoint_generation_ = generation;
  return Status::OK();
}

Status BudgetWal::CompactLocked(const std::string& checkpoint_payload) {
  // Same atomic-publish discipline as the synopsis store: the full
  // replacement log (header + total + checkpoint) is durable in a temp
  // file before the rename, so a crash anywhere leaves either the old
  // log or the compacted one — both replay to the same ledger state.
  std::string blob = FileHeader();
  blob += EncodeFrame(kRecordTotal, TotalPayload(total_));
  blob += EncodeFrame(kRecordCheckpoint, checkpoint_payload);
  const std::string tmp = UniqueTempName(path_);
  VR_RETURN_NOT_OK(WriteFileDurably(tmp, blob));
  VR_FAULT_POINT(faults::kBudgetWalCheckpoint);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::ExecutionError("cannot rename '" + tmp + "' to '" + path_ +
                                  "'");
  }
  VR_RETURN_NOT_OK(SyncParentDir(path_));
  SweepOrphanTemps(path_, /*only_dead_owners=*/true);
  bytes_ = blob.size();
  return ReopenForAppend();
}

uint64_t BudgetWal::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

double BudgetWal::SpentEpsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spent_;
}

}  // namespace viewrewrite
