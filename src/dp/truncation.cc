#include "dp/truncation.h"

#include <algorithm>
#include <cmath>

namespace viewrewrite {

double DownwardLocalSensitivity(const std::vector<double>& contributions) {
  double mx = 0;
  for (double c : contributions) mx = std::max(mx, c);
  return mx;
}

double TruncatedTotal(const std::vector<double>& contributions, double tau) {
  double total = 0;
  for (double c : contributions) total += std::min(c, tau);
  return total;
}

Result<int64_t> SelectTruncationThreshold(
    const std::vector<double>& contributions, double epsilon1,
    double epsilon2, Random* rng) {
  if (epsilon1 <= 0 || epsilon2 <= 0) {
    return Status::PrivacyError("truncation selection requires positive ε");
  }
  if (contributions.empty()) return static_cast<int64_t>(1);

  const double dls = DownwardLocalSensitivity(contributions);
  if (dls <= 1.0) return static_cast<int64_t>(1);

  double total = 0;
  for (double c : contributions) total += c;

  // Step 2: noisy pivot Q̂.
  const double q_hat = total + rng->Laplace(dls / epsilon1);

  // Step 4: AboveThreshold over the geometric candidate ladder. Each
  // q_τ has sensitivity at most 1 (removing one tuple changes Q_τ by at
  // most τ, and the pivot affects all queries identically under SVT's
  // analysis), so the standard 2/ε and 4/ε scales apply.
  const double rho = rng->Laplace(2.0 / epsilon2);
  int64_t tau = 1;
  int64_t best = -1;
  const int64_t max_tau =
      static_cast<int64_t>(std::ceil(dls)) * 2;  // ladder upper bound
  while (tau <= max_tau) {
    const double q_tau = (TruncatedTotal(contributions, tau) - q_hat) /
                         static_cast<double>(tau);
    const double nu = rng->Laplace(4.0 / epsilon2);
    if (q_tau + nu > rho) {
      best = tau;
      break;
    }
    tau *= 2;
  }
  if (best < 0) best = max_tau;  // fall back to (a bound on) DLS
  return best;
}

}  // namespace viewrewrite
