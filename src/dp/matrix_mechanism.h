#ifndef VIEWREWRITE_DP_MATRIX_MECHANISM_H_
#define VIEWREWRITE_DP_MATRIX_MECHANISM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace viewrewrite {

/// Matrix-mechanism strategies for publishing a histogram (a vector of
/// disjoint cell totals) under ε-differential privacy (Li et al., the
/// synopsis-generation mechanism §9 adopts).
///
/// The identity strategy answers point queries optimally; the hierarchical
/// strategy trades point accuracy for O(log n)-noise range queries over a
/// one-dimensional ordered domain.
enum class MatrixStrategy {
  kIdentity,
  kHierarchical,
};

/// Publishes noisy cell totals with the identity strategy. One protected
/// individual changes the cells by at most `l1_sensitivity` in L1, so each
/// cell receives Lap(l1_sensitivity/ε) noise and the release is
/// ε-differentially private by parallel composition over... (cells are not
/// disjoint w.r.t. an individual that owns several rows; the L1 bound is
/// what makes the vector release ε-DP).
Result<std::vector<double>> PublishIdentity(const std::vector<double>& cells,
                                            double l1_sensitivity,
                                            double epsilon, Random* rng);

/// A binary-tree (hierarchical) release over an ordered 1-D domain.
/// Supports range-sum queries whose noise grows with log(n) rather than
/// with the range length.
class HierarchicalHistogram {
 public:
  /// Builds the noisy tree. The per-level budget is ε / height since an
  /// individual touches at most `l1_sensitivity` leaves and each leaf
  /// appears once per level.
  static Result<HierarchicalHistogram> Publish(
      const std::vector<double>& cells, double l1_sensitivity, double epsilon,
      Random* rng);

  /// Noisy sum of cells [lo, hi] (inclusive), decomposed over O(log n)
  /// tree nodes.
  Result<double> RangeSum(int64_t lo, int64_t hi) const;

  /// Per-cell estimates (leaf level).
  const std::vector<double>& leaves() const { return leaves_; }

  int64_t num_cells() const { return n_; }

  /// Serialization support (serve-layer persistence): the full noisy tree
  /// and its shape, and reconstruction from persisted parts. FromParts
  /// validates the shape (level widths, leaf count) so a corrupted bundle
  /// cannot produce an out-of-bounds tree.
  int64_t height() const { return height_; }
  const std::vector<std::vector<double>>& tree() const { return tree_; }
  static Result<HierarchicalHistogram> FromParts(
      int64_t n, int64_t height, std::vector<std::vector<double>> tree);

 private:
  HierarchicalHistogram() = default;

  double NodeSum(int64_t node_lo, int64_t node_hi, int64_t level,
                 int64_t index) const;
  double Decompose(int64_t lo, int64_t hi, int64_t node_lo, int64_t node_hi,
                   int64_t level, int64_t index) const;

  int64_t n_ = 0;
  int64_t height_ = 0;                      // number of levels
  std::vector<std::vector<double>> tree_;   // tree_[level][index]
  std::vector<double> leaves_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_MATRIX_MECHANISM_H_
