#ifndef VIEWREWRITE_DP_MECHANISM_H_
#define VIEWREWRITE_DP_MECHANISM_H_

#include "common/random.h"
#include "common/result.h"

namespace viewrewrite {

/// The Laplace mechanism (§3.5): F̃(D) = F(D) + Lap(S(F)/ε).
///
/// Stateless; the caller supplies the deterministic random source so every
/// experiment is reproducible from a seed.
class LaplaceMechanism {
 public:
  /// Adds Laplace noise calibrated to `sensitivity` and `epsilon`.
  /// Requires sensitivity >= 0 and epsilon > 0.
  static Result<double> Release(double true_value, double sensitivity,
                                double epsilon, Random* rng);

  /// Noise scale b = S/ε.
  static Result<double> Scale(double sensitivity, double epsilon);
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_MECHANISM_H_
