#ifndef VIEWREWRITE_DP_BUDGET_H_
#define VIEWREWRITE_DP_BUDGET_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

/// Privacy-budget accountant implementing sequential composition (§3.6):
/// spends are summed and may never exceed the total. Parallel composition
/// is expressed by spending once for a group of mechanisms that operate on
/// disjoint data (e.g. the cells of one histogram).
class BudgetAccountant {
 public:
  explicit BudgetAccountant(double total_epsilon)
      : total_(total_epsilon), spent_(0) {}

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

  /// Records a sequential-composition spend labeled for the audit trail.
  /// Fails (without spending) if the budget would be exceeded.
  Status Spend(double epsilon, const std::string& label);

  struct Entry {
    double epsilon;
    std::string label;
  };
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  double total_;
  double spent_;
  std::vector<Entry> ledger_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_BUDGET_H_
