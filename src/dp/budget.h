#ifndef VIEWREWRITE_DP_BUDGET_H_
#define VIEWREWRITE_DP_BUDGET_H_

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

class BudgetWal;

/// Privacy-budget accountant implementing sequential composition (§3.6):
/// spends are summed and may never exceed the total. Parallel composition
/// is expressed by spending once for a group of mechanisms that operate on
/// disjoint data (e.g. the cells of one histogram).
///
/// Thread safety: fully thread safe. The synopsis lifecycle spends and
/// refunds from a background republisher thread while readers snapshot the
/// ledger for bundle metadata, so Spend/Refund/ledger() serialize on an
/// internal mutex; total() is immutable after construction and lock-free.
/// The spent <= total invariant holds atomically: a Spend that would
/// over-commit fails before mutating anything, even under concurrent
/// spenders.
class BudgetAccountant {
 public:
  struct Entry {
    double epsilon;
    std::string label;
    bool refund = false;
  };

  /// A non-finite or negative total poisons the accountant: every Spend
  /// and Refund fails with PrivacyError, and total()/remaining() report 0
  /// instead of echoing the garbage value into stats and bundle metadata
  /// (check poisoned()). (A constructor cannot return a Status; poisoning
  /// keeps a corrupted epsilon from silently granting budget.)
  explicit BudgetAccountant(double total_epsilon);

  /// Crash-recovery construction: seeds the ledger with the state a
  /// budget WAL replayed, so spends of a restarted process stack on top
  /// of everything the previous process life durably recorded. A
  /// non-finite or negative recovered spend poisons the accountant just
  /// like a bad total — replayed garbage must not grant budget. A
  /// recovered spend exceeding the total is *not* poison: it is the safe
  /// over-counting direction (see BudgetWal), and simply leaves no
  /// remaining budget.
  BudgetAccountant(double total_epsilon, double recovered_spent,
                   std::vector<Entry> recovered_ledger);

  /// Attaches a write-ahead ledger. From now on every admitted Spend and
  /// Refund is appended and fsync'd to `wal` *before* the in-memory state
  /// mutates; a WAL append failure fails the call without mutating
  /// anything. The accountant does not own the WAL, which must outlive
  /// it. Not thread-safe against in-flight Spend/Refund: attach before
  /// publishing.
  void AttachWal(BudgetWal* wal) { wal_ = wal; }

  /// True when the accountant was constructed with a non-finite or
  /// negative epsilon and refuses all spends. total() and remaining()
  /// report 0 in this state.
  bool poisoned() const { return !valid_; }

  double total() const { return total_; }
  double spent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spent_;
  }
  /// Clamped at zero so floating-point drift never reports a negative
  /// remaining budget.
  double remaining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::max(0.0, total_ - spent_);
  }

  /// Records a sequential-composition spend labeled for the audit trail.
  /// Fails (without spending) if the budget would be exceeded or
  /// `epsilon` is non-finite or non-positive.
  Status Spend(double epsilon, const std::string& label);

  /// Returns budget from a failed release whose outputs were all
  /// discarded before publication — nothing observable was computed from
  /// the spend, so the slice composes as if it never happened. Recorded
  /// in the ledger as a negative-epsilon entry flagged `refund`. Fails if
  /// `epsilon` is non-finite, non-positive, or exceeds what was spent.
  Status Refund(double epsilon, const std::string& label);

  /// Snapshot of the ledger (by value: the ledger may grow concurrently).
  std::vector<Entry> ledger() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ledger_;
  }

 private:
  double total_;
  bool valid_;
  BudgetWal* wal_ = nullptr;
  mutable std::mutex mu_;
  double spent_;                // guarded by mu_
  std::vector<Entry> ledger_;   // guarded by mu_
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_BUDGET_H_
