#ifndef VIEWREWRITE_DP_BUDGET_H_
#define VIEWREWRITE_DP_BUDGET_H_

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

/// Privacy-budget accountant implementing sequential composition (§3.6):
/// spends are summed and may never exceed the total. Parallel composition
/// is expressed by spending once for a group of mechanisms that operate on
/// disjoint data (e.g. the cells of one histogram).
///
/// Thread safety: fully thread safe. The synopsis lifecycle spends and
/// refunds from a background republisher thread while readers snapshot the
/// ledger for bundle metadata, so Spend/Refund/ledger() serialize on an
/// internal mutex; total() is immutable after construction and lock-free.
/// The spent <= total invariant holds atomically: a Spend that would
/// over-commit fails before mutating anything, even under concurrent
/// spenders.
class BudgetAccountant {
 public:
  /// A non-finite or negative total poisons the accountant: every Spend
  /// and Refund fails with PrivacyError. (A constructor cannot return a
  /// Status; poisoning keeps a corrupted epsilon from silently granting
  /// budget.)
  explicit BudgetAccountant(double total_epsilon);

  double total() const { return total_; }
  double spent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spent_;
  }
  /// Clamped at zero so floating-point drift never reports a negative
  /// remaining budget.
  double remaining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::max(0.0, total_ - spent_);
  }

  /// Records a sequential-composition spend labeled for the audit trail.
  /// Fails (without spending) if the budget would be exceeded or
  /// `epsilon` is non-finite or non-positive.
  Status Spend(double epsilon, const std::string& label);

  /// Returns budget from a failed release whose outputs were all
  /// discarded before publication — nothing observable was computed from
  /// the spend, so the slice composes as if it never happened. Recorded
  /// in the ledger as a negative-epsilon entry flagged `refund`. Fails if
  /// `epsilon` is non-finite, non-positive, or exceeds what was spent.
  Status Refund(double epsilon, const std::string& label);

  struct Entry {
    double epsilon;
    std::string label;
    bool refund = false;
  };
  /// Snapshot of the ledger (by value: the ledger may grow concurrently).
  std::vector<Entry> ledger() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ledger_;
  }

 private:
  double total_;
  bool valid_;
  mutable std::mutex mu_;
  double spent_;                // guarded by mu_
  std::vector<Entry> ledger_;   // guarded by mu_
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_BUDGET_H_
