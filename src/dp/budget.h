#ifndef VIEWREWRITE_DP_BUDGET_H_
#define VIEWREWRITE_DP_BUDGET_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

/// Privacy-budget accountant implementing sequential composition (§3.6):
/// spends are summed and may never exceed the total. Parallel composition
/// is expressed by spending once for a group of mechanisms that operate on
/// disjoint data (e.g. the cells of one histogram).
class BudgetAccountant {
 public:
  /// A non-finite or negative total poisons the accountant: every Spend
  /// and Refund fails with PrivacyError. (A constructor cannot return a
  /// Status; poisoning keeps a corrupted epsilon from silently granting
  /// budget.)
  explicit BudgetAccountant(double total_epsilon);

  double total() const { return total_; }
  double spent() const { return spent_; }
  /// Clamped at zero so floating-point drift never reports a negative
  /// remaining budget.
  double remaining() const { return std::max(0.0, total_ - spent_); }

  /// Records a sequential-composition spend labeled for the audit trail.
  /// Fails (without spending) if the budget would be exceeded or
  /// `epsilon` is non-finite or non-positive.
  Status Spend(double epsilon, const std::string& label);

  /// Returns budget from a failed release whose outputs were all
  /// discarded before publication — nothing observable was computed from
  /// the spend, so the slice composes as if it never happened. Recorded
  /// in the ledger as a negative-epsilon entry flagged `refund`. Fails if
  /// `epsilon` is non-finite, non-positive, or exceeds what was spent.
  Status Refund(double epsilon, const std::string& label);

  struct Entry {
    double epsilon;
    std::string label;
    bool refund = false;
  };
  const std::vector<Entry>& ledger() const { return ledger_; }

 private:
  double total_;
  double spent_;
  bool valid_;
  std::vector<Entry> ledger_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_BUDGET_H_
