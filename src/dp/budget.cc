#include "dp/budget.h"

namespace viewrewrite {

Status BudgetAccountant::Spend(double epsilon, const std::string& label) {
  if (epsilon <= 0) {
    return Status::PrivacyError("spend must be positive: " + label);
  }
  // Tolerate floating-point accumulation at the very end of the budget.
  constexpr double kSlack = 1e-9;
  if (spent_ + epsilon > total_ * (1.0 + kSlack) + kSlack) {
    return Status::PrivacyError("privacy budget exhausted: spending " +
                                std::to_string(epsilon) + " on '" + label +
                                "' with only " + std::to_string(remaining()) +
                                " remaining");
  }
  spent_ += epsilon;
  ledger_.push_back(Entry{epsilon, label});
  return Status::OK();
}

}  // namespace viewrewrite
