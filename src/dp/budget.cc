#include "dp/budget.h"

#include <cmath>

namespace viewrewrite {

namespace {
// Tolerate floating-point accumulation at the very end of the budget.
constexpr double kSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_(0),
      valid_(std::isfinite(total_epsilon) && total_epsilon >= 0),
      spent_(0) {
  if (valid_) total_ = total_epsilon;
}

Status BudgetAccountant::Spend(double epsilon, const std::string& label) {
  if (!valid_) {
    return Status::PrivacyError(
        "budget accountant was constructed with a non-finite or negative "
        "total epsilon");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0) {
    return Status::PrivacyError("spend must be positive and finite: " + label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_ + epsilon > total_ * (1.0 + kSlack) + kSlack) {
    return Status::PrivacyError(
        "privacy budget exhausted: spending " + std::to_string(epsilon) +
        " on '" + label + "' with only " +
        std::to_string(std::max(0.0, total_ - spent_)) + " remaining");
  }
  spent_ += epsilon;
  ledger_.push_back(Entry{epsilon, label});
  return Status::OK();
}

Status BudgetAccountant::Refund(double epsilon, const std::string& label) {
  if (!valid_) {
    return Status::PrivacyError(
        "budget accountant was constructed with a non-finite or negative "
        "total epsilon");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0) {
    return Status::PrivacyError("refund must be positive and finite: " +
                                label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (epsilon > spent_ * (1.0 + kSlack) + kSlack) {
    return Status::PrivacyError("refund of " + std::to_string(epsilon) +
                                " on '" + label + "' exceeds spent budget " +
                                std::to_string(spent_));
  }
  spent_ = std::max(0.0, spent_ - epsilon);
  ledger_.push_back(Entry{-epsilon, label, /*refund=*/true});
  return Status::OK();
}

}  // namespace viewrewrite
