#include "dp/budget.h"

#include <cmath>

#include "dp/budget_wal.h"

namespace viewrewrite {

namespace {
// Tolerate floating-point accumulation at the very end of the budget.
constexpr double kSlack = 1e-9;
}  // namespace

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_(0),
      valid_(std::isfinite(total_epsilon) && total_epsilon >= 0),
      spent_(0) {
  if (valid_) total_ = total_epsilon;
}

BudgetAccountant::BudgetAccountant(double total_epsilon,
                                   double recovered_spent,
                                   std::vector<Entry> recovered_ledger)
    : total_(0),
      valid_(std::isfinite(total_epsilon) && total_epsilon >= 0 &&
             std::isfinite(recovered_spent) && recovered_spent >= 0),
      spent_(0) {
  if (valid_) {
    total_ = total_epsilon;
    spent_ = recovered_spent;
    ledger_ = std::move(recovered_ledger);
  }
}

Status BudgetAccountant::Spend(double epsilon, const std::string& label) {
  if (!valid_) {
    return Status::PrivacyError(
        "budget accountant was constructed with a non-finite or negative "
        "total epsilon");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0) {
    return Status::PrivacyError("spend must be positive and finite: " + label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spent_ + epsilon > total_ * (1.0 + kSlack) + kSlack) {
    return Status::PrivacyError(
        "privacy budget exhausted: spending " + std::to_string(epsilon) +
        " on '" + label + "' with only " +
        std::to_string(std::max(0.0, total_ - spent_)) + " remaining");
  }
  // Write-ahead ordering: the spend is durable in the WAL before the
  // in-memory state admits it (and therefore before any noisy value is
  // computed from it). A WAL failure aborts the spend — replay can then
  // only over-count epsilon relative to what was published, never
  // under-count.
  if (wal_ != nullptr) {
    VR_RETURN_NOT_OK(wal_->AppendSpend(epsilon, label));
  }
  spent_ += epsilon;
  ledger_.push_back(Entry{epsilon, label});
  return Status::OK();
}

Status BudgetAccountant::Refund(double epsilon, const std::string& label) {
  if (!valid_) {
    return Status::PrivacyError(
        "budget accountant was constructed with a non-finite or negative "
        "total epsilon");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0) {
    return Status::PrivacyError("refund must be positive and finite: " +
                                label);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (epsilon > spent_ * (1.0 + kSlack) + kSlack) {
    return Status::PrivacyError("refund of " + std::to_string(epsilon) +
                                " on '" + label + "' exceeds spent budget " +
                                std::to_string(spent_));
  }
  // Refunds are recorded at the caller's discard boundary (nothing from
  // the spend was published); they hit the WAL before memory so a crash
  // after the refund record still replays the lower spent total.
  if (wal_ != nullptr) {
    VR_RETURN_NOT_OK(wal_->AppendRefund(epsilon, label));
  }
  spent_ = std::max(0.0, spent_ - epsilon);
  ledger_.push_back(Entry{-epsilon, label, /*refund=*/true});
  return Status::OK();
}

}  // namespace viewrewrite
