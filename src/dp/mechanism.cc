#include "dp/mechanism.h"

#include <cmath>

#include "common/fault_injection.h"

namespace viewrewrite {

Result<double> LaplaceMechanism::Scale(double sensitivity, double epsilon) {
  if (sensitivity < 0) {
    return Status::PrivacyError("sensitivity must be non-negative");
  }
  if (epsilon <= 0) {
    return Status::PrivacyError("epsilon must be positive");
  }
  return sensitivity / epsilon;
}

Result<double> LaplaceMechanism::Release(double true_value, double sensitivity,
                                         double epsilon, Random* rng) {
  VR_FAULT_POINT(faults::kDpMechanism);
  VR_ASSIGN_OR_RETURN(double scale, Scale(sensitivity, epsilon));
  const double released =
      scale == 0 ? true_value : true_value + rng->Laplace(scale);
  if (!std::isfinite(released)) {
    return Status::PrivacyError("mechanism produced a non-finite release");
  }
  return released;
}

}  // namespace viewrewrite
