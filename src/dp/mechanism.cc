#include "dp/mechanism.h"

namespace viewrewrite {

Result<double> LaplaceMechanism::Scale(double sensitivity, double epsilon) {
  if (sensitivity < 0) {
    return Status::PrivacyError("sensitivity must be non-negative");
  }
  if (epsilon <= 0) {
    return Status::PrivacyError("epsilon must be positive");
  }
  return sensitivity / epsilon;
}

Result<double> LaplaceMechanism::Release(double true_value, double sensitivity,
                                         double epsilon, Random* rng) {
  VR_ASSIGN_OR_RETURN(double scale, Scale(sensitivity, epsilon));
  if (scale == 0) return true_value;
  return true_value + rng->Laplace(scale);
}

}  // namespace viewrewrite
