#ifndef VIEWREWRITE_DP_BUDGET_WAL_H_
#define VIEWREWRITE_DP_BUDGET_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dp/budget.h"

namespace viewrewrite {

/// Write-ahead budget ledger: an append-only, CRC-framed record log that
/// makes privacy accounting crash-durable. Every Spend/Refund the
/// BudgetAccountant admits is appended and fsync'd here *before* the
/// in-memory ledger mutates — and therefore before any noisy value is
/// computed from the spend — so a process that dies mid-publish can never
/// forget epsilon it already (or was about to have) released. Replay at
/// startup reconstructs the spent total, and sequential composition keeps
/// holding across process lifetimes.
///
/// The failure direction is deliberately asymmetric: when an append
/// fails, the record may or may not be on disk but the in-memory spend is
/// refused, so replay can only ever *over*-count spent epsilon relative
/// to what was published. Over-counting wastes budget; under-counting
/// would break the privacy guarantee.
///
/// ## On-disk format (version 1)
///
/// All integers little-endian, doubles as IEEE-754 bit patterns.
///
///   u32 magic "VRWL" | u16 format version | u16 reserved
///   repeated records, each framed as:
///     u8 type | u64 payload length | payload bytes | u32 CRC-32
///   (the CRC covers type + length + payload, so a flipped type or a
///   corrupted length that still lands inside the file is caught)
///
/// Record types:
///   1 kTotal       f64 lifetime total epsilon (always the first record)
///   2 kSpend       f64 epsilon | label bytes (rest of payload)
///   3 kRefund      f64 epsilon | label bytes
///   4 kCheckpoint  u64 generation | f64 total | f64 spent |
///                  u64 folded entries | u64 folded refunds
///
/// ## Torn-tail semantics
///
/// A crash mid-append tears at most the final record. Replay therefore
/// ignores exactly one incomplete suffix: a final frame that is truncated,
/// extends past EOF, or fails its CRC while being the last bytes of the
/// file is a *torn tail* — dropped, and replay succeeds with the prefix.
/// Anything else that fails validation (bad magic, CRC mismatch with
/// bytes after it, malformed payload under a valid CRC, unknown record
/// type) is mid-log damage no crash of this writer can produce, and
/// replay returns kCorruption — never a garbage epsilon. Open() truncates
/// a torn tail away before appending so the log stays parseable.
///
/// ## Compaction
///
/// Checkpoint records summarize the ledger (generation, running totals).
/// Once the log grows past Options::compact_threshold_bytes, appending a
/// checkpoint rewrites the file as header + total + that checkpoint via
/// the same fsync-temp-then-rename discipline the synopsis store uses, so
/// the log is bounded by the inter-checkpoint spend volume.
///
/// Thread safety: all appends serialize on an internal mutex. Replay is a
/// static read-only pass. One process must own a WAL file at a time (the
/// engine's Prepare opens it once).
class BudgetWal {
 public:
  struct Options {
    /// Log size that triggers checkpoint compaction; 0 disables
    /// compaction entirely (the property tests want append-only files).
    uint64_t compact_threshold_bytes = 256 * 1024;
  };

  /// What a replay pass recovered from the log.
  struct ReplayedLedger {
    bool has_total = false;
    double total = 0;
    /// Net spent epsilon (spends minus refunds, floored at 0), with any
    /// checkpoint's summary folded in.
    double spent = 0;
    /// Ledger entries since the last checkpoint (full audit trail when
    /// the log was never compacted).
    std::vector<BudgetAccountant::Entry> entries;
    /// Entries/refunds summarized away by the last checkpoint.
    uint64_t folded_entries = 0;
    uint64_t folded_refunds = 0;
    uint64_t last_checkpoint_generation = 0;
    /// Complete records replayed (including the total record).
    uint64_t records = 0;
    /// True when an incomplete final record was dropped.
    bool torn_tail = false;
    /// Byte offset of the first torn byte — the length of the valid
    /// prefix, where appending may resume.
    uint64_t valid_bytes = 0;
  };

  /// Read-only replay of the log at `path`. Returns the reconstructed
  /// ledger, NotFound when no file exists, Unsupported for a future
  /// format version, or kCorruption for mid-log damage (see the torn-tail
  /// semantics above). Never returns a wrong spent total: the result is
  /// either a prefix of what was appended or a typed error.
  static Result<ReplayedLedger> Replay(const std::string& path);

  /// Opens (or creates) the WAL at `path` for a ledger with lifetime
  /// total `total_epsilon`. An existing log is replayed first: its
  /// recorded total must match `total_epsilon` (a mismatch is
  /// InvalidArgument — silently adopting either value could launder a
  /// budget change past the ledger), a torn tail is truncated away, and
  /// orphaned compaction temp files from dead processes are swept.
  /// The recovered state is available via recovered() for seeding a
  /// BudgetAccountant.
  static Result<std::unique_ptr<BudgetWal>> Open(const std::string& path,
                                                 double total_epsilon,
                                                 Options options);
  static Result<std::unique_ptr<BudgetWal>> Open(const std::string& path,
                                                 double total_epsilon) {
    return Open(path, total_epsilon, Options());
  }

  ~BudgetWal();
  BudgetWal(const BudgetWal&) = delete;
  BudgetWal& operator=(const BudgetWal&) = delete;

  /// Appends and fsyncs one spend/refund record. Called by the accountant
  /// *before* it mutates its in-memory state (write-ahead ordering); a
  /// failure here must abort the spend.
  Status AppendSpend(double epsilon, const std::string& label);
  Status AppendRefund(double epsilon, const std::string& label);

  /// Appends a generation checkpoint summarizing the running ledger, then
  /// compacts the log down to header + total + checkpoint when it has
  /// outgrown the threshold. Called after a generation's bundle is
  /// durably published.
  Status AppendCheckpoint(uint64_t generation);

  /// State replayed when this WAL was opened (what a restarted process
  /// seeds its accountant from). Immutable after Open.
  const ReplayedLedger& recovered() const { return recovered_; }

  const std::string& path() const { return path_; }

  /// Current log size in bytes (header + appended frames).
  uint64_t SizeBytes() const;

  /// Net spent epsilon as recorded by this WAL (recovered + appended).
  double SpentEpsilon() const;

 private:
  BudgetWal(std::string path, Options options);

  Status ReopenForAppend();
  Status AppendRecordLocked(uint8_t type, const std::string& payload);
  Status CompactLocked(const std::string& checkpoint_payload);
  void CloseFile();

  const std::string path_;
  const Options options_;
  ReplayedLedger recovered_;

  mutable std::mutex mu_;
  // Running ledger state mirrored from the appended records (guarded by
  // mu_): what the next checkpoint record will summarize.
  double total_ = 0;
  double spent_ = 0;
  uint64_t total_entries_ = 0;   // spends + refunds ever recorded
  uint64_t total_refunds_ = 0;
  uint64_t last_checkpoint_generation_ = 0;
  uint64_t bytes_ = 0;
#if defined(__unix__) || defined(__APPLE__)
  int fd_ = -1;
#else
  void* stream_ = nullptr;  // std::ofstream on non-POSIX fallback
#endif
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_BUDGET_WAL_H_
