#ifndef VIEWREWRITE_DP_TRUNCATION_H_
#define VIEWREWRITE_DP_TRUNCATION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace viewrewrite {

/// Selects a truncation threshold τ for a view using downward local
/// sensitivity and the sparse vector technique, following §9 of the paper
/// (which adopts the R2T idea of Dong et al.):
///
///   1. DLS_Q = max over protected tuples t_P of that tuple's total
///      contribution S_Q(D, t_P) to the view.
///   2. Q̂(D) = Q(D) + Lap(DLS_Q / ε₁).
///   3. For candidate thresholds τ = 1, 2, 4, ... compute
///      q_τ = (Q_τ(D) − Q̂(D)) / τ, where Q_τ clamps every tuple's
///      contribution to τ.
///   4. AboveThreshold (SVT) with budget ε₂ returns the first τ with a
///      (noisily) non-negative q_τ.
///
/// `contributions` holds S_Q(D, t_P) for every protected tuple that joins
/// into the view. Returns the selected τ (at least 1).
Result<int64_t> SelectTruncationThreshold(
    const std::vector<double>& contributions, double epsilon1,
    double epsilon2, Random* rng);

/// Downward local sensitivity: the largest single-tuple contribution.
double DownwardLocalSensitivity(const std::vector<double>& contributions);

/// Truncated total Q_τ(D): per-tuple contributions clamped to tau.
double TruncatedTotal(const std::vector<double>& contributions, double tau);

}  // namespace viewrewrite

#endif  // VIEWREWRITE_DP_TRUNCATION_H_
