#include "dp/matrix_mechanism.h"

#include <cmath>

#include "common/fault_injection.h"
#include "dp/mechanism.h"

namespace viewrewrite {

Result<std::vector<double>> PublishIdentity(const std::vector<double>& cells,
                                            double l1_sensitivity,
                                            double epsilon, Random* rng) {
  VR_FAULT_POINT(faults::kDpMechanism);
  VR_ASSIGN_OR_RETURN(double scale,
                      LaplaceMechanism::Scale(l1_sensitivity, epsilon));
  std::vector<double> out;
  out.reserve(cells.size());
  for (double c : cells) {
    const double v = scale == 0 ? c : c + rng->Laplace(scale);
    if (!std::isfinite(v)) {
      return Status::PrivacyError(
          "identity mechanism produced a non-finite noisy cell");
    }
    out.push_back(v);
  }
  return out;
}

Result<HierarchicalHistogram> HierarchicalHistogram::Publish(
    const std::vector<double>& cells, double l1_sensitivity, double epsilon,
    Random* rng) {
  VR_FAULT_POINT(faults::kDpMechanism);
  if (epsilon <= 0) {
    return Status::PrivacyError("epsilon must be positive");
  }
  HierarchicalHistogram h;
  h.n_ = static_cast<int64_t>(cells.size());
  if (h.n_ == 0) return h;

  // Pad to a power of two.
  int64_t padded = 1;
  int64_t height = 1;
  while (padded < h.n_) {
    padded <<= 1;
    ++height;
  }
  h.height_ = height;

  const double eps_per_level = epsilon / static_cast<double>(height);
  VR_ASSIGN_OR_RETURN(double scale,
                      LaplaceMechanism::Scale(l1_sensitivity, eps_per_level));

  // Level `height-1` are the leaves; level 0 is the root.
  std::vector<std::vector<double>> exact(height);
  exact[height - 1].assign(padded, 0.0);
  for (int64_t i = 0; i < h.n_; ++i) exact[height - 1][i] = cells[i];
  for (int64_t level = height - 2; level >= 0; --level) {
    int64_t width = int64_t{1} << level;
    exact[level].assign(width, 0.0);
    for (int64_t i = 0; i < width; ++i) {
      exact[level][i] =
          exact[level + 1][2 * i] + exact[level + 1][2 * i + 1];
    }
  }

  h.tree_.resize(height);
  for (int64_t level = 0; level < height; ++level) {
    h.tree_[level].reserve(exact[level].size());
    for (double v : exact[level]) {
      const double noisy = scale == 0 ? v : v + rng->Laplace(scale);
      if (!std::isfinite(noisy)) {
        return Status::PrivacyError(
            "hierarchical mechanism produced a non-finite noisy node");
      }
      h.tree_[level].push_back(noisy);
    }
  }
  h.leaves_.assign(h.tree_[height - 1].begin(),
                   h.tree_[height - 1].begin() + h.n_);
  return h;
}

Result<HierarchicalHistogram> HierarchicalHistogram::FromParts(
    int64_t n, int64_t height, std::vector<std::vector<double>> tree) {
  HierarchicalHistogram h;
  if (n == 0 && height == 0 && tree.empty()) return h;  // empty release
  if (n <= 0 || height <= 0 ||
      tree.size() != static_cast<size_t>(height)) {
    return Status::Corruption("hierarchical histogram shape mismatch");
  }
  const int64_t padded = int64_t{1} << (height - 1);
  if (n > padded || (height > 1 && n <= padded / 2)) {
    return Status::Corruption("hierarchical histogram leaf count mismatch");
  }
  for (int64_t level = 0; level < height; ++level) {
    const size_t expect = level + 1 == height
                              ? static_cast<size_t>(padded)
                              : (size_t{1} << level);
    if (tree[static_cast<size_t>(level)].size() != expect) {
      return Status::Corruption("hierarchical histogram level width mismatch");
    }
  }
  h.n_ = n;
  h.height_ = height;
  h.tree_ = std::move(tree);
  h.leaves_.assign(h.tree_[static_cast<size_t>(height - 1)].begin(),
                   h.tree_[static_cast<size_t>(height - 1)].begin() + n);
  return h;
}

double HierarchicalHistogram::Decompose(int64_t lo, int64_t hi,
                                        int64_t node_lo, int64_t node_hi,
                                        int64_t level, int64_t index) const {
  if (hi < node_lo || lo > node_hi) return 0.0;
  if (lo <= node_lo && node_hi <= hi) return tree_[level][index];
  int64_t mid = (node_lo + node_hi) / 2;
  return Decompose(lo, hi, node_lo, mid, level + 1, 2 * index) +
         Decompose(lo, hi, mid + 1, node_hi, level + 1, 2 * index + 1);
}

Result<double> HierarchicalHistogram::RangeSum(int64_t lo, int64_t hi) const {
  if (n_ == 0) return 0.0;
  if (lo < 0) lo = 0;
  if (hi >= n_) hi = n_ - 1;
  if (lo > hi) return 0.0;
  int64_t padded = int64_t{1} << (height_ - 1);
  return Decompose(lo, hi, 0, padded - 1, 0, 0);
}

}  // namespace viewrewrite
