#include "workload/workload.h"

#include <functional>

#include "common/random.h"

namespace viewrewrite {

namespace {

/// Aligned constant pools. Every numeric pool enumerates the bucket
/// boundaries of the corresponding registered domain, so predicates align
/// exactly with synopsis cells.
struct Pools {
  explicit Pools(int scale) {
    auto ladder = [](int64_t lo, int64_t width, int64_t n,
                     std::vector<int64_t>* out) {
      for (int64_t k = 1; k < n; ++k) out->push_back(lo + k * width);
    };
    ladder(0, 4096, 16, &totalprice);        // o_totalprice [0,65535]/16
    ladder(0, 512, 16, &acctbal);            // c_acctbal [0,8191]/16
    ladder(0, 4, 16, &quantity);             // l_quantity [0,63]/16
    ladder(0, 1024, 16, &extendedprice);     // l_extendedprice [0,16383]/16
    ladder(0, 8, 8, &groupcount);            // derived COUNT [0,63]/8
    ladder(0, 262144, 16, &grouptotal);      // SUM(o_totalprice)/cust /16
    // Key-filter constants: finer than the 8-bucket key dimension on
    // purpose — the cell midpoint rule keeps answering self-consistent,
    // and the variety drives the baseline's view proliferation.
    ladder(0, 32 * scale, 32, &custkey);
    // Census pools.
    ladder(0, 6, 16, &age);                  // p_age [0,95]/16
    ladder(0, 512, 16, &income);             // incomes [0,8191]/16
    ladder(0, 64 * scale, 32, &hkey);        // h_id in [0, 2048*scale)
    for (int64_t y = 1992; y <= 1998; ++y) years.push_back(y);
    for (int64_t m = 0; m <= 4; ++m) segments.push_back(m);
    for (int64_t p = 0; p <= 4; ++p) priorities.push_back(p);
    for (int64_t s = 0; s <= 9; ++s) states.push_back(s);
  }

  std::vector<int64_t> totalprice, acctbal, quantity, extendedprice,
      groupcount, grouptotal, custkey, age, income, hkey, years, segments,
      priorities, states;
};

std::string I(int64_t v) { return std::to_string(v); }

/// Draws for main-query positions (uniform) and subquery positions
/// (Zipf-skewed: distinct-value count grows sublinearly with draws).
class Draw {
 public:
  explicit Draw(uint64_t seed) : rng_(seed) {}

  int64_t Uniform(const std::vector<int64_t>& pool) {
    return pool[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }
  int64_t Sub(const std::vector<int64_t>& pool) {
    int64_t idx = rng_.Zipf(static_cast<int64_t>(pool.size()), 1.3) - 1;
    return pool[static_cast<size_t>(idx)];
  }
  const char* Status() {
    static const char* kStatuses[] = {"f", "o", "p"};
    return kStatuses[rng_.UniformInt(0, 2)];
  }
  const char* Flag() {
    static const char* kFlags[] = {"a", "n", "r"};
    return kFlags[rng_.UniformInt(0, 2)];
  }
  Random& rng() { return rng_; }

 private:
  Random rng_;
};

using Template = std::function<WorkloadQuery(Draw&, const Pools&)>;

// ---------------------------------------------------------------------------
// TPC-H templates. `agg` is the SELECT item (COUNT(*) or a SUM).
// ---------------------------------------------------------------------------

std::vector<Template> TpchTemplates(bool sum_type, bool privatesql_only,
                                    const std::string& family_filter) {
  auto agg_orders = [sum_type] {
    return sum_type ? std::string("SUM(o.o_totalprice)")
                    : std::string("COUNT(*)");
  };
  auto agg_customer = [sum_type] {
    return sum_type ? std::string("SUM(c.c_acctbal)")
                    : std::string("COUNT(*)");
  };
  auto agg_lineitem = [sum_type] {
    return sum_type ? std::string("SUM(l.l_extendedprice * l.l_quantity)")
                    : std::string("COUNT(*)");
  };

  std::vector<std::pair<std::string, Template>> all;

  // --- single-relation ---
  all.emplace_back("single", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_orders() + " FROM orders o WHERE o.o_totalprice >= " +
            I(d.Uniform(p.totalprice)) +
            " AND o.o_orderyear = " + I(d.Uniform(p.years)),
        "single"};
  });
  all.emplace_back("single", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_customer() + " FROM customer c WHERE c.c_acctbal < " +
            I(d.Uniform(p.acctbal)) +
            " AND c.c_mktsegment = " + I(d.Uniform(p.segments)),
        "single"};
  });
  all.emplace_back("single", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_lineitem() +
            " FROM lineitem l WHERE l.l_quantity >= " +
            I(d.Uniform(p.quantity)) + " AND l.l_returnflag = '" + d.Flag() +
            "'",
        "single"};
  });

  // --- join ---
  all.emplace_back("join", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_orders() +
            " FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
            " AND c.c_mktsegment = " +
            I(d.Uniform(p.segments)) +
            " AND o.o_totalprice >= " + I(d.Uniform(p.totalprice)),
        "join"};
  });
  all.emplace_back("join", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_lineitem() +
            " FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey"
            " AND o.o_orderyear = " +
            I(d.Uniform(p.years)) +
            " AND l.l_quantity < " + I(d.Uniform(p.quantity)),
        "join"};
  });
  all.emplace_back("join", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_lineitem() +
            " FROM customer c, orders o, lineitem l"
            " WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey"
            " AND c.c_mktsegment = " +
            I(d.Uniform(p.segments)) + " AND l.l_returnflag = '" + d.Flag() +
            "'",
        "join"};
  });

  // --- correlated nested ---
  all.emplace_back("correlated", [=](Draw& d, const Pools& p) {
    // comparison-correlated (no rewrite trap: AVG).
    return WorkloadQuery{
        "SELECT " + agg_orders() +
            " FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
            " AND o.o_orderyear = " +
            I(d.Uniform(p.years)) +
            " AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) FROM orders"
            " o2 WHERE o2.o_custkey = c.c_custkey)",
        "correlated"};
  });
  if (!privatesql_only) {
    all.emplace_back("correlated", [=](Draw& d, const Pools& p) {
      // EXISTS with a promotable key filter (subquery constant).
      return WorkloadQuery{
          "SELECT " + agg_customer() +
              " FROM customer c WHERE c.c_mktsegment = " +
              I(d.Uniform(p.segments)) +
              " AND EXISTS (SELECT * FROM orders o WHERE o.o_custkey ="
              " c.c_custkey AND o.o_custkey >= " +
              I(d.Sub(p.custkey)) + " AND o.o_custkey < " +
              I(d.Sub(p.custkey) + 512) + ")",
          "correlated"};
    });
    all.emplace_back("correlated", [=](Draw& d, const Pools& p) {
      // NOT EXISTS (rewrite-trap territory: COUNT + COALESCE).
      return WorkloadQuery{
          "SELECT " + agg_customer() +
              " FROM customer c WHERE c.c_acctbal >= " +
              I(d.Uniform(p.acctbal)) +
              " AND NOT EXISTS (SELECT * FROM orders o WHERE o.o_custkey ="
              " c.c_custkey AND o.o_custkey < " +
              I(d.Sub(p.custkey)) + ")",
          "correlated"};
    });
    all.emplace_back("correlated", [=](Draw& d, const Pools& p) {
      // set-correlated: >= ALL over lineitem prices of the order.
      return WorkloadQuery{
          "SELECT " + agg_orders() +
              " FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
              " AND c.c_mktsegment = " +
              I(d.Uniform(p.segments)) +
              " AND o.o_totalprice >= ALL (SELECT l.l_extendedprice FROM"
              " lineitem l WHERE l.l_orderkey = o.o_orderkey)",
          "correlated"};
    });
    all.emplace_back("correlated", [=](Draw& d, const Pools& p) {
      // IN-correlated with a promotable key filter.
      return WorkloadQuery{
          "SELECT " + agg_orders() +
              " FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
              " AND o.o_orderpriority IN (SELECT o2.o_orderpriority FROM"
              " orders o2 WHERE o2.o_custkey = c.c_custkey AND o2.o_custkey"
              " < " +
              I(d.Sub(p.custkey)) + ")",
          "correlated"};
    });
  }

  // --- non-correlated nested ---
  all.emplace_back("non-correlated", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_orders() +
            " FROM customer c, orders o WHERE c.c_custkey = o.o_custkey"
            " AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) FROM orders"
            " o2 WHERE o2.o_orderyear = " +
            I(d.Sub(p.years)) +
            " AND o2.o_orderpriority = " + I(d.Sub(p.priorities)) + ")",
        "non-correlated"};
  });
  all.emplace_back("non-correlated", [=](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT " + agg_orders() + " FROM orders o WHERE o.o_orderyear = " +
            I(d.Uniform(p.years)) +
            " AND o.o_custkey IN (SELECT c.c_custkey FROM customer c WHERE"
            " c.c_mktsegment = " +
            I(d.Sub(p.segments)) + " AND c.c_acctbal >= " +
            I(d.Sub(p.acctbal)) + ")",
        "non-correlated"};
  });
  if (!privatesql_only) {
    all.emplace_back("non-correlated", [=](Draw& d, const Pools& p) {
      return WorkloadQuery{
          "SELECT " + agg_orders() +
              " FROM orders o WHERE o.o_totalprice > ALL (SELECT"
              " l.l_extendedprice FROM lineitem l WHERE l.l_shipyear = " +
              I(d.Sub(p.years)) + ")",
          "non-correlated"};
    });
    all.emplace_back("non-correlated", [=](Draw& d, const Pools& p) {
      return WorkloadQuery{
          "SELECT " + agg_customer() +
              " FROM customer c WHERE c.c_acctbal >= " +
              I(d.Uniform(p.acctbal)) +
              " AND EXISTS (SELECT * FROM orders o WHERE o.o_orderyear = " +
              I(d.Sub(p.years)) +
              " AND o.o_totalprice >= " + I(d.Sub(p.totalprice)) + ")",
          "non-correlated"};
    });
  }

  // --- derived table ---
  all.emplace_back("derived", [=](Draw& d, const Pools& p) {
    // Rule 1: no grouping, filter hoists wholesale.
    return WorkloadQuery{
        "SELECT " + agg_customer() +
            " FROM customer c, (SELECT o_custkey, o_totalprice FROM orders"
            " WHERE o_totalprice >= " +
            I(d.Sub(p.totalprice)) +
            ") dt WHERE c.c_custkey = dt.o_custkey AND c.c_mktsegment = " +
            I(d.Uniform(p.segments)),
        "derived"};
  });
  all.emplace_back("derived", [=](Draw& d, const Pools& p) {
    // Rule 3: HAVING hoists to the main WHERE.
    return WorkloadQuery{
        "SELECT " + agg_customer() +
            " FROM customer c, (SELECT o_custkey, COUNT(*) AS cnt FROM"
            " orders GROUP BY o_custkey HAVING COUNT(*) >= " +
            I(d.Sub(p.groupcount)) +
            ") dt WHERE c.c_custkey = dt.o_custkey AND c.c_acctbal < " +
            I(d.Uniform(p.acctbal)),
        "derived"};
  });
  if (!privatesql_only) {
    all.emplace_back("derived", [=](Draw& d, const Pools& p) {
      // Rule 2: WHERE on the grouping column hoists.
      return WorkloadQuery{
          "SELECT " + agg_customer() +
              " FROM customer c, (SELECT o_custkey, AVG(o_totalprice) AS a"
              " FROM orders WHERE o_custkey >= " +
              I(d.Sub(p.custkey)) +
              " GROUP BY o_custkey) dt WHERE c.c_custkey = dt.o_custkey"
              " AND dt.a >= " +
              I(d.Uniform(p.totalprice)),
          "derived"};
    });
    all.emplace_back("derived", [=](Draw& d, const Pools& p) {
      // Rule 8 (WITH) + Rule 3.
      return WorkloadQuery{
          "WITH t AS (SELECT o_custkey, SUM(o_totalprice) AS s FROM orders"
          " GROUP BY o_custkey HAVING SUM(o_totalprice) >= " +
              I(d.Sub(p.grouptotal)) + ") SELECT " + agg_customer() +
              " FROM customer c, t WHERE c.c_custkey = t.o_custkey AND"
              " c.c_mktsegment = " +
              I(d.Uniform(p.segments)),
          "derived"};
    });
    all.emplace_back("derived", [=](Draw& d, const Pools& p) {
      // Rules 4/5: two same-structure subqueries merge.
      return WorkloadQuery{
          "SELECT " + agg_customer() +
              " FROM customer c, (SELECT o_custkey, COUNT(*) AS cnt FROM"
              " orders GROUP BY o_custkey) d1, (SELECT o_custkey,"
              " AVG(o_totalprice) AS a FROM orders GROUP BY o_custkey) d2"
              " WHERE c.c_custkey = d1.o_custkey AND c.c_custkey ="
              " d2.o_custkey AND d1.cnt >= " +
              I(d.Uniform(p.groupcount)) +
              " AND d2.a < " + I(d.Uniform(p.totalprice)),
          "derived"};
    });
    // --- OR filters (Rules 6/7) ---
    all.emplace_back("or", [=](Draw& d, const Pools& p) {
      return WorkloadQuery{
          "SELECT " + agg_orders() + " FROM orders o WHERE o.o_orderyear = " +
              I(d.Uniform(p.years)) +
              " OR o.o_totalprice >= " + I(d.Uniform(p.totalprice)),
          "or"};
    });
  }

  std::vector<Template> out;
  for (auto& [family, t] : all) {
    if (family_filter.empty() || family == family_filter) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

std::vector<Template> CensusTemplates() {
  std::vector<Template> out;
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM person p WHERE p.p_age >= " +
            I(d.Uniform(p.age)) + " AND p.p_sex = " +
            I(d.rng().UniformInt(0, 1)),
        "single"};
  });
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM household h, person p WHERE h.h_id = p.p_hid"
        " AND h.h_state = " +
            I(d.Uniform(p.states)) +
            " AND p.p_income >= " + I(d.Uniform(p.income)),
        "join"};
  });
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM household h, person p WHERE h.h_id = p.p_hid"
        " AND h.h_state = " +
            I(d.Uniform(p.states)) +
            " AND p.p_income > (SELECT AVG(p2.p_income) FROM person p2"
            " WHERE p2.p_hid = h.h_id)",
        "correlated"};
  });
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM household h WHERE h.h_income >= " +
            I(d.Uniform(p.income)) +
            " AND EXISTS (SELECT * FROM person p WHERE p.p_hid = h.h_id"
            " AND p.p_hid >= " +
            I(d.Sub(p.hkey)) + ")",
        "correlated"};
  });
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM person p WHERE p.p_income > (SELECT"
        " AVG(p2.p_income) FROM person p2 WHERE p2.p_sex = " +
            I(d.rng().UniformInt(0, 1)) + " AND p2.p_age >= " +
            I(d.Sub(p.age)) + ")",
        "non-correlated"};
  });
  out.push_back([](Draw& d, const Pools& p) {
    return WorkloadQuery{
        "SELECT COUNT(*) FROM household h, (SELECT p_hid, COUNT(*) AS cnt"
        " FROM person GROUP BY p_hid HAVING COUNT(*) >= " +
            I(d.Sub(p.groupcount)) +
            ") dt WHERE h.h_id = dt.p_hid AND h.h_state = " +
            I(d.Uniform(p.states)),
        "derived"};
  });
  return out;
}

}  // namespace

int WorkloadGenerator::QueryCount(int w) {
  static const int kLadderBig[] = {750, 1500, 3000, 6000, 12000};
  static const int kLadderSmall[] = {200, 400, 800, 1600, 3200};
  if (w >= 1 && w <= 5) return kLadderBig[w - 1];
  if (w >= 6 && w <= 10) return kLadderBig[w - 6];
  if (w >= 11 && w <= 15) return kLadderBig[w - 11];
  if (w >= 16 && w <= 20) return kLadderSmall[w - 16];
  if (w >= 21 && w <= 25) return kLadderSmall[w - 21];
  if (w >= 26 && w <= 30) return kLadderSmall[w - 26];
  if (w == 31) return 3000;
  return 0;
}

Result<std::vector<WorkloadQuery>> WorkloadGenerator::Generate(int w) const {
  if (w < 1 || w > 31) {
    return Status::InvalidArgument("workload index must be in [1, 31]");
  }
  const int n = QueryCount(w);
  Pools pools(scale_);
  Draw draw(seed_ + static_cast<uint64_t>(w) * 7919);

  std::vector<Template> templates;
  if (w <= 5) {
    templates = TpchTemplates(/*sum=*/false, /*privatesql_only=*/false, "");
  } else if (w <= 10) {
    templates = TpchTemplates(/*sum=*/true, /*privatesql_only=*/false, "");
  } else if (w <= 15) {
    templates = TpchTemplates(/*sum=*/false, /*privatesql_only=*/true, "");
  } else if (w <= 20) {
    templates = TpchTemplates(false, false, "correlated");
  } else if (w <= 25) {
    templates = TpchTemplates(false, false, "non-correlated");
  } else if (w <= 30) {
    templates = TpchTemplates(false, false, "derived");
  } else {
    templates = CensusTemplates();
  }
  if (templates.empty()) {
    return Status::Internal("no templates for workload");
  }

  std::vector<WorkloadQuery> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    Template& t = templates[static_cast<size_t>(i) % templates.size()];
    out.push_back(t(draw, pools));
  }
  return out;
}

}  // namespace viewrewrite
