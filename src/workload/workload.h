#ifndef VIEWREWRITE_WORKLOAD_WORKLOAD_H_
#define VIEWREWRITE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace viewrewrite {

/// One workload query: SQL text plus the template family it came from
/// (for tests and reporting).
struct WorkloadQuery {
  std::string sql;
  std::string family;  // "single", "join", "correlated", ...
};

/// Generates the paper's 31 workloads (§10.1):
///   W1-W5    count type, {750,1500,3000,6000,12000} queries, mixed classes
///   W6-W10   sum type, same ladder
///   W11-W15  count type, same ladder, PrivateSQL-supported classes only
///   W16-W20  correlated nested queries, {200,400,800,1600,3200}
///   W21-W25  non-correlated nested queries, same ladder
///   W26-W30  derived table queries, same ladder
///   W31      U.S. Census, 3000 mixed queries
///
/// Queries are template-instantiated with constants drawn from pools that
/// align with the registered attribute-domain bucket boundaries (so the
/// synopsis discretization is exact). Constants in *subquery* positions
/// are drawn Zipf-skewed: the number of distinct values (and hence the
/// PrivateSQL baseline's view count) grows sublinearly with workload
/// size, as in the paper's Fig. 6e / Table 2.
class WorkloadGenerator {
 public:
  /// `tpch_scale` sizes the key-domain constant pools to the generated
  /// database (keys grow with scale); `seed` fixes the instantiation.
  WorkloadGenerator(int tpch_scale, uint64_t seed)
      : scale_(tpch_scale), seed_(seed) {}

  /// Number of queries in workload `w` (1-based, per the paper).
  static int QueryCount(int w);

  /// True if `w` targets the U.S. Census schema (only W31).
  static bool IsCensus(int w) { return w == 31; }

  Result<std::vector<WorkloadQuery>> Generate(int w) const;

 private:
  int scale_;
  uint64_t seed_;
};

}  // namespace viewrewrite

#endif  // VIEWREWRITE_WORKLOAD_WORKLOAD_H_
