// Rewrite explorer: shows what each of the paper's rewrite rules does to a
// query. For every example the program prints the original SQL, its
// Fig.-1 classification, and the rewritten form (chain links + signed
// combination of AND-only queries over the canonical join tree), then
// verifies equivalence by executing both on a synthetic instance.
//
//   $ ./build/examples/rewrite_explorer

#include <cstdio>

#include "datagen/tpch.h"
#include "exec/executor.h"
#include "rewrite/classifier.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace {

struct Example {
  const char* title;
  const char* sql;
};

const Example kExamples[] = {
    {"Rule 3: HAVING hoisted out of a derived table",
     "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders "
     "GROUP BY o_custkey HAVING COUNT(*) >= 8) d"},
    {"Rule 8: WITH becomes a FROM derived table",
     "WITH big AS (SELECT o_custkey, SUM(o_totalprice) AS s FROM orders "
     "GROUP BY o_custkey) SELECT COUNT(*) FROM customer c, big WHERE "
     "c.c_custkey = big.o_custkey AND big.s >= 262144"},
    {"Rule 10: comparison-correlated subquery (Fig. 3 of the paper)",
     "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
     "o.o_custkey AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) FROM "
     "orders o2 WHERE o2.o_custkey = c.c_custkey)"},
    {"Rules 13/14 + key-filter promotion: NOT EXISTS with a subquery "
     "constant",
     "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS (SELECT * FROM "
     "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey < 256)"},
    {"Rule 12 + Table 1: >= ALL becomes a MAX comparison",
     "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
     "o.o_custkey AND o.o_totalprice >= ALL (SELECT l.l_extendedprice FROM "
     "lineitem l WHERE l.l_orderkey = o.o_orderkey)"},
    {"Rule 15: non-correlated comparison becomes a chained query",
     "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice > (SELECT "
     "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_orderyear = 1995)"},
    {"Rules 16/17: IN over a unique key flattens to a join",
     "SELECT COUNT(*) FROM orders o WHERE o.o_custkey IN (SELECT "
     "c.c_custkey FROM customer c WHERE c.c_mktsegment = 3)"},
    {"Rules 6/7: OR expands by inclusion-exclusion",
     "SELECT COUNT(*) FROM orders o WHERE o.o_orderstatus = 'f' OR "
     "o.o_totalprice >= 49152"},
};

}  // namespace

int main() {
  using namespace viewrewrite;

  TpchConfig config;
  config.customers = 200;
  config.parts = 100;
  auto db = GenerateTpch(config);
  Executor executor(*db);
  Rewriter rewriter(db->schema());

  for (const Example& ex : kExamples) {
    std::printf("== %s ==\n", ex.title);
    auto stmt = ParseSelect(ex.sql);
    if (!stmt.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   stmt.status().ToString().c_str());
      return 1;
    }
    auto cls = Classify(**stmt, db->schema());
    std::printf("class:     %s\n",
                cls.ok() ? QueryClassName(*cls) : "unknown");
    std::printf("original:  %s\n", ToSql(**stmt).c_str());

    auto rq = rewriter.Rewrite(**stmt);
    if (!rq.ok()) {
      std::fprintf(stderr, "rewrite error: %s\n",
                   rq.status().ToString().c_str());
      return 1;
    }
    std::printf("rewritten: %s\n", ToSql(*rq).c_str());

    auto original = executor.ExecuteScalar(**stmt);
    auto rewritten = executor.ExecuteRewritten(*rq);
    if (!original.ok() || !rewritten.ok()) {
      std::fprintf(stderr, "execution error\n");
      return 1;
    }
    std::printf("answers:   original = %.1f, rewritten = %.1f  [%s]\n\n",
                *original, *rewritten,
                *original == *rewritten ? "EQUAL" : "MISMATCH!");
  }
  return 0;
}
