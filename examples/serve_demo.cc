// Serving demo: the full publish-once / serve-forever lifecycle.
//
//   1. Offline: prepare a workload under DP (spends the privacy budget),
//      snapshot the published synopses into a SynopsisStore, save it.
//   2. Online: reload the bundle from disk — no database access, no
//      budget — start a concurrent QueryServer over it, and answer
//      queries (including ones not in the original workload, as long as
//      a published view covers their structure).
//   3. Live republish (first run only, while the server keeps serving):
//      base data changed, so a Republisher rebuilds just the affected
//      views, spending from the lifetime reserve under cross-epoch
//      sequential composition, durably saves the new generation, and
//      atomically swaps it in — the epoch and generation advance with no
//      serving gap.
//
//   $ ./build/examples/serve_demo [bundle_path] [num_threads]
//
// Default bundle path: $TMPDIR/serve_demo_bundle.vrsy (left on disk so a
// second run demonstrates pure reload-and-serve without re-publishing —
// but never dropped into the working directory / repo checkout).

#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <vector>

#include "datagen/tpch.h"
#include "engine/viewrewrite_engine.h"
#include "serve/query_server.h"
#include "serve/republisher.h"
#include "serve/synopsis_store.h"

int main(int argc, char** argv) {
  using namespace viewrewrite;

  // Default into the temp dir, not the working directory: demos must not
  // litter a source checkout with bundles.
  std::string default_path;
  const char* tmpdir = std::getenv("TMPDIR");
  default_path = std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir
                                                                  : "/tmp");
  if (default_path.back() != '/') default_path += '/';
  default_path += "serve_demo_bundle.vrsy";
  const std::string bundle_path = argc > 1 ? argv[1] : default_path;
  const size_t num_threads =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4;

  TpchConfig config;
  config.scale = 1;
  config.seed = 7;
  std::unique_ptr<Database> db = GenerateTpch(config);
  PrivacyPolicy policy{"orders"};

  // ---- Offline phase: publish and persist (skipped when a bundle already
  // exists — the second run of this demo serves without touching data).
  // The engine outlives the offline phase on the first run so the live
  // republish below can rebuild views from it.
  std::unique_ptr<ViewRewriteEngine> engine;
  if (!SynopsisStore::Load(bundle_path, db->schema()).ok()) {
    std::vector<std::string> workload = {
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 32768",
        "SELECT COUNT(*) FROM orders o WHERE o.o_orderstatus = 'f'",
        "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_totalprice < 32768",
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND c.c_mktsegment = 2",
        // Grouped + derived: AVG never materializes — it registers its
        // (sum, count) companions and is derived at serve time; the
        // HAVING filter is applied post-noise (docs/AGGREGATES.md).
        "SELECT o_orderstatus, AVG(o_totalprice) FROM orders o "
        "GROUP BY o_orderstatus HAVING COUNT(*) >= 2",
    };
    EngineOptions options;
    options.epsilon = 8.0;
    // Reserve beyond the initial publication: each later republish
    // generation draws from the surplus (here 12 - 8 = 4) on the same
    // lifetime ledger.
    options.lifetime_epsilon = 12.0;
    options.seed = 42;
    engine = std::make_unique<ViewRewriteEngine>(*db, policy, options);
    Status st = engine->Prepare(workload);
    if (!st.ok()) {
      std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::cout << "prepare: " << engine->report() << "\n";
    std::cout << "stats:   " << engine->stats() << "\n";

    auto store = SynopsisStore::FromManager(engine->views(), db->schema());
    if (!store.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    if (Status save = store->Save(bundle_path); !save.ok()) {
      std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu views (eps spent %.3f of %.3f) to %s\n\n",
                store->NumViews(), store->ledger().spent_epsilon,
                store->ledger().total_epsilon, bundle_path.c_str());
  }

  // ---- Online phase: reload and serve concurrently.
  auto loaded = SynopsisStore::Load(bundle_path, db->schema());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto store = std::make_shared<SynopsisStore>(std::move(*loaded));
  std::printf("loaded %zu views from %s\n", store->NumViews(),
              bundle_path.c_str());

  ServeOptions serve_options;
  serve_options.num_threads = num_threads;
  QueryServer server(store, db->schema(), serve_options);

  // A mix of workload queries and fresh variants the views still cover;
  // the last one has a structure no view matches and is refused cleanly.
  std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 32768",
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 16384",
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_totalprice < 16384",
      "SELECT COUNT(*) FROM orders o WHERE o.o_orderstatus = 'f' AND "
      "o.o_totalprice >= 32768",
      "SELECT o_orderstatus, AVG(o_totalprice) FROM orders o "
      "GROUP BY o_orderstatus HAVING COUNT(*) >= 2",
      "SELECT COUNT(*) FROM lineitem l WHERE l.l_quantity >= 25",
  };
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (const std::string& sql : queries) {
    futures.push_back(server.Submit(sql));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<ServedAnswer> answer = futures[i].get();
    if (answer.ok() && answer->rows != nullptr) {
      std::printf("  %-100.100s -> %zu groups\n", queries[i].c_str(),
                  answer->rows->rows.size());
      for (const auto& row : answer->rows->rows) {
        std::printf("      ");
        for (size_t c = 0; c < row.values.size(); ++c) {
          const Value& v = row.values[c];
          if (v.is_null()) {
            std::printf(" %s=NULL", answer->rows->columns[c].c_str());
          } else if (v.is_numeric()) {
            std::printf(" %s=%.2f", answer->rows->columns[c].c_str(),
                        v.ToDouble());
          } else {
            std::printf(" %s=%s", answer->rows->columns[c].c_str(),
                        v.AsString().c_str());
          }
        }
        std::printf("%s\n", row.suppressed ? "  [suppressed]" : "");
      }
    } else if (answer.ok()) {
      std::printf("  %-100.100s -> %.2f%s\n", queries[i].c_str(),
                  answer->value, answer->stale ? " (stale)" : "");
    } else {
      std::printf("  %-100.100s -> refused: %s\n", queries[i].c_str(),
                  answer.status().ToString().c_str());
    }
  }
  // ---- Live republish: only on the run that published (the engine holds
  // the views and the lifetime ledger). The server keeps serving while
  // the new generation is rebuilt, saved, and swapped in.
  if (engine) {
    std::printf("\nlive republish: orders changed (epoch %llu, "
                "generation %llu before)\n",
                static_cast<unsigned long long>(server.epoch()),
                static_cast<unsigned long long>(server.stats().generation));
    RepublisherOptions repub_options;
    repub_options.bundle_path = bundle_path;
    repub_options.generation_epsilon = 1.0;
    Republisher republisher(engine.get(), db->schema(), &server,
                            repub_options);
    Result<RepublishReport> report = republisher.RepublishNow({"orders"});
    if (!report.ok()) {
      std::fprintf(stderr, "republish failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  generation %llu published: %zu views rebuilt, eps %.3f spent, "
        "epoch %llu -> %llu\n",
        static_cast<unsigned long long>(report->generation),
        report->rebuilt.size(), report->epsilon_spent,
        static_cast<unsigned long long>(report->parent_epoch),
        static_cast<unsigned long long>(report->epoch_after));
    Result<ServedAnswer> refreshed = server.Submit(queries[0]).get();
    if (refreshed.ok()) {
      std::printf("  %-100.100s -> %.2f (generation %llu)\n",
                  queries[0].c_str(), refreshed->value,
                  static_cast<unsigned long long>(refreshed->generation));
    }
  }

  server.Shutdown();
  std::cout << "\n" << server.stats() << "\n";
  return 0;
}
