// vr_shell: a scriptable shell over the whole library. Loads a synthetic
// TPC-H instance, executes SQL exactly, shows classifications and
// rewrites, and manages a differentially private workload end to end.
//
//   $ ./build/examples/vr_shell            # interactive
//   $ echo '\demo' | ./build/examples/vr_shell
//
// Commands (anything else is executed as SQL against the instance):
//   \help                 this text
//   \tables               list relations and row counts
//   \classify <sql>       Fig.-1 query class
//   \rewrite <sql>        show the rewritten form (Rules 1-20)
//   \policy <relation>    set the primary privacy relation (default orders)
//   \epsilon <value>      set the total privacy budget (default 8)
//   \add <sql>            queue a workload query
//   \prepare              rewrite + generate views + publish synopses
//   \answer               answer all queued queries privately
//   \views                list published views
//   \demo                 run a short scripted tour
//   \quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/tpch.h"
#include "engine/viewrewrite_engine.h"
#include "exec/executor.h"
#include "rewrite/classifier.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace viewrewrite {
namespace {

class Shell {
 public:
  Shell() : db_(GenerateTpch(TpchConfig{})), executor_(*db_) {
    std::printf("vr_shell — %zu rows loaded; \\help for commands\n",
                db_->TotalRows());
  }

  bool Handle(const std::string& line) {
    std::string trimmed = Trim(line);
    if (trimmed.empty()) return true;
    if (trimmed[0] != '\\') {
      RunSql(trimmed);
      return true;
    }
    std::istringstream in(trimmed.substr(1));
    std::string cmd;
    in >> cmd;
    std::string rest;
    std::getline(in, rest);
    rest = Trim(rest);
    if (cmd == "quit" || cmd == "q") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "tables") {
      Tables();
    } else if (cmd == "classify") {
      ClassifyCmd(rest);
    } else if (cmd == "rewrite") {
      RewriteCmd(rest);
    } else if (cmd == "policy") {
      policy_ = rest.empty() ? "orders" : rest;
      prepared_.reset();
      std::printf("policy = %s\n", policy_.c_str());
    } else if (cmd == "epsilon") {
      epsilon_ = rest.empty() ? 8.0 : std::stod(rest);
      prepared_.reset();
      std::printf("epsilon = %g\n", epsilon_);
    } else if (cmd == "add") {
      workload_.push_back(rest);
      prepared_.reset();
      std::printf("queued query #%zu\n", workload_.size());
    } else if (cmd == "prepare") {
      Prepare();
    } else if (cmd == "answer") {
      Answer();
    } else if (cmd == "views") {
      Views();
    } else if (cmd == "demo") {
      Demo();
    } else {
      std::printf("unknown command \\%s (try \\help)\n", cmd.c_str());
    }
    return true;
  }

 private:
  void Help() {
    std::printf(
        "  <sql>              execute exactly and print (up to 10 rows)\n"
        "  \\tables            relations and row counts\n"
        "  \\classify <sql>    Fig.-1 query class\n"
        "  \\rewrite <sql>     rewritten form (Rules 1-20)\n"
        "  \\policy <rel>      set privacy relation (now: %s)\n"
        "  \\epsilon <v>       set privacy budget (now: %g)\n"
        "  \\add <sql>         queue a workload query\n"
        "  \\prepare           publish private synopses for the queue\n"
        "  \\answer            answer the queue privately\n"
        "  \\views             published views\n"
        "  \\demo              scripted tour\n"
        "  \\quit\n",
        policy_.c_str(), epsilon_);
  }

  void Tables() {
    for (const std::string& name : db_->schema().TableNames()) {
      std::printf("  %-10s %zu rows\n", name.c_str(),
                  db_->FindTable(name)->NumRows());
    }
  }

  void RunSql(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      return;
    }
    auto rs = executor_.Execute(**stmt);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      return;
    }
    for (const std::string& c : rs->columns) std::printf("%-14s", c.c_str());
    std::printf("\n");
    size_t shown = 0;
    for (const Row& row : rs->rows) {
      if (++shown > 10) {
        std::printf("... (%zu rows total)\n", rs->NumRows());
        break;
      }
      for (const Value& v : row) std::printf("%-14s", v.ToString().c_str());
      std::printf("\n");
    }
    if (rs->rows.empty()) std::printf("(empty)\n");
  }

  void ClassifyCmd(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      return;
    }
    auto cls = Classify(**stmt, db_->schema());
    std::printf("%s\n", cls.ok() ? QueryClassName(*cls)
                                 : cls.status().ToString().c_str());
  }

  void RewriteCmd(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      return;
    }
    Rewriter rewriter(db_->schema());
    auto rq = rewriter.Rewrite(**stmt);
    if (!rq.ok()) {
      std::printf("error: %s\n", rq.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", ToSql(*rq).c_str());
  }

  void Prepare() {
    if (workload_.empty()) {
      std::printf("queue is empty; \\add some queries first\n");
      return;
    }
    EngineOptions opts;
    opts.epsilon = epsilon_;
    prepared_ =
        std::make_unique<ViewRewriteEngine>(*db_, PrivacyPolicy{policy_},
                                            opts);
    Status st = prepared_->Prepare(workload_);
    if (!st.ok()) {
      std::printf("prepare failed: %s\n", st.ToString().c_str());
      prepared_.reset();
      return;
    }
    std::printf("%zu queries -> %zu views, synopses published in %.3fs\n",
                prepared_->NumQueries(), prepared_->NumViews(),
                prepared_->stats().SynopsisSeconds());
  }

  void Answer() {
    if (!prepared_) {
      std::printf("run \\prepare first\n");
      return;
    }
    for (size_t i = 0; i < prepared_->NumQueries(); ++i) {
      if (prepared_->IsGrouped(i)) {
        auto rows = prepared_->GroupedAnswer(i);
        if (!rows.ok()) {
          std::printf("Q%zu failed: %s\n", i + 1,
                      rows.status().ToString().c_str());
          continue;
        }
        std::printf("Q%zu  grouped, %zu rows\n", i + 1, rows->rows.size());
        for (const aggregate::GroupedRow& row : rows->rows) {
          std::printf("   ");
          for (size_t c = 0; c < row.values.size(); ++c) {
            const Value& v = row.values[c];
            std::string text = v.is_null()
                                   ? std::string("NULL")
                                   : (v.is_numeric()
                                          ? [&] {
                                              char buf[32];
                                              std::snprintf(buf, sizeof(buf),
                                                            "%.1f",
                                                            v.ToDouble());
                                              return std::string(buf);
                                            }()
                                          : v.AsString());
            std::printf(" %s=%s", rows->columns[c].c_str(), text.c_str());
          }
          std::printf("%s\n", row.suppressed ? "  [suppressed]" : "");
        }
        continue;
      }
      auto noisy = prepared_->NoisyAnswer(i);
      auto truth = prepared_->TrueAnswer(i);
      if (!noisy.ok() || !truth.ok()) {
        std::printf("Q%zu failed: %s\n", i + 1,
                    (!noisy.ok() ? noisy : truth)
                        .status()
                        .ToString()
                        .c_str());
        continue;
      }
      std::printf("Q%zu  private=%.1f  true=%.1f  rel.err=%.4f\n", i + 1,
                  *noisy, *truth, RelativeErrorMetric(*truth, *noisy));
    }
  }

  void Views() {
    if (!prepared_) {
      std::printf("run \\prepare first\n");
      return;
    }
    auto stats = prepared_->NumViews();
    std::printf("%zu views published\n", stats);
  }

  void Demo() {
    const char* script[] = {
        "SELECT COUNT(*) FROM orders",
        "\\classify SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
        "FROM orders o WHERE o.o_custkey = c.c_custkey)",
        "\\rewrite SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
        "FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= "
        "128)",
        "\\add SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 32768",
        "\\add SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= 128)",
        "\\prepare",
        "\\answer",
    };
    for (const char* line : script) {
      std::printf("vr> %s\n", line);
      Handle(line);
    }
  }

  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  std::unique_ptr<Database> db_;
  Executor executor_;
  std::string policy_ = "orders";
  double epsilon_ = 8.0;
  std::vector<std::string> workload_;
  std::unique_ptr<ViewRewriteEngine> prepared_;
};

}  // namespace
}  // namespace viewrewrite

int main() {
  viewrewrite::Shell shell;
  std::string line;
  while (true) {
    std::printf("vr> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.Handle(line)) break;
  }
  return 0;
}
