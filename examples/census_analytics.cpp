// Census analytics: the paper's second dataset end to end. A statistics
// bureau protects households (the primary privacy relation); analysts run
// a mixed workload — demographic counts, income comparisons against
// population-wide averages, and household-composition queries — answered
// entirely from private synopses, with a side-by-side PrivateSQL baseline.
//
//   $ ./build/examples/census_analytics

#include <cstdio>

#include "datagen/census.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"

int main() {
  using namespace viewrewrite;

  CensusConfig config;
  config.scale = 1;
  auto db = GenerateCensus(config);
  std::printf("census instance: %zu households, %zu persons\n",
              db->FindTable("household")->NumRows(),
              db->FindTable("person")->NumRows());

  PrivacyPolicy policy{"household"};

  std::vector<std::string> workload = {
      // Demographic count with aligned ranges.
      "SELECT COUNT(*) FROM person p WHERE p.p_age >= 18 AND p.p_sex = 1",
      // Join: people in high-income households of one state.
      "SELECT COUNT(*) FROM household h, person p WHERE h.h_id = p.p_hid "
      "AND h.h_state = 3 AND h.h_income >= 4096",
      // Correlated: earners above their own household's average income.
      "SELECT COUNT(*) FROM household h, person p WHERE h.h_id = p.p_hid "
      "AND p.p_income > (SELECT AVG(p2.p_income) FROM person p2 WHERE "
      "p2.p_hid = h.h_id)",
      // Non-correlated: income above the male population average.
      "SELECT COUNT(*) FROM person p WHERE p.p_income > (SELECT "
      "AVG(p2.p_income) FROM person p2 WHERE p2.p_sex = 0)",
      // Derived table: households with at least 4 members, by state.
      "SELECT COUNT(*) FROM household h, (SELECT p_hid, COUNT(*) AS cnt "
      "FROM person GROUP BY p_hid HAVING COUNT(*) >= 4) d WHERE h.h_id = "
      "d.p_hid AND h.h_state = 5",
  };

  EngineOptions options;
  options.epsilon = 8.0;
  options.seed = 1860;

  ViewRewriteEngine vr(*db, policy, options);
  PrivateSqlEngine ps(*db, policy, options);
  Status st = vr.Prepare(workload);
  if (!st.ok()) {
    std::fprintf(stderr, "ViewRewrite prepare failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  st = ps.Prepare(workload);
  if (!st.ok()) {
    std::fprintf(stderr, "PrivateSQL prepare failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  std::printf(
      "ViewRewrite publishes %zu views; the PrivateSQL baseline needs "
      "%zu.\n\n",
      vr.NumViews(), ps.NumViews());
  std::printf("%-4s %-12s %-12s %-12s\n", "Q", "true", "ViewRewrite",
              "PrivateSQL");
  for (size_t i = 0; i < workload.size(); ++i) {
    auto truth = vr.TrueAnswer(i);
    auto a = vr.NoisyAnswer(i);
    auto b = ps.NoisyAnswer(i);
    if (!truth.ok() || !a.ok() || !b.ok()) {
      std::fprintf(stderr, "query %zu failed\n", i);
      return 1;
    }
    std::printf("Q%-3zu %-12.1f %-12.1f %-12.1f\n", i + 1, *truth, *a, *b);
  }
  std::printf(
      "\nAll answers come from the published synopses: re-running a query "
      "costs no extra privacy budget.\n");
  return 0;
}
