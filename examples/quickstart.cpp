// Quickstart: build a tiny TPC-H instance, prepare a 3-query workload
// under ε-differential privacy with ViewRewrite, and compare noisy
// answers against the exact ones.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "datagen/tpch.h"
#include "engine/viewrewrite_engine.h"

int main() {
  using namespace viewrewrite;

  // 1. A deterministic synthetic TPC-H-schema database ("10M" scale).
  TpchConfig config;
  config.scale = 1;
  config.seed = 7;
  std::unique_ptr<Database> db = GenerateTpch(config);
  std::printf("database: %zu total rows across %zu relations\n",
              db->TotalRows(), db->schema().TableNames().size());

  // 2. The data owner's privacy policy: orders are the protected
  //    individuals; lineitem rows inherit protection through their
  //    foreign key.
  PrivacyPolicy policy{"orders"};

  // 3. A workload: plain filters, a correlated EXISTS, and a nested
  //    aggregate comparison. ViewRewrite rewrites all three onto a small
  //    set of views and publishes one private synopsis per view.
  std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 32768",

      "SELECT COUNT(*) FROM customer c WHERE c.c_mktsegment = 2 AND "
      "EXISTS (SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey)",

      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) FROM "
      "orders o2 WHERE o2.o_custkey = c.c_custkey)",
  };

  EngineOptions options;
  options.epsilon = 8.0;  // total privacy budget for the whole workload
  options.seed = 42;      // reproducible noise

  ViewRewriteEngine engine(*db, policy, options);
  Status st = engine.Prepare(workload);
  if (!st.ok()) {
    std::fprintf(stderr, "Prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("prepared %zu queries over %zu private views (eps = %.1f)\n\n",
              engine.NumQueries(), engine.NumViews(), options.epsilon);

  // 4. Every query is answered from the synopses — no further privacy
  //    cost, no matter how often you ask.
  for (size_t i = 0; i < workload.size(); ++i) {
    auto noisy = engine.NoisyAnswer(i);
    auto truth = engine.TrueAnswer(i);
    if (!noisy.ok() || !truth.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", i,
                   (!noisy.ok() ? noisy : truth).status().ToString().c_str());
      return 1;
    }
    std::printf("Q%zu  true = %10.1f   private = %10.1f   rel.err = %.4f\n",
                i + 1, *truth, *noisy, RelativeErrorMetric(*truth, *noisy));
    std::printf("    %s\n\n", workload[i].c_str());
  }
  return 0;
}
