#ifndef VIEWREWRITE_FUZZ_HARNESS_H_
#define VIEWREWRITE_FUZZ_HARNESS_H_

// Shared one-input fuzz entry points over the three untrusted-input
// boundaries: SQL text -> parser, SQL text -> full rewrite, raw bytes ->
// .vrsy bundle loader. Each function must be total: for ANY input it
// either succeeds or returns through a typed Status — no crash, no abort,
// no sanitizer finding, no unbounded memory. The libFuzzer wrappers
// (fuzz_*.cc), the GCC standalone driver, and the tier-1 corpus replay
// test (tests/fuzz/corpus_replay_test.cc) all funnel through these, so a
// crash found by any driver reproduces under all of them.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/limits.h"
#include "datagen/tpch.h"
#include "dp/budget_wal.h"
#include "rewrite/rewriter.h"
#include "serve/synopsis_store.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace viewrewrite {
namespace fuzz {

/// Tighter-than-default limits so the fuzzer spends its budget on parser
/// states rather than on megabyte inputs, and so every governance path is
/// reachable within small mutations.
inline const ResourceLimits& FuzzLimits() {
  static const ResourceLimits* limits = [] {
    auto* l = new ResourceLimits;
    l->max_sql_bytes = 64 * 1024;
    l->max_tokens = 16 * 1024;
    l->max_ast_depth = 96;
    l->max_ast_nodes = 32 * 1024;
    l->max_dnf_disjuncts = 16;
    l->max_ie_terms = 512;
    l->max_view_cells = 1u << 16;
    l->max_arena_bytes = 16u * 1024 * 1024;
    return l;
  }();
  return *limits;
}

/// Parser boundary: arbitrary bytes as SQL. On success the statement must
/// survive a canonical print -> reparse round trip (the printer and
/// parser agreeing is part of the bundle format's safety story: views are
/// persisted as canonical SQL).
inline void OneSqlParserInput(const uint8_t* data, size_t size) {
  std::string sql(reinterpret_cast<const char*>(data), size);
  Result<SelectStmtPtr> stmt = ParseSelect(sql, FuzzLimits());
  if (!stmt.ok()) return;
  std::string canonical = ToSql(**stmt);
  Result<SelectStmtPtr> again = ParseSelect(canonical, FuzzLimits());
  // Canonical rendering may legitimately re-trip a resource limit (it can
  // add explicit parentheses near the depth/token caps); any other
  // failure is a printer/parser disagreement and a real bug.
  if (!again.ok() &&
      again.status().code() != StatusCode::kResourceExhausted) {
    std::fprintf(stderr,
                 "canonical SQL failed to reparse:\n  %s\n  %s\n",
                 canonical.c_str(), again.status().ToString().c_str());
    std::abort();
  }
}

/// Rewrite boundary: parse then run the full Rule-1..20 rewriter against
/// the TPC-H schema (the schema the seed-corpus workloads target).
inline void OneRewriterInput(const uint8_t* data, size_t size) {
  static const Schema* schema = new Schema(MakeTpchSchema());
  std::string sql(reinterpret_cast<const char*>(data), size);
  Result<SelectStmtPtr> stmt = ParseSelect(sql, FuzzLimits());
  if (!stmt.ok()) return;
  RewriteOptions options;
  options.limits = FuzzLimits();
  Rewriter rewriter(*schema, options);
  Result<RewrittenQuery> rq = rewriter.Rewrite(**stmt);
  (void)rq;  // OK or typed Status — either is fine; crashing is not.
}

/// Loader boundary: arbitrary bytes as a .vrsy bundle. Load() takes a
/// path, so the input is staged through one per-process scratch file.
inline void OneVrsyLoaderInput(const uint8_t* data, size_t size) {
  static const Schema* schema = new Schema(MakeTpchSchema());
  static const std::string* path = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    return new std::string(dir + "/vr_fuzz_bundle_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".vrsy");
  }();
  std::FILE* f = std::fopen(path->c_str(), "wb");
  if (f == nullptr) return;
  if (size > 0) std::fwrite(data, 1, size, f);
  std::fclose(f);
  Result<SynopsisStore> store = SynopsisStore::Load(*path, *schema,
                                                    FuzzLimits());
  (void)store;
}

/// Budget-WAL boundary: arbitrary bytes as a write-ahead budget ledger.
/// Replay() takes a path, so the input is staged through one per-process
/// scratch file. The contract under fuzzing is the torn-tail semantics:
/// Replay either reconstructs a valid prefix or returns a typed
/// Status (kCorruption / kUnsupported) — never a crash, never an
/// unbounded allocation (a hostile length field must not be trusted),
/// and on success never a non-finite or negative spent total escaping
/// into an accountant unpoisoned.
inline void OneBudgetWalInput(const uint8_t* data, size_t size) {
  static const std::string* path = [] {
    const char* tmp = std::getenv("TMPDIR");
    std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    return new std::string(dir + "/vr_fuzz_budget_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".wal");
  }();
  std::FILE* f = std::fopen(path->c_str(), "wb");
  if (f == nullptr) return;
  if (size > 0) std::fwrite(data, 1, size, f);
  std::fclose(f);
  Result<BudgetWal::ReplayedLedger> replayed = BudgetWal::Replay(*path);
  if (!replayed.ok()) return;
  // Whatever replays must be safe to seed an accountant with: garbage
  // numerics poison rather than admit spending.
  BudgetAccountant acct(replayed->has_total ? replayed->total : 0.0,
                        replayed->spent, replayed->entries);
  (void)acct.remaining();
}

}  // namespace fuzz
}  // namespace viewrewrite

#endif  // VIEWREWRITE_FUZZ_HARNESS_H_
