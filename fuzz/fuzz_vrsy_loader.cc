// libFuzzer entry point for the .vrsy bundle loader boundary
// (fuzz/harness.h).

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  viewrewrite::fuzz::OneVrsyLoaderInput(data, size);
  return 0;
}
