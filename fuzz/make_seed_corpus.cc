// Generates the fuzz seed corpus: representative TPC-H / Census workload
// SQL (one file per query) and one valid published .vrsy bundle, so the
// mutators start from inputs that exercise deep parser/rewriter/loader
// paths rather than from empty strings.
//
//   make_seed_corpus OUTDIR   writes OUTDIR/sql/*.sql, OUTDIR/vrsy/*.vrsy
//                             and OUTDIR/wal/*.wal (budget-ledger seeds,
//                             including a torn-tail truncation)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "datagen/tpch.h"
#include "dp/budget_wal.h"
#include "engine/viewrewrite_engine.h"
#include "serve/synopsis_store.h"
#include "workload/workload.h"

namespace {

using viewrewrite::EngineOptions;
using viewrewrite::GenerateTpch;
using viewrewrite::PrivacyPolicy;
using viewrewrite::SynopsisStore;
using viewrewrite::TpchConfig;
using viewrewrite::ViewRewriteEngine;
using viewrewrite::WorkloadGenerator;
using viewrewrite::WorkloadQuery;

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return out.good();
}

int WriteSqlSeeds(const std::string& dir) {
  WorkloadGenerator gen(/*tpch_scale=*/1, /*seed=*/7);
  int written = 0;
  // One slice per workload family: mixed scalar (W1), correlated nested
  // (W16), non-correlated nested (W21), derived tables (W26), Census (W31).
  for (int w : {1, 16, 21, 26, 31}) {
    auto queries = gen.Generate(w);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload %d: %s\n", w,
                   queries.status().ToString().c_str());
      return -1;
    }
    size_t n = 0;
    for (const WorkloadQuery& q : *queries) {
      if (n >= 12) break;
      std::string name = dir + "/w" + std::to_string(w) + "_" +
                         std::to_string(n) + ".sql";
      if (!WriteFile(name, q.sql)) return -1;
      ++written;
      ++n;
    }
  }
  // Grouped / derived-measure statements: the workload generator emits
  // scalar aggregates only, so seed the GROUP BY / HAVING / AVG / VARIANCE
  // grammar explicitly — these reach the aggregate planner and the
  // RegisterGrouped proxy path in the rewriter.
  const char* grouped[] = {
      "SELECT o_orderstatus, COUNT(*) FROM orders o GROUP BY o_orderstatus",
      "SELECT o_orderstatus, AVG(o_totalprice) FROM orders o "
      "GROUP BY o_orderstatus HAVING COUNT(*) >= 2",
      "SELECT o_orderstatus, SUM(o_totalprice), VARIANCE(o_totalprice) "
      "FROM orders o GROUP BY o_orderstatus",
      "SELECT o_orderstatus, STDDEV(o_totalprice) FROM orders o "
      "WHERE o.o_totalprice >= 64 GROUP BY o_orderstatus "
      "HAVING AVG(o_totalprice) > 100",
      "SELECT c_mktsegment, o_orderstatus, COUNT(*) FROM customer c, "
      "orders o WHERE c.c_custkey = o.o_custkey "
      "GROUP BY c_mktsegment, o_orderstatus HAVING SUM(o_totalprice) >= 0",
  };
  for (size_t i = 0; i < sizeof(grouped) / sizeof(grouped[0]); ++i) {
    std::string name = dir + "/grouped_" + std::to_string(i) + ".sql";
    if (!WriteFile(name, grouped[i])) return -1;
    ++written;
  }
  return written;
}

int WriteVrsySeed(const std::string& dir) {
  TpchConfig config;
  config.scale = 1;
  config.customers = 60;
  config.parts = 40;
  auto db = GenerateTpch(config);

  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, EngineOptions{});
  WorkloadGenerator gen(1, 7);
  auto queries = gen.Generate(1);
  if (!queries.ok()) return -1;
  std::vector<std::string> workload;
  for (size_t i = 0; i < 12 && i < queries->size(); ++i) {
    workload.push_back((*queries)[i].sql);
  }
  if (!engine.Prepare(workload).ok()) return -1;

  auto store = SynopsisStore::FromManager(engine.views(), db->schema());
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return -1;
  }
  if (!store->Save(dir + "/tpch_seed.vrsy").ok()) return -1;
  return 1;
}

int WriteWalSeeds(const std::string& dir) {
  using viewrewrite::BudgetWal;
  // A real log with the full record vocabulary: total, spends, a refund,
  // and a checkpoint — the mutators start from every frame type.
  const std::string full = dir + "/budget_seed.wal";
  std::remove(full.c_str());
  {
    BudgetWal::Options options;
    options.compact_threshold_bytes = 0;  // keep every record in the seed
    auto wal = BudgetWal::Open(full, 12.0, options);
    if (!wal.ok()) {
      std::fprintf(stderr, "%s\n", wal.status().ToString().c_str());
      return -1;
    }
    if (!(*wal)->AppendSpend(6.0, "synopsis:initial").ok() ||
        !(*wal)->AppendSpend(0.8, "gen1:orders").ok() ||
        !(*wal)->AppendRefund(0.8, "refund:gen1:orders").ok() ||
        !(*wal)->AppendSpend(0.8, "gen2:customer,orders").ok() ||
        !(*wal)->AppendCheckpoint(2).ok()) {
      return -1;
    }
  }
  // The same log torn mid-record: the canonical crash shape the replay
  // path must shrug off (tests/dp/budget_wal_test.cc proves every offset;
  // the corpus keeps one representative in the mutation pool).
  std::ifstream in(full, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (blob.size() < 16) return -1;
  if (!WriteFile(dir + "/budget_torn.wal",
                 blob.substr(0, blob.size() - blob.size() / 3))) {
    return -1;
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUTDIR\n", argv[0]);
    return 2;
  }
  std::string out = argv[1];
  std::error_code ec;
  std::filesystem::create_directories(out + "/sql", ec);
  std::filesystem::create_directories(out + "/vrsy", ec);
  std::filesystem::create_directories(out + "/wal", ec);

  int sql = WriteSqlSeeds(out + "/sql");
  if (sql < 0) return 1;
  int vrsy = WriteVrsySeed(out + "/vrsy");
  if (vrsy < 0) return 1;
  int wal = WriteWalSeeds(out + "/wal");
  if (wal < 0) return 1;
  std::printf("seed corpus: %d SQL seeds, %d bundle(s), %d WAL(s) under %s\n",
              sql, vrsy, wal, out.c_str());
  return 0;
}
