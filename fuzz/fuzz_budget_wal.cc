// libFuzzer entry point for the budget-WAL replay boundary
// (fuzz/harness.h).

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  viewrewrite::fuzz::OneBudgetWalInput(data, size);
  return 0;
}
