// libFuzzer entry point for the parse -> rewrite boundary (fuzz/harness.h).

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  viewrewrite::fuzz::OneRewriterInput(data, size);
  return 0;
}
