// libFuzzer entry point for the SQL parser boundary (fuzz/harness.h).
// Built with -fsanitize=fuzzer under Clang; under GCC the same symbol is
// driven by fuzz/standalone_driver.cc instead.

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  viewrewrite::fuzz::OneSqlParserInput(data, size);
  return 0;
}
