// Minimal fuzz driver for toolchains without libFuzzer (GCC): links
// against one LLVMFuzzerTestOneInput and provides replay and a seeded,
// time-boxed mutation loop. This is deliberately a fraction of what
// libFuzzer does — no coverage feedback, no corpus minimization — but it
// is deterministic (same seed => same inputs), runs under ASan/UBSan, and
// is enough for the CI smoke: hammer the harness with structured garbage
// derived from real seeds and fail loudly on any crash.
//
//   driver FILE...                    replay each file once (regression mode)
//   driver --mutate DIR SECONDS [SEED]  mutate corpus files under DIR
//
// Exit status is 0 iff every input returned normally; a crash inside the
// harness terminates the process via the sanitizer/signal machinery, which
// is exactly what ci/check.sh treats as failure.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void RunOne(const std::vector<uint8_t>& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

/// One mutation step: byte flip, truncate, duplicate a chunk, insert
/// random bytes, or splice in a chunk from another corpus entry.
std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus,
                            std::mt19937_64& rng) {
  std::vector<uint8_t> out = corpus[rng() % corpus.size()];
  const int rounds = 1 + static_cast<int>(rng() % 4);
  for (int r = 0; r < rounds; ++r) {
    switch (rng() % 5) {
      case 0:  // flip / overwrite a byte
        if (!out.empty()) out[rng() % out.size()] = static_cast<uint8_t>(rng());
        break;
      case 1:  // truncate
        if (!out.empty()) out.resize(rng() % out.size());
        break;
      case 2: {  // duplicate a chunk in place
        if (out.empty()) break;
        size_t begin = rng() % out.size();
        size_t len = 1 + rng() % (out.size() - begin);
        if (out.size() + len > (1u << 20)) break;  // keep inputs small
        std::vector<uint8_t> chunk(out.begin() + begin,
                                   out.begin() + begin + len);
        out.insert(out.begin() + begin, chunk.begin(), chunk.end());
        break;
      }
      case 3: {  // insert random bytes
        size_t len = 1 + rng() % 16;
        size_t at = out.empty() ? 0 : rng() % out.size();
        for (size_t i = 0; i < len; ++i) {
          out.insert(out.begin() + at, static_cast<uint8_t>(rng()));
        }
        break;
      }
      case 4: {  // splice a chunk from another seed
        const std::vector<uint8_t>& other = corpus[rng() % corpus.size()];
        if (other.empty() || out.size() + other.size() > (1u << 20)) break;
        size_t begin = rng() % other.size();
        size_t len = 1 + rng() % (other.size() - begin);
        size_t at = out.empty() ? 0 : rng() % out.size();
        out.insert(out.begin() + at, other.begin() + begin,
                   other.begin() + begin + len);
        break;
      }
    }
  }
  return out;
}

int MutateMode(const std::string& dir, long seconds, uint64_t seed) {
  std::vector<std::vector<uint8_t>> corpus;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) corpus.push_back(ReadFile(entry.path()));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "no seed files under %s\n", dir.c_str());
    return 2;
  }
  // Every seed replays once first, then the mutation loop runs until the
  // time box expires.
  for (const auto& input : corpus) RunOne(input);
  std::mt19937_64 rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t execs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int burst = 0; burst < 64; ++burst, ++execs) {
      RunOne(Mutate(corpus, rng));
    }
  }
  std::fprintf(stderr, "mutation loop done: %llu execs over %lu seeds, %lds\n",
               static_cast<unsigned long long>(execs),
               static_cast<unsigned long>(corpus.size()), seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--mutate") == 0) {
    long seconds = (argc >= 4) ? std::atol(argv[3]) : 10;
    uint64_t seed = (argc >= 5) ? std::strtoull(argv[4], nullptr, 10) : 1;
    return MutateMode(argv[2], seconds, seed);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE...               replay files\n"
                 "       %s --mutate DIR SECS [SEED]\n",
                 argv[0], argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    RunOne(ReadFile(argv[i]));
  }
  std::fprintf(stderr, "replayed %d file(s) without crashing\n", argc - 1);
  return 0;
}
