file(REMOVE_RECURSE
  "libvr_view.a"
)
