
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/cell_eval.cc" "src/view/CMakeFiles/vr_view.dir/cell_eval.cc.o" "gcc" "src/view/CMakeFiles/vr_view.dir/cell_eval.cc.o.d"
  "/root/repo/src/view/synopsis.cc" "src/view/CMakeFiles/vr_view.dir/synopsis.cc.o" "gcc" "src/view/CMakeFiles/vr_view.dir/synopsis.cc.o.d"
  "/root/repo/src/view/view_def.cc" "src/view/CMakeFiles/vr_view.dir/view_def.cc.o" "gcc" "src/view/CMakeFiles/vr_view.dir/view_def.cc.o.d"
  "/root/repo/src/view/view_manager.cc" "src/view/CMakeFiles/vr_view.dir/view_manager.cc.o" "gcc" "src/view/CMakeFiles/vr_view.dir/view_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/vr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/vr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/vr_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vr_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
