# Empty dependencies file for vr_view.
# This may be replaced when dependencies are built.
