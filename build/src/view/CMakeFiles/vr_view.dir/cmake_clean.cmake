file(REMOVE_RECURSE
  "CMakeFiles/vr_view.dir/cell_eval.cc.o"
  "CMakeFiles/vr_view.dir/cell_eval.cc.o.d"
  "CMakeFiles/vr_view.dir/synopsis.cc.o"
  "CMakeFiles/vr_view.dir/synopsis.cc.o.d"
  "CMakeFiles/vr_view.dir/view_def.cc.o"
  "CMakeFiles/vr_view.dir/view_def.cc.o.d"
  "CMakeFiles/vr_view.dir/view_manager.cc.o"
  "CMakeFiles/vr_view.dir/view_manager.cc.o.d"
  "libvr_view.a"
  "libvr_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
