# Empty compiler generated dependencies file for vr_common.
# This may be replaced when dependencies are built.
