file(REMOVE_RECURSE
  "CMakeFiles/vr_common.dir/random.cc.o"
  "CMakeFiles/vr_common.dir/random.cc.o.d"
  "CMakeFiles/vr_common.dir/status.cc.o"
  "CMakeFiles/vr_common.dir/status.cc.o.d"
  "CMakeFiles/vr_common.dir/strings.cc.o"
  "CMakeFiles/vr_common.dir/strings.cc.o.d"
  "libvr_common.a"
  "libvr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
