# Empty dependencies file for vr_engine.
# This may be replaced when dependencies are built.
