file(REMOVE_RECURSE
  "libvr_engine.a"
)
