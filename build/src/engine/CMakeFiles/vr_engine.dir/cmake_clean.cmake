file(REMOVE_RECURSE
  "CMakeFiles/vr_engine.dir/private_sql_engine.cc.o"
  "CMakeFiles/vr_engine.dir/private_sql_engine.cc.o.d"
  "CMakeFiles/vr_engine.dir/viewrewrite_engine.cc.o"
  "CMakeFiles/vr_engine.dir/viewrewrite_engine.cc.o.d"
  "libvr_engine.a"
  "libvr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
