file(REMOVE_RECURSE
  "libvr_rewrite.a"
)
