# Empty dependencies file for vr_rewrite.
# This may be replaced when dependencies are built.
