
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/analysis.cc" "src/rewrite/CMakeFiles/vr_rewrite.dir/analysis.cc.o" "gcc" "src/rewrite/CMakeFiles/vr_rewrite.dir/analysis.cc.o.d"
  "/root/repo/src/rewrite/classifier.cc" "src/rewrite/CMakeFiles/vr_rewrite.dir/classifier.cc.o" "gcc" "src/rewrite/CMakeFiles/vr_rewrite.dir/classifier.cc.o.d"
  "/root/repo/src/rewrite/dnf.cc" "src/rewrite/CMakeFiles/vr_rewrite.dir/dnf.cc.o" "gcc" "src/rewrite/CMakeFiles/vr_rewrite.dir/dnf.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/rewrite/CMakeFiles/vr_rewrite.dir/rewriter.cc.o" "gcc" "src/rewrite/CMakeFiles/vr_rewrite.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/vr_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
