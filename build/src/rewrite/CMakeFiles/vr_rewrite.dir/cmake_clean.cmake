file(REMOVE_RECURSE
  "CMakeFiles/vr_rewrite.dir/analysis.cc.o"
  "CMakeFiles/vr_rewrite.dir/analysis.cc.o.d"
  "CMakeFiles/vr_rewrite.dir/classifier.cc.o"
  "CMakeFiles/vr_rewrite.dir/classifier.cc.o.d"
  "CMakeFiles/vr_rewrite.dir/dnf.cc.o"
  "CMakeFiles/vr_rewrite.dir/dnf.cc.o.d"
  "CMakeFiles/vr_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/vr_rewrite.dir/rewriter.cc.o.d"
  "libvr_rewrite.a"
  "libvr_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
