file(REMOVE_RECURSE
  "CMakeFiles/vr_workload.dir/workload.cc.o"
  "CMakeFiles/vr_workload.dir/workload.cc.o.d"
  "libvr_workload.a"
  "libvr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
