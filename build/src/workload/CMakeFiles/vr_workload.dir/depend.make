# Empty dependencies file for vr_workload.
# This may be replaced when dependencies are built.
