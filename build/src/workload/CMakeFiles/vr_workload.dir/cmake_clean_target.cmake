file(REMOVE_RECURSE
  "libvr_workload.a"
)
