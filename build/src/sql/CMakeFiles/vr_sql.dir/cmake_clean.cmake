file(REMOVE_RECURSE
  "CMakeFiles/vr_sql.dir/ast.cc.o"
  "CMakeFiles/vr_sql.dir/ast.cc.o.d"
  "CMakeFiles/vr_sql.dir/parser.cc.o"
  "CMakeFiles/vr_sql.dir/parser.cc.o.d"
  "CMakeFiles/vr_sql.dir/printer.cc.o"
  "CMakeFiles/vr_sql.dir/printer.cc.o.d"
  "CMakeFiles/vr_sql.dir/token.cc.o"
  "CMakeFiles/vr_sql.dir/token.cc.o.d"
  "CMakeFiles/vr_sql.dir/value.cc.o"
  "CMakeFiles/vr_sql.dir/value.cc.o.d"
  "libvr_sql.a"
  "libvr_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
