# Empty compiler generated dependencies file for vr_sql.
# This may be replaced when dependencies are built.
