file(REMOVE_RECURSE
  "libvr_sql.a"
)
