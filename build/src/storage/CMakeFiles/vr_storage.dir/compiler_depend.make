# Empty compiler generated dependencies file for vr_storage.
# This may be replaced when dependencies are built.
