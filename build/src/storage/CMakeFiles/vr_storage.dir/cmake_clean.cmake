file(REMOVE_RECURSE
  "CMakeFiles/vr_storage.dir/csv.cc.o"
  "CMakeFiles/vr_storage.dir/csv.cc.o.d"
  "CMakeFiles/vr_storage.dir/table.cc.o"
  "CMakeFiles/vr_storage.dir/table.cc.o.d"
  "libvr_storage.a"
  "libvr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
