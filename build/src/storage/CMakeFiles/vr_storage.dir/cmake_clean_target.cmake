file(REMOVE_RECURSE
  "libvr_storage.a"
)
