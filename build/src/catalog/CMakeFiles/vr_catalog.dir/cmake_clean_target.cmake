file(REMOVE_RECURSE
  "libvr_catalog.a"
)
