file(REMOVE_RECURSE
  "CMakeFiles/vr_catalog.dir/schema.cc.o"
  "CMakeFiles/vr_catalog.dir/schema.cc.o.d"
  "libvr_catalog.a"
  "libvr_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
