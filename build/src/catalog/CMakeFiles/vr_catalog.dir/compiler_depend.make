# Empty compiler generated dependencies file for vr_catalog.
# This may be replaced when dependencies are built.
