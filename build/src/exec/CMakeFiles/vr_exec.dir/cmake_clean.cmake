file(REMOVE_RECURSE
  "CMakeFiles/vr_exec.dir/executor.cc.o"
  "CMakeFiles/vr_exec.dir/executor.cc.o.d"
  "libvr_exec.a"
  "libvr_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
