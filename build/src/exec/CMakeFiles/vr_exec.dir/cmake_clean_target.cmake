file(REMOVE_RECURSE
  "libvr_exec.a"
)
