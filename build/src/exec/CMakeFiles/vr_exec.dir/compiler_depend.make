# Empty compiler generated dependencies file for vr_exec.
# This may be replaced when dependencies are built.
