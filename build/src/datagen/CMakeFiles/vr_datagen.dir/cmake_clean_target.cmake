file(REMOVE_RECURSE
  "libvr_datagen.a"
)
