file(REMOVE_RECURSE
  "CMakeFiles/vr_datagen.dir/census.cc.o"
  "CMakeFiles/vr_datagen.dir/census.cc.o.d"
  "CMakeFiles/vr_datagen.dir/tpch.cc.o"
  "CMakeFiles/vr_datagen.dir/tpch.cc.o.d"
  "libvr_datagen.a"
  "libvr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
