# Empty dependencies file for vr_datagen.
# This may be replaced when dependencies are built.
