
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/budget.cc" "src/dp/CMakeFiles/vr_dp.dir/budget.cc.o" "gcc" "src/dp/CMakeFiles/vr_dp.dir/budget.cc.o.d"
  "/root/repo/src/dp/matrix_mechanism.cc" "src/dp/CMakeFiles/vr_dp.dir/matrix_mechanism.cc.o" "gcc" "src/dp/CMakeFiles/vr_dp.dir/matrix_mechanism.cc.o.d"
  "/root/repo/src/dp/mechanism.cc" "src/dp/CMakeFiles/vr_dp.dir/mechanism.cc.o" "gcc" "src/dp/CMakeFiles/vr_dp.dir/mechanism.cc.o.d"
  "/root/repo/src/dp/truncation.cc" "src/dp/CMakeFiles/vr_dp.dir/truncation.cc.o" "gcc" "src/dp/CMakeFiles/vr_dp.dir/truncation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
