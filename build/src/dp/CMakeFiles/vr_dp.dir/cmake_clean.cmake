file(REMOVE_RECURSE
  "CMakeFiles/vr_dp.dir/budget.cc.o"
  "CMakeFiles/vr_dp.dir/budget.cc.o.d"
  "CMakeFiles/vr_dp.dir/matrix_mechanism.cc.o"
  "CMakeFiles/vr_dp.dir/matrix_mechanism.cc.o.d"
  "CMakeFiles/vr_dp.dir/mechanism.cc.o"
  "CMakeFiles/vr_dp.dir/mechanism.cc.o.d"
  "CMakeFiles/vr_dp.dir/truncation.cc.o"
  "CMakeFiles/vr_dp.dir/truncation.cc.o.d"
  "libvr_dp.a"
  "libvr_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
