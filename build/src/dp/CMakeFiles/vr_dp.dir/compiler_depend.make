# Empty compiler generated dependencies file for vr_dp.
# This may be replaced when dependencies are built.
