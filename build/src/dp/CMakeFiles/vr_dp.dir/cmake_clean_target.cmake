file(REMOVE_RECURSE
  "libvr_dp.a"
)
