file(REMOVE_RECURSE
  "CMakeFiles/fig5_workloads.dir/fig5_workloads.cc.o"
  "CMakeFiles/fig5_workloads.dir/fig5_workloads.cc.o.d"
  "fig5_workloads"
  "fig5_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
