file(REMOVE_RECURSE
  "CMakeFiles/fig6_time.dir/fig6_time.cc.o"
  "CMakeFiles/fig6_time.dir/fig6_time.cc.o.d"
  "fig6_time"
  "fig6_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
