file(REMOVE_RECURSE
  "CMakeFiles/ablation_rules.dir/ablation_rules.cc.o"
  "CMakeFiles/ablation_rules.dir/ablation_rules.cc.o.d"
  "ablation_rules"
  "ablation_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
