file(REMOVE_RECURSE
  "CMakeFiles/fig6_workloads.dir/fig6_workloads.cc.o"
  "CMakeFiles/fig6_workloads.dir/fig6_workloads.cc.o.d"
  "fig6_workloads"
  "fig6_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
