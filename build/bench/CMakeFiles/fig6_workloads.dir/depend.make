# Empty dependencies file for fig6_workloads.
# This may be replaced when dependencies are built.
