file(REMOVE_RECURSE
  "CMakeFiles/fig5_census.dir/fig5_census.cc.o"
  "CMakeFiles/fig5_census.dir/fig5_census.cc.o.d"
  "fig5_census"
  "fig5_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
