# Empty dependencies file for fig5_census.
# This may be replaced when dependencies are built.
