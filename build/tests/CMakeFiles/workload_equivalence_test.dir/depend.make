# Empty dependencies file for workload_equivalence_test.
# This may be replaced when dependencies are built.
