file(REMOVE_RECURSE
  "CMakeFiles/grouped_test.dir/view/grouped_test.cc.o"
  "CMakeFiles/grouped_test.dir/view/grouped_test.cc.o.d"
  "grouped_test"
  "grouped_test.pdb"
  "grouped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
