# Empty compiler generated dependencies file for cell_eval_test.
# This may be replaced when dependencies are built.
