file(REMOVE_RECURSE
  "CMakeFiles/cell_eval_test.dir/view/cell_eval_test.cc.o"
  "CMakeFiles/cell_eval_test.dir/view/cell_eval_test.cc.o.d"
  "cell_eval_test"
  "cell_eval_test.pdb"
  "cell_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
