file(REMOVE_RECURSE
  "CMakeFiles/budget_allocation_test.dir/view/budget_allocation_test.cc.o"
  "CMakeFiles/budget_allocation_test.dir/view/budget_allocation_test.cc.o.d"
  "budget_allocation_test"
  "budget_allocation_test.pdb"
  "budget_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
