file(REMOVE_RECURSE
  "CMakeFiles/random_predicate_test.dir/rewrite/random_predicate_test.cc.o"
  "CMakeFiles/random_predicate_test.dir/rewrite/random_predicate_test.cc.o.d"
  "random_predicate_test"
  "random_predicate_test.pdb"
  "random_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
