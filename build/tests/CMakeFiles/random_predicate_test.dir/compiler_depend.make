# Empty compiler generated dependencies file for random_predicate_test.
# This may be replaced when dependencies are built.
