file(REMOVE_RECURSE
  "CMakeFiles/insensitive_test.dir/view/insensitive_test.cc.o"
  "CMakeFiles/insensitive_test.dir/view/insensitive_test.cc.o.d"
  "insensitive_test"
  "insensitive_test.pdb"
  "insensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
