# Empty compiler generated dependencies file for insensitive_test.
# This may be replaced when dependencies are built.
