# Empty dependencies file for private_sql_test.
# This may be replaced when dependencies are built.
