file(REMOVE_RECURSE
  "CMakeFiles/private_sql_test.dir/engine/private_sql_test.cc.o"
  "CMakeFiles/private_sql_test.dir/engine/private_sql_test.cc.o.d"
  "private_sql_test"
  "private_sql_test.pdb"
  "private_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
