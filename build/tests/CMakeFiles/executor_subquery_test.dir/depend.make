# Empty dependencies file for executor_subquery_test.
# This may be replaced when dependencies are built.
