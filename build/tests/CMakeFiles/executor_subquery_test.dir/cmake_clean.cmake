file(REMOVE_RECURSE
  "CMakeFiles/executor_subquery_test.dir/exec/executor_subquery_test.cc.o"
  "CMakeFiles/executor_subquery_test.dir/exec/executor_subquery_test.cc.o.d"
  "executor_subquery_test"
  "executor_subquery_test.pdb"
  "executor_subquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_subquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
