file(REMOVE_RECURSE
  "CMakeFiles/rewriter_rules_test.dir/rewrite/rewriter_rules_test.cc.o"
  "CMakeFiles/rewriter_rules_test.dir/rewrite/rewriter_rules_test.cc.o.d"
  "rewriter_rules_test"
  "rewriter_rules_test.pdb"
  "rewriter_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriter_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
