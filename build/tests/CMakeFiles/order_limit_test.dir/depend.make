# Empty dependencies file for order_limit_test.
# This may be replaced when dependencies are built.
