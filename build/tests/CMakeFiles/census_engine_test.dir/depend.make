# Empty dependencies file for census_engine_test.
# This may be replaced when dependencies are built.
