file(REMOVE_RECURSE
  "CMakeFiles/census_engine_test.dir/engine/census_engine_test.cc.o"
  "CMakeFiles/census_engine_test.dir/engine/census_engine_test.cc.o.d"
  "census_engine_test"
  "census_engine_test.pdb"
  "census_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
