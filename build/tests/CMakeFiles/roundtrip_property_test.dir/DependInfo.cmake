
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql/roundtrip_property_test.cc" "tests/CMakeFiles/roundtrip_property_test.dir/sql/roundtrip_property_test.cc.o" "gcc" "tests/CMakeFiles/roundtrip_property_test.dir/sql/roundtrip_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/vr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/vr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/vr_view.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/vr_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/vr_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/vr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vr_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
