file(REMOVE_RECURSE
  "CMakeFiles/executor_errors_test.dir/exec/executor_errors_test.cc.o"
  "CMakeFiles/executor_errors_test.dir/exec/executor_errors_test.cc.o.d"
  "executor_errors_test"
  "executor_errors_test.pdb"
  "executor_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
