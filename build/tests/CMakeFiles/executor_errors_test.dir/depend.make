# Empty dependencies file for executor_errors_test.
# This may be replaced when dependencies are built.
