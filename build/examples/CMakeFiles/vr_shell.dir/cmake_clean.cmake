file(REMOVE_RECURSE
  "CMakeFiles/vr_shell.dir/vr_shell.cpp.o"
  "CMakeFiles/vr_shell.dir/vr_shell.cpp.o.d"
  "vr_shell"
  "vr_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
