# Empty dependencies file for vr_shell.
# This may be replaced when dependencies are built.
