# Empty compiler generated dependencies file for rewrite_explorer.
# This may be replaced when dependencies are built.
