#include "dp/truncation.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

TEST(TruncationTest, DownwardLocalSensitivityIsMaxContribution) {
  EXPECT_EQ(DownwardLocalSensitivity({1, 5, 3}), 5);
  EXPECT_EQ(DownwardLocalSensitivity({}), 0);
}

TEST(TruncationTest, TruncatedTotalClampsPerTuple) {
  EXPECT_EQ(TruncatedTotal({1, 5, 3}, 2), 1 + 2 + 2);
  EXPECT_EQ(TruncatedTotal({1, 5, 3}, 10), 9);
}

TEST(TruncationTest, EmptyContributionsPickTauOne) {
  Random rng(1);
  auto tau = SelectTruncationThreshold({}, 0.5, 0.5, &rng);
  ASSERT_TRUE(tau.ok());
  EXPECT_EQ(*tau, 1);
}

TEST(TruncationTest, UniformContributionsPickSmallTau) {
  // All tuples contribute exactly 1: tau = 1 loses nothing.
  Random rng(2);
  std::vector<double> contribs(1000, 1.0);
  auto tau = SelectTruncationThreshold(contribs, 4.0, 4.0, &rng);
  ASSERT_TRUE(tau.ok());
  EXPECT_EQ(*tau, 1);
}

TEST(TruncationTest, SkewedContributionsPickTauCoveringBulk) {
  // 1000 tuples contribute 8 each, one outlier contributes 512. The SVT
  // accepts the first tau whose truncation loss drops below the noise
  // level, so tau must at least cover the bulk and keep most of the mass.
  Random rng(3);
  std::vector<double> contribs(1000, 8.0);
  contribs.push_back(512.0);
  auto tau = SelectTruncationThreshold(contribs, 2.0, 2.0, &rng);
  ASSERT_TRUE(tau.ok());
  EXPECT_GE(*tau, 8);
  double total = 8.0 * 1000 + 512.0;
  EXPECT_GT(TruncatedTotal(contribs, static_cast<double>(*tau)),
            0.9 * total);
}

TEST(TruncationTest, RejectsNonPositiveBudgets) {
  Random rng(4);
  EXPECT_FALSE(SelectTruncationThreshold({1.0}, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(SelectTruncationThreshold({1.0}, 1.0, -1.0, &rng).ok());
}

TEST(TruncationTest, DeterministicGivenSeed) {
  std::vector<double> contribs;
  Random data_rng(5);
  for (int i = 0; i < 500; ++i) {
    contribs.push_back(static_cast<double>(data_rng.UniformInt(1, 40)));
  }
  Random a(77);
  Random b(77);
  auto ta = SelectTruncationThreshold(contribs, 1.0, 1.0, &a);
  auto tb = SelectTruncationThreshold(contribs, 1.0, 1.0, &b);
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_EQ(*ta, *tb);
}

TEST(TruncationTest, TruncatedTotalApproachesTrueTotalAtSelectedTau) {
  // Property: at the selected tau, the truncated total should retain most
  // of the mass on a moderately skewed distribution (high epsilon).
  Random data_rng(6);
  std::vector<double> contribs;
  double total = 0;
  for (int i = 0; i < 2000; ++i) {
    double c = static_cast<double>(data_rng.Zipf(64, 1.3));
    contribs.push_back(c);
    total += c;
  }
  Random rng(8);
  auto tau = SelectTruncationThreshold(contribs, 8.0, 8.0, &rng);
  ASSERT_TRUE(tau.ok());
  double kept = TruncatedTotal(contribs, static_cast<double>(*tau));
  EXPECT_GT(kept, 0.8 * total);
}

}  // namespace
}  // namespace viewrewrite
