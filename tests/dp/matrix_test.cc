#include "dp/matrix_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace viewrewrite {
namespace {

TEST(IdentityStrategyTest, PreservesSizeAndApproximatesCells) {
  Random rng(1);
  std::vector<double> cells = {100, 0, 50, 200};
  auto noisy = PublishIdentity(cells, 1.0, 4.0, &rng);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 4u);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_NEAR((*noisy)[i], cells[i], 10.0);
  }
}

TEST(IdentityStrategyTest, RejectsBadEpsilon) {
  Random rng(1);
  EXPECT_FALSE(PublishIdentity({1.0}, 1.0, 0.0, &rng).ok());
}

TEST(IdentityStrategyTest, NoiseMagnitudeMatchesScale) {
  Random rng(2);
  std::vector<double> cells(20000, 0.0);
  auto noisy = PublishIdentity(cells, 2.0, 1.0, &rng);
  ASSERT_TRUE(noisy.ok());
  double abs_dev = 0;
  for (double v : *noisy) abs_dev += std::fabs(v);
  // E|Lap(b)| = b = sensitivity / epsilon = 2.
  EXPECT_NEAR(abs_dev / noisy->size(), 2.0, 0.1);
}

TEST(HierarchicalTest, RangeSumApproximatesTruth) {
  Random rng(3);
  std::vector<double> cells(64);
  std::iota(cells.begin(), cells.end(), 0.0);  // 0..63
  auto h = HierarchicalHistogram::Publish(cells, 1.0, 8.0, &rng);
  ASSERT_TRUE(h.ok());
  auto r = h->RangeSum(0, 63);
  ASSERT_TRUE(r.ok());
  double truth = 63.0 * 64.0 / 2.0;
  EXPECT_NEAR(*r, truth, 40.0);

  auto mid = h->RangeSum(10, 20);
  ASSERT_TRUE(mid.ok());
  double mid_truth = 0;
  for (int i = 10; i <= 20; ++i) mid_truth += i;
  EXPECT_NEAR(*mid, mid_truth, 40.0);
}

TEST(HierarchicalTest, ClampsOutOfRangeQueries) {
  Random rng(4);
  std::vector<double> cells = {5, 5, 5, 5};
  auto h = HierarchicalHistogram::Publish(cells, 1.0, 50.0, &rng);
  ASSERT_TRUE(h.ok());
  auto r = h->RangeSum(-10, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 20.0, 5.0);
  auto empty = h->RangeSum(3, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0.0);
}

TEST(HierarchicalTest, PadsNonPowerOfTwo) {
  Random rng(5);
  std::vector<double> cells = {1, 2, 3, 4, 5};  // padded to 8
  auto h = HierarchicalHistogram::Publish(cells, 1.0, 100.0, &rng);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_cells(), 5);
  auto r = h->RangeSum(0, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 15.0, 3.0);
}

TEST(HierarchicalTest, LongRangeBeatsIdentityOnNoise) {
  // The motivation for the hierarchical strategy: a range covering most
  // cells aggregates O(log n) noisy nodes instead of O(n) noisy cells.
  // The hierarchical advantage kicks in once the range length exceeds
  // ~log^3(n); use a domain large enough for that regime.
  const int n = 8192;
  std::vector<double> cells(n, 0.0);
  double id_err = 0;
  double h_err = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Random rng_id(seed);
    auto noisy = PublishIdentity(cells, 1.0, 1.0, &rng_id);
    ASSERT_TRUE(noisy.ok());
    double s = 0;
    for (int i = 0; i < n - 1; ++i) s += (*noisy)[i];
    id_err += std::fabs(s);

    Random rng_h(seed + 1000);
    auto h = HierarchicalHistogram::Publish(cells, 1.0, 1.0, &rng_h);
    ASSERT_TRUE(h.ok());
    auto r = h->RangeSum(0, n - 2);
    ASSERT_TRUE(r.ok());
    h_err += std::fabs(*r);
  }
  EXPECT_LT(h_err, id_err);
}

TEST(HierarchicalTest, EmptyHistogram) {
  Random rng(6);
  auto h = HierarchicalHistogram::Publish({}, 1.0, 1.0, &rng);
  ASSERT_TRUE(h.ok());
  auto r = h->RangeSum(0, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0.0);
}

}  // namespace
}  // namespace viewrewrite
