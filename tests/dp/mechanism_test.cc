#include "dp/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fault_injection.h"

namespace viewrewrite {
namespace {

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  auto s = LaplaceMechanism::Scale(2.0, 0.5);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 4.0);
}

TEST(LaplaceMechanismTest, RejectsNonPositiveEpsilon) {
  EXPECT_FALSE(LaplaceMechanism::Scale(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Scale(1.0, -1.0).ok());
  EXPECT_EQ(LaplaceMechanism::Scale(1.0, -1.0).status().code(),
            StatusCode::kPrivacyError);
}

TEST(LaplaceMechanismTest, RejectsNegativeSensitivity) {
  EXPECT_FALSE(LaplaceMechanism::Scale(-1.0, 1.0).ok());
}

TEST(LaplaceMechanismTest, ZeroSensitivityIsExact) {
  Random rng(1);
  auto r = LaplaceMechanism::Release(42.0, 0.0, 1.0, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42.0);
}

TEST(LaplaceMechanismTest, NoiseConcentratesAroundTruth) {
  Random rng(7);
  const double sensitivity = 1.0;
  const double eps = 1.0;
  const int n = 100000;
  double sum = 0;
  double abs_dev = 0;
  for (int i = 0; i < n; ++i) {
    auto r = LaplaceMechanism::Release(100.0, sensitivity, eps, &rng);
    ASSERT_TRUE(r.ok());
    sum += *r;
    abs_dev += std::fabs(*r - 100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 0.05);
  // E[|Lap(b)|] = b = 1.
  EXPECT_NEAR(abs_dev / n, 1.0, 0.05);
}

TEST(LaplaceMechanismTest, NonFiniteReleaseRejected) {
  Random rng(3);
  auto inf = LaplaceMechanism::Release(std::numeric_limits<double>::infinity(),
                                       1.0, 1.0, &rng);
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.status().code(), StatusCode::kPrivacyError);
  auto nan = LaplaceMechanism::Release(std::nan(""), 1.0, 1.0, &rng);
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.status().code(), StatusCode::kPrivacyError);
}

TEST(LaplaceMechanismTest, FaultPointIsInjectable) {
  Random rng(5);
  {
    ScopedFault fault = ScopedFault::OnNth(
        faults::kDpMechanism, 1, Status::PrivacyError("injected"));
    auto r = LaplaceMechanism::Release(1.0, 1.0, 1.0, &rng);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().message(), "injected");
  }
  EXPECT_TRUE(LaplaceMechanism::Release(1.0, 1.0, 1.0, &rng).ok());
}

TEST(LaplaceMechanismTest, NoiseShrinksWithEpsilon) {
  Random rng(11);
  double dev_small_eps = 0;
  double dev_large_eps = 0;
  for (int i = 0; i < 20000; ++i) {
    dev_small_eps += std::fabs(*LaplaceMechanism::Release(0, 1, 0.1, &rng));
    dev_large_eps += std::fabs(*LaplaceMechanism::Release(0, 1, 10, &rng));
  }
  EXPECT_GT(dev_small_eps, dev_large_eps * 10);
}

}  // namespace
}  // namespace viewrewrite
