#include "dp/budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace viewrewrite {
namespace {

TEST(BudgetTest, SequentialCompositionAccumulates) {
  BudgetAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.3, "a").ok());
  EXPECT_TRUE(acc.Spend(0.3, "b").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.6);
  EXPECT_DOUBLE_EQ(acc.remaining(), 0.4);
}

TEST(BudgetTest, OverspendRejectedWithoutSideEffect) {
  BudgetAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.9, "a").ok());
  Status s = acc.Spend(0.2, "b");
  EXPECT_EQ(s.code(), StatusCode::kPrivacyError);
  EXPECT_DOUBLE_EQ(acc.spent(), 0.9);  // failed spend not recorded
}

TEST(BudgetTest, ExactExhaustionAllowed) {
  BudgetAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acc.Spend(0.1, "slice").ok()) << i;
  }
  // Floating-point tolerance: the ten 0.1 spends must fill the budget.
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-9);
}

TEST(BudgetTest, NonPositiveSpendRejected) {
  BudgetAccountant acc(1.0);
  EXPECT_FALSE(acc.Spend(0.0, "zero").ok());
  EXPECT_FALSE(acc.Spend(-0.5, "negative").ok());
}

TEST(BudgetTest, LedgerRecordsLabels) {
  BudgetAccountant acc(2.0);
  ASSERT_TRUE(acc.Spend(0.5, "view:a").ok());
  ASSERT_TRUE(acc.Spend(1.0, "view:b").ok());
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].label, "view:a");
  EXPECT_EQ(acc.ledger()[1].epsilon, 1.0);
}

TEST(BudgetTest, RefundRestoresBudgetAndIsLedgered) {
  BudgetAccountant acc(1.0);
  ASSERT_TRUE(acc.Spend(0.6, "view:a").ok());
  ASSERT_TRUE(acc.Refund(0.4, "refund:view:a").ok());
  EXPECT_NEAR(acc.spent(), 0.2, 1e-12);
  EXPECT_NEAR(acc.remaining(), 0.8, 1e-12);
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_TRUE(acc.ledger().back().refund);
  EXPECT_DOUBLE_EQ(acc.ledger().back().epsilon, -0.4);
  EXPECT_EQ(acc.ledger().back().label, "refund:view:a");
  EXPECT_FALSE(acc.ledger().front().refund);
}

TEST(BudgetTest, RefundRejectsMoreThanSpent) {
  BudgetAccountant acc(1.0);
  ASSERT_TRUE(acc.Spend(0.3, "a").ok());
  Status s = acc.Refund(0.5, "too-much");
  EXPECT_EQ(s.code(), StatusCode::kPrivacyError);
  EXPECT_DOUBLE_EQ(acc.spent(), 0.3);  // failed refund not recorded
}

TEST(BudgetTest, RefundRejectsNonFiniteOrNonPositive) {
  BudgetAccountant acc(1.0);
  ASSERT_TRUE(acc.Spend(0.5, "a").ok());
  EXPECT_FALSE(acc.Refund(0.0, "zero").ok());
  EXPECT_FALSE(acc.Refund(-0.1, "negative").ok());
  EXPECT_FALSE(acc.Refund(std::nan(""), "nan").ok());
  EXPECT_FALSE(acc.Refund(std::numeric_limits<double>::infinity(), "inf").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.5);
}

TEST(BudgetTest, FullRefundComposesAsNeverSpent) {
  BudgetAccountant acc(1.0);
  ASSERT_TRUE(acc.Spend(1.0, "view:a").ok());
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-9);
  ASSERT_TRUE(acc.Refund(1.0, "refund:view:a").ok());
  EXPECT_TRUE(acc.Spend(1.0, "view:b").ok());
}

TEST(BudgetTest, NonFiniteTotalPoisonsAccountant) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(), -1.0}) {
    BudgetAccountant acc(bad);
    Status s = acc.Spend(0.1, "a");
    EXPECT_EQ(s.code(), StatusCode::kPrivacyError) << bad;
    EXPECT_FALSE(acc.Refund(0.1, "b").ok()) << bad;
    EXPECT_GE(acc.remaining(), 0.0) << bad;
  }
}

TEST(BudgetTest, NonFiniteSpendRejected) {
  BudgetAccountant acc(1.0);
  EXPECT_FALSE(acc.Spend(std::nan(""), "nan").ok());
  EXPECT_FALSE(acc.Spend(std::numeric_limits<double>::infinity(), "inf").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.0);
  EXPECT_TRUE(acc.ledger().empty());
}

TEST(BudgetTest, RemainingNeverGoesNegative) {
  BudgetAccountant acc(0.3);
  // Three 0.1 spends can drift past 0.3 in floating point; remaining()
  // must clamp instead of reporting a negative budget.
  ASSERT_TRUE(acc.Spend(0.1, "a").ok());
  ASSERT_TRUE(acc.Spend(0.1, "b").ok());
  ASSERT_TRUE(acc.Spend(0.1, "c").ok());
  EXPECT_GE(acc.remaining(), 0.0);
}

TEST(BudgetTest, ConcurrentSpendAndRefundHoldsInvariantAtomically) {
  // The synopsis lifecycle spends and refunds per-generation slices from
  // a republisher thread while other threads read the ledger for bundle
  // metadata. The invariant must hold atomically, not just at quiescence:
  // every sampled spent() stays within total, every Spend either fully
  // lands or fully fails, and each successful Spend's matching Refund
  // restores exactly its slice.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  constexpr double kSlice = 0.01;
  // Room for roughly half the spends at any instant, so rejections and
  // successes interleave under contention.
  BudgetAccountant acc(kThreads * kOpsPerThread * kSlice / 2);

  std::vector<int> landed(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&acc, &landed, t] {
      const std::string label = "gen" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (acc.Spend(kSlice, label).ok()) {
          ++landed[t];
          // Odd iterations model a discarded generation: refund the
          // exact slice that landed.
          if (i % 2 == 1) {
            ASSERT_TRUE(acc.Refund(kSlice, "refund:" + label).ok());
            --landed[t];
          }
        }
        // A concurrent reader's view must never catch a torn spend.
        ASSERT_LE(acc.spent(), acc.total() + 1e-9);
        ASSERT_GE(acc.remaining(), 0.0);
      }
    });
  }
  // Concurrent ledger snapshots: by-value copies taken mid-growth must be
  // internally consistent (entries carry their sign — refunds are
  // negative — and sum to a value within budget).
  std::thread reader([&acc] {
    for (int i = 0; i < 200; ++i) {
      double sum = 0;
      for (const BudgetAccountant::Entry& e : acc.ledger()) {
        sum += e.epsilon;
      }
      ASSERT_LE(sum, acc.total() + 1e-9);
      ASSERT_GE(sum, -1e-9);
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();

  int net_landed = 0;
  for (int t = 0; t < kThreads; ++t) net_landed += landed[t];
  EXPECT_NEAR(acc.spent(), net_landed * kSlice, 1e-6);
  EXPECT_LE(acc.spent(), acc.total() + 1e-9);
  // The ledger recorded every successful operation exactly once: its
  // signed sum equals the surviving spend.
  double ledger_sum = 0;
  for (const BudgetAccountant::Entry& e : acc.ledger()) {
    ledger_sum += e.epsilon;
  }
  EXPECT_NEAR(ledger_sum, acc.spent(), 1e-6);
}

}  // namespace
}  // namespace viewrewrite
