#include "dp/budget.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

TEST(BudgetTest, SequentialCompositionAccumulates) {
  BudgetAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.3, "a").ok());
  EXPECT_TRUE(acc.Spend(0.3, "b").ok());
  EXPECT_DOUBLE_EQ(acc.spent(), 0.6);
  EXPECT_DOUBLE_EQ(acc.remaining(), 0.4);
}

TEST(BudgetTest, OverspendRejectedWithoutSideEffect) {
  BudgetAccountant acc(1.0);
  EXPECT_TRUE(acc.Spend(0.9, "a").ok());
  Status s = acc.Spend(0.2, "b");
  EXPECT_EQ(s.code(), StatusCode::kPrivacyError);
  EXPECT_DOUBLE_EQ(acc.spent(), 0.9);  // failed spend not recorded
}

TEST(BudgetTest, ExactExhaustionAllowed) {
  BudgetAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(acc.Spend(0.1, "slice").ok()) << i;
  }
  // Floating-point tolerance: the ten 0.1 spends must fill the budget.
  EXPECT_NEAR(acc.remaining(), 0.0, 1e-9);
}

TEST(BudgetTest, NonPositiveSpendRejected) {
  BudgetAccountant acc(1.0);
  EXPECT_FALSE(acc.Spend(0.0, "zero").ok());
  EXPECT_FALSE(acc.Spend(-0.5, "negative").ok());
}

TEST(BudgetTest, LedgerRecordsLabels) {
  BudgetAccountant acc(2.0);
  ASSERT_TRUE(acc.Spend(0.5, "view:a").ok());
  ASSERT_TRUE(acc.Spend(1.0, "view:b").ok());
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].label, "view:a");
  EXPECT_EQ(acc.ledger()[1].epsilon, 1.0);
}

}  // namespace
}  // namespace viewrewrite
